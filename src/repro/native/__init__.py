"""Native C kernel tier for the collector hot paths.

The numpy batch engines top out around a couple of million packets per
second; the paper's pitch needs "as fast as the hardware allows".  This
package supplies that tier: the mixers, bucket computation, and the
HashFlow/HashPipe/CountMin table walks as plain C (``csrc/kernels.c``),
compiled on demand into a content-hash-cached shared object
(:mod:`repro.native.build`) and driven through ctypes
(:mod:`repro.native.lib`) over the same contiguous buffers the numpy
tier builds.

Tier selection
--------------

Collectors with native kernels take a ``kernel`` constructor parameter:

* explicit ``kernel="native"`` / ``kernel="numpy"`` wins and is recorded
  in the collector's spec (so sweep cells rebuild the same tier in
  worker processes);
* otherwise the ``REPRO_KERNEL`` environment variable decides
  (inherited by parallel sweep workers);
* the default is ``"numpy"`` — the reference tier and the test oracle.

Requesting ``native`` on a machine with no C compiler falls back to
numpy with a single warning; nothing else changes, because the two
tiers are bit-identical by contract (states, estimates, meters, export
streams — enforced by ``tests/test_native_kernels.py``).
"""

from __future__ import annotations

import os
import warnings

from repro.native.build import (
    ABI_VERSION,
    NativeBuildError,
    SOURCE_PATH,
    build_library,
    cache_dir,
    find_compiler,
)
from repro.native.lib import NativeKernels

#: Environment variable selecting the default kernel tier.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognized kernel tiers.
KERNELS = ("numpy", "native")

#: Loaded kernel handles keyed by shared-object path (one dlopen each).
_loaded: dict[str, NativeKernels] = {}

#: Last build failure keyed by the env knobs that produced it, so a
#: compiler-less machine fails fast instead of re-probing per collector.
_failed: dict[tuple[str | None, str | None], str] = {}

#: Whether the native→numpy fallback warning has been issued.
_warned_fallback = False


def requested_kernel(kernel: str | None = None) -> str:
    """The kernel tier asked for, before availability is considered.

    Resolution order: explicit argument, then ``REPRO_KERNEL``, then
    ``"numpy"``.

    Raises:
        ValueError: unrecognized tier name.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "numpy"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel tier {kernel!r}; expected one of {', '.join(KERNELS)}"
        )
    return kernel


def load_kernels() -> NativeKernels:
    """Build (if needed) and load the native kernels.

    Raises:
        NativeBuildError: no compiler, compile failure, or ABI mismatch.
    """
    env_key = (os.environ.get("REPRO_CC"), os.environ.get("REPRO_NATIVE_CACHE"))
    cached_failure = _failed.get(env_key)
    if cached_failure is not None:
        raise NativeBuildError(cached_failure)
    try:
        so_path, compiler = build_library()
        key = str(so_path)
        kernels = _loaded.get(key)
        if kernels is None:
            kernels = NativeKernels(so_path, compiler)
            _loaded[key] = kernels
        return kernels
    except NativeBuildError as exc:
        _failed[env_key] = str(exc)
        raise


def native_available() -> bool:
    """Whether the native tier can be built and loaded here."""
    try:
        load_kernels()
        return True
    except NativeBuildError:
        return False


def resolve_kernel(kernel: str | None = None) -> tuple[str, NativeKernels | None]:
    """Resolve the effective kernel tier for a collector being built.

    Returns:
        ``("native", kernels)`` when the native tier was requested and
        is available, else ``("numpy", None)``.  A native request on a
        machine where the kernels cannot be built degrades to numpy
        with a single warning per process (the tiers are bit-identical,
        so only speed is lost).
    """
    requested = requested_kernel(kernel)
    if requested != "native":
        return "numpy", None
    try:
        return "native", load_kernels()
    except NativeBuildError as exc:
        global _warned_fallback
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"native kernel tier unavailable ({exc}); falling back to "
                "the bit-identical numpy tier",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy", None


def kernel_info() -> dict:
    """Debuggability snapshot: availability, compiler, cache location.

    Never raises — build failures are reported in the ``error`` field.
    This is what ``repro-experiments kernels`` prints.
    """
    info: dict = {
        "requested": requested_kernel(),
        "abi_version": ABI_VERSION,
        "source": str(SOURCE_PATH),
        "cache_dir": str(cache_dir()),
        "compiler": find_compiler(),
        "available": False,
        "library": None,
        "error": None,
    }
    try:
        kernels = load_kernels()
        info["available"] = True
        info["library"] = str(kernels.so_path)
        info["compiler"] = kernels.compiler
    except NativeBuildError as exc:
        info["error"] = str(exc)
    return info


__all__ = [
    "ABI_VERSION",
    "KERNEL_ENV",
    "KERNELS",
    "NativeBuildError",
    "NativeKernels",
    "build_library",
    "cache_dir",
    "find_compiler",
    "kernel_info",
    "load_kernels",
    "native_available",
    "requested_kernel",
    "resolve_kernel",
]
