"""ctypes bindings over the built kernel shared object.

:class:`NativeKernels` wraps one loaded ``.so`` with typed prototypes
and numpy-array entry points.  The array-layout contract (shared with
``csrc/kernels.c`` and the SoA tables in :mod:`repro.native.soa`):

* key batches arrive as contiguous ``np.uint64`` half arrays (exactly
  ``KeyBatch.lo`` / ``KeyBatch.hi``), packet sizes as ``np.int64``;
* table state is flat contiguous buffers — keys split into ``uint64``
  lo/hi planes, counters/bytes as ``int64`` — which the kernels mutate
  **in place**;
* multi-stage tables are stage-major slices of one flat buffer,
  addressed by per-stage ``(seed, offset, size)`` triples;
* update kernels return their cost-meter deltas ``(hashes, reads,
  writes[, promotions])`` through an ``int64[4]`` out-array; query
  kernels never meter.

Every entry point is bit-identical to the numpy/Python loop it
replaces; ``tests/test_native_kernels.py`` enforces this.
"""

from __future__ import annotations

import ctypes
from ctypes import POINTER, c_int64, c_uint64

import numpy as np

from repro.hashing.mixers import MASK64

from repro.native.build import ABI_VERSION, NativeBuildError

_U64P = POINTER(c_uint64)
_I64P = POINTER(c_int64)


def _u64(arr: np.ndarray) -> np.ndarray:
    """Validate/coerce a contiguous ``np.uint64`` array."""
    return np.ascontiguousarray(arr, dtype=np.uint64)


def _i64(arr: np.ndarray) -> np.ndarray:
    """Validate/coerce a contiguous ``np.int64`` array."""
    return np.ascontiguousarray(arr, dtype=np.int64)


def _p(arr: np.ndarray | None, ptr_type):
    """Array data pointer (NULL for None)."""
    if arr is None:
        return None
    return arr.ctypes.data_as(ptr_type)


class NativeKernels:
    """Typed handle over one loaded kernel shared object.

    Attributes:
        so_path: the loaded shared object.
        compiler: absolute path of the compiler that built it.
    """

    def __init__(self, so_path, compiler: str):
        self.so_path = so_path
        self.compiler = compiler
        lib = ctypes.CDLL(str(so_path))
        self._lib = lib

        lib.repro_native_abi_version.argtypes = ()
        lib.repro_native_abi_version.restype = c_int64
        abi = lib.repro_native_abi_version()
        if abi != ABI_VERSION:
            raise NativeBuildError(
                f"native kernel ABI mismatch: built {abi}, expected {ABI_VERSION}"
            )

        lib.repro_splitmix64_batch.argtypes = (_U64P, _U64P, c_int64)
        lib.repro_splitmix64_batch.restype = None
        lib.repro_murmur64_batch.argtypes = (_U64P, _U64P, c_int64)
        lib.repro_murmur64_batch.restype = None
        lib.repro_mix128_batch.argtypes = (_U64P, _U64P, c_uint64, _U64P, c_int64)
        lib.repro_mix128_batch.restype = None
        lib.repro_bucket_matrix.argtypes = (
            _U64P, _U64P, _U64P, _U64P, c_int64, c_int64, _U64P,
        )
        lib.repro_bucket_matrix.restype = None
        lib.repro_hashflow_update.argtypes = (
            _U64P, _U64P, _I64P, c_int64,            # lo, hi, sizes|NULL, n
            _U64P, _I64P, _I64P, c_int64,            # seeds, offs, tbl_sizes, depth
            _U64P, _U64P, _I64P, _I64P,              # m_lo, m_hi, m_counts, m_bytes|NULL
            c_uint64, c_uint64, c_uint64,            # anc_seed, dig_seed, dig_mask
            c_int64, c_int64,                        # anc_cells, anc_max
            _U64P, _I64P,                            # a_digests, a_counts
            c_int64, c_int64,                        # promote_enabled, clear_promoted
            _I64P,                                   # meters[4]
        )
        lib.repro_hashflow_update.restype = None
        lib.repro_hashflow_query.argtypes = (
            _U64P, _U64P, c_int64,
            _U64P, _I64P, _I64P, c_int64,
            _U64P, _U64P, _I64P,
            c_uint64, c_uint64, c_uint64, c_int64,
            _U64P, _I64P,
            _I64P,
        )
        lib.repro_hashflow_query.restype = None
        lib.repro_hashpipe_update.argtypes = (
            _U64P, _U64P, c_int64,
            _U64P, c_int64, c_int64,
            _U64P, _U64P, _I64P,
            _I64P,
        )
        lib.repro_hashpipe_update.restype = None
        lib.repro_hashpipe_query.argtypes = (
            _U64P, _U64P, c_int64,
            _U64P, c_int64, c_int64,
            _U64P, _U64P, _I64P,
            _I64P,
        )
        lib.repro_hashpipe_query.restype = None
        lib.repro_countmin_update.argtypes = (
            _U64P, _U64P, c_int64,
            _U64P, c_int64, c_int64,
            c_int64, c_int64, c_int64,
            _I64P, _I64P,
        )
        lib.repro_countmin_update.restype = None
        lib.repro_countmin_query.argtypes = (
            _U64P, _U64P, c_int64,
            _U64P, c_int64, c_int64,
            _I64P, _I64P,
        )
        lib.repro_countmin_query.restype = None

    # ------------------------------------------------------------------
    # Mixers / bucket computation
    # ------------------------------------------------------------------
    def splitmix64_batch(self, x) -> np.ndarray:
        x = _u64(x)
        out = np.empty(len(x), dtype=np.uint64)
        self._lib.repro_splitmix64_batch(_p(x, _U64P), _p(out, _U64P), len(x))
        return out

    def murmur64_batch(self, x) -> np.ndarray:
        x = _u64(x)
        out = np.empty(len(x), dtype=np.uint64)
        self._lib.repro_murmur64_batch(_p(x, _U64P), _p(out, _U64P), len(x))
        return out

    def mix128_batch(self, lo, hi, seed: int) -> np.ndarray:
        lo, hi = _u64(lo), _u64(hi)
        out = np.empty(len(lo), dtype=np.uint64)
        self._lib.repro_mix128_batch(
            _p(lo, _U64P), _p(hi, _U64P), c_uint64(seed & MASK64),
            _p(out, _U64P), len(lo),
        )
        return out

    def bucket_matrix(self, lo, hi, seeds, sizes) -> np.ndarray:
        """(d, N) bucket-index matrix; the native twin of
        ``HashFamily.bucket_matrix`` over presplit halves."""
        lo, hi = _u64(lo), _u64(hi)
        seeds, sizes = _u64(seeds), _u64(sizes)
        d, n = len(seeds), len(lo)
        out = np.empty((d, n), dtype=np.uint64)
        self._lib.repro_bucket_matrix(
            _p(lo, _U64P), _p(hi, _U64P), _p(seeds, _U64P), _p(sizes, _U64P),
            d, n, _p(out, _U64P),
        )
        return out

    # ------------------------------------------------------------------
    # HashFlow
    # ------------------------------------------------------------------
    def hashflow_update(
        self, lo, hi, pkt_sizes,
        seeds, offs, tbl_sizes,
        m_lo, m_hi, m_counts, m_bytes,
        anc_seed: int, dig_seed: int, dig_mask: int,
        anc_cells: int, anc_max: int,
        a_digests, a_counts,
        promote_enabled: bool, clear_promoted: bool,
    ) -> tuple[int, int, int, int]:
        """One batched Algorithm-1 pass; mutates the SoA buffers in place.

        Returns:
            ``(hashes, reads, writes, promotions)`` meter deltas.
        """
        lo, hi = _u64(lo), _u64(hi)
        if pkt_sizes is not None:
            pkt_sizes = _i64(pkt_sizes)
        meters = np.zeros(4, dtype=np.int64)
        self._lib.repro_hashflow_update(
            _p(lo, _U64P), _p(hi, _U64P), _p(pkt_sizes, _I64P), len(lo),
            _p(seeds, _U64P), _p(offs, _I64P), _p(tbl_sizes, _I64P), len(seeds),
            _p(m_lo, _U64P), _p(m_hi, _U64P), _p(m_counts, _I64P),
            _p(m_bytes, _I64P),
            c_uint64(anc_seed), c_uint64(dig_seed), c_uint64(dig_mask),
            anc_cells, anc_max,
            _p(a_digests, _U64P), _p(a_counts, _I64P),
            int(promote_enabled), int(clear_promoted),
            _p(meters, _I64P),
        )
        return tuple(int(v) for v in meters)

    def hashflow_query(
        self, lo, hi,
        seeds, offs, tbl_sizes,
        m_lo, m_hi, m_counts,
        anc_seed: int, dig_seed: int, dig_mask: int, anc_cells: int,
        a_digests, a_counts,
    ) -> np.ndarray:
        lo, hi = _u64(lo), _u64(hi)
        out = np.empty(len(lo), dtype=np.int64)
        self._lib.repro_hashflow_query(
            _p(lo, _U64P), _p(hi, _U64P), len(lo),
            _p(seeds, _U64P), _p(offs, _I64P), _p(tbl_sizes, _I64P), len(seeds),
            _p(m_lo, _U64P), _p(m_hi, _U64P), _p(m_counts, _I64P),
            c_uint64(anc_seed), c_uint64(dig_seed), c_uint64(dig_mask), anc_cells,
            _p(a_digests, _U64P), _p(a_counts, _I64P),
            _p(out, _I64P),
        )
        return out

    # ------------------------------------------------------------------
    # HashPipe
    # ------------------------------------------------------------------
    def hashpipe_update(
        self, lo, hi, seeds, stages: int, cells: int, k_lo, k_hi, counts
    ) -> tuple[int, int, int]:
        lo, hi = _u64(lo), _u64(hi)
        meters = np.zeros(4, dtype=np.int64)
        self._lib.repro_hashpipe_update(
            _p(lo, _U64P), _p(hi, _U64P), len(lo),
            _p(seeds, _U64P), stages, cells,
            _p(k_lo, _U64P), _p(k_hi, _U64P), _p(counts, _I64P),
            _p(meters, _I64P),
        )
        return int(meters[0]), int(meters[1]), int(meters[2])

    def hashpipe_query(
        self, lo, hi, seeds, stages: int, cells: int, k_lo, k_hi, counts
    ) -> np.ndarray:
        lo, hi = _u64(lo), _u64(hi)
        out = np.empty(len(lo), dtype=np.int64)
        self._lib.repro_hashpipe_query(
            _p(lo, _U64P), _p(hi, _U64P), len(lo),
            _p(seeds, _U64P), stages, cells,
            _p(k_lo, _U64P), _p(k_hi, _U64P), _p(counts, _I64P),
            _p(out, _I64P),
        )
        return out

    # ------------------------------------------------------------------
    # Count-min
    # ------------------------------------------------------------------
    def countmin_update(
        self, lo, hi, seeds, depth: int, width: int,
        max_count: int, amount: int, conservative: bool, rows,
    ) -> tuple[int, int, int]:
        lo, hi = _u64(lo), _u64(hi)
        meters = np.zeros(4, dtype=np.int64)
        self._lib.repro_countmin_update(
            _p(lo, _U64P), _p(hi, _U64P), len(lo),
            _p(seeds, _U64P), depth, width,
            max_count, amount, int(conservative),
            _p(rows, _I64P), _p(meters, _I64P),
        )
        return int(meters[0]), int(meters[1]), int(meters[2])

    def countmin_query(
        self, lo, hi, seeds, depth: int, width: int, rows
    ) -> np.ndarray:
        lo, hi = _u64(lo), _u64(hi)
        out = np.empty(len(lo), dtype=np.int64)
        self._lib.repro_countmin_query(
            _p(lo, _U64P), _p(hi, _U64P), len(lo),
            _p(seeds, _U64P), depth, width,
            _p(rows, _I64P), _p(out, _I64P),
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeKernels(so={self.so_path}, cc={self.compiler})"
