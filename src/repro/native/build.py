"""On-demand compilation of the native kernels.

The C source (``csrc/kernels.c``) is compiled with the system C compiler
into a shared object cached under a content-hash name, so:

* the first native-tier use on a machine pays one ``cc`` invocation
  (~a second), every later use is a single ``dlopen``;
* editing the source, switching compilers, or changing flags changes
  the hash and transparently builds a fresh object — a stale cache can
  never be loaded against newer source.

Environment knobs:

* ``REPRO_CC`` — compiler to use.  When set, *only* this compiler is
  considered (no fallback scan), so pointing it at a nonexistent
  binary deterministically simulates a compiler-less machine — the
  forced-fallback tests rely on this.
* ``REPRO_NATIVE_CACHE`` — cache directory for built ``.so`` objects
  (default ``$XDG_CACHE_HOME/repro-native`` or ``~/.cache/repro-native``).

No third-party build machinery: just ``subprocess`` + ``cc -O2 -std=c99
-shared -fPIC``, which every Linux/macOS toolchain accepts.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Bumped on any ABI-incompatible change to the kernel signatures; part
#: of the cache key and double-checked in-band by the loader against
#: ``repro_native_abi_version()``.
ABI_VERSION = 1

SOURCE_PATH = Path(__file__).resolve().parent / "csrc" / "kernels.c"

#: Compiler invocation shared by every toolchain we accept.
CFLAGS = ("-O2", "-std=c99", "-shared", "-fPIC")

#: Compilers probed (in order) when ``REPRO_CC`` is unset.
_DEFAULT_COMPILERS = ("cc", "gcc", "clang")


class NativeBuildError(RuntimeError):
    """The native kernels could not be built (no compiler, compile
    failure, or unreadable source)."""


def find_compiler() -> str | None:
    """Absolute path of the C compiler to use, or None if there is none.

    ``REPRO_CC`` pins the choice exactly (no fallback — a bad value
    means "no compiler", which is what the fallback tests simulate);
    otherwise the usual suspects are probed on ``PATH``.
    """
    explicit = os.environ.get("REPRO_CC")
    if explicit:
        return shutil.which(explicit)
    for candidate in _DEFAULT_COMPILERS:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def cache_dir() -> Path:
    """Directory holding built shared objects (not created here)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _cache_key(source: bytes, compiler: str) -> str:
    """Content hash naming the built object: source + toolchain + ABI."""
    digest = hashlib.sha256()
    digest.update(
        f"abi={ABI_VERSION};cc={compiler};flags={' '.join(CFLAGS)};".encode()
    )
    digest.update(source)
    return digest.hexdigest()[:16]


def library_path(compiler: str | None = None) -> Path:
    """Where the built object for the current source/toolchain lives.

    Pure path computation — does not build or touch the filesystem
    beyond reading the source.
    """
    if compiler is None:
        compiler = find_compiler()
        if compiler is None:
            raise NativeBuildError(
                "no C compiler found (set REPRO_CC or install cc/gcc/clang)"
            )
    key = _cache_key(SOURCE_PATH.read_bytes(), compiler)
    return cache_dir() / f"repro_kernels_{key}.so"


def build_library(force: bool = False) -> tuple[Path, str]:
    """Compile (or reuse) the kernels; returns ``(so_path, compiler)``.

    The object is written to a temporary file and atomically renamed
    into place, so concurrent builders (parallel sweep workers sharing
    a cold cache) race harmlessly — last writer wins with an identical
    artifact.

    Raises:
        NativeBuildError: no compiler available or compilation failed.
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found (set REPRO_CC or install cc/gcc/clang)"
        )
    out = library_path(compiler)
    if out.exists() and not force:
        return out, compiler
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=out.parent)
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, *CFLAGS, "-o", tmp, str(SOURCE_PATH)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeBuildError(
                f"{compiler} failed to build native kernels "
                f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
            )
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return out, compiler
