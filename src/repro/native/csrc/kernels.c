/* Native kernels for the collector hot paths.
 *
 * Compiled on demand by repro.native.build with the system C compiler
 * into a content-hash-cached shared object and driven via ctypes over
 * the same contiguous buffers the numpy tier already uses: a batch's
 * 64-bit key halves (KeyBatch.lo / KeyBatch.hi) on the way in, and the
 * structure-of-arrays table buffers (repro.native.soa) as mutable
 * state.
 *
 * Every function here is a line-for-line transliteration of a Python
 * loop in repro.core / repro.sketches and must stay BIT-IDENTICAL to
 * it: same table states, same query answers, same cost-meter deltas,
 * same promotion counts.  All arithmetic is uint64_t (wrapping mod
 * 2**64, exactly like the masked Python-int and np.uint64 mixers);
 * counters are int64_t (Python-int counters never exceed the packet
 * count, so 63 bits are plenty).  tests/test_native_kernels.py
 * enforces the contract across the collector matrix.
 *
 * Plain C99, no dependencies beyond <stdint.h>.  Meter deltas are
 * returned through a small int64_t out-array instead of globals so the
 * kernels are reentrant and thread-agnostic.
 */

#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

/* ------------------------------------------------------------------ */
/* Mixers (repro.hashing.mixers)                                      */
/* ------------------------------------------------------------------ */

/* Multiplicative constants from splitmix64 (Steele, Lea, Flood 2014). */
static const uint64_t SM64_GAMMA = 0x9E3779B97F4A7C15ULL;
static const uint64_t SM64_M1 = 0xBF58476D1CE4E5B9ULL;
static const uint64_t SM64_M2 = 0x94D049BB133111EBULL;

/* Constants from the murmur3 64-bit finalizer. */
static const uint64_t MM3_M1 = 0xFF51AFD7ED558CCDULL;
static const uint64_t MM3_M2 = 0xC4CEB9FE1A85EC53ULL;

static inline uint64_t splitmix64(uint64_t x) {
    x += SM64_GAMMA;
    x = (x ^ (x >> 30)) * SM64_M1;
    x = (x ^ (x >> 27)) * SM64_M2;
    return x ^ (x >> 31);
}

static inline uint64_t murmur64(uint64_t x) {
    x = (x ^ (x >> 33)) * MM3_M1;
    x = (x ^ (x >> 33)) * MM3_M2;
    return x ^ (x >> 33);
}

/* mix128: keys are packed 104-bit flow IDs split into 64-bit halves.
 * The conditional high-half fold matches the scalar/numpy mixers
 * exactly (elements with hi == 0 take the single-round path). */
static inline uint64_t mix128(uint64_t lo, uint64_t hi, uint64_t seed) {
    uint64_t h = splitmix64(lo ^ seed);
    if (hi) {
        h = splitmix64(h ^ (hi * SM64_GAMMA));
    }
    return h;
}

EXPORT void repro_splitmix64_batch(const uint64_t *x, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        out[i] = splitmix64(x[i]);
    }
}

EXPORT void repro_murmur64_batch(const uint64_t *x, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        out[i] = murmur64(x[i]);
    }
}

EXPORT void repro_mix128_batch(const uint64_t *lo, const uint64_t *hi,
                               uint64_t seed, uint64_t *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        out[i] = mix128(lo[i], hi[i], seed);
    }
}

/* Bucket indices of d hash functions over a whole batch: the native
 * twin of HashFamily.bucket_matrix.  out is row-major (d, n). */
EXPORT void repro_bucket_matrix(const uint64_t *lo, const uint64_t *hi,
                                const uint64_t *seeds, const uint64_t *sizes,
                                int64_t d, int64_t n, uint64_t *out) {
    for (int64_t s = 0; s < d; s++) {
        const uint64_t seed = seeds[s];
        const uint64_t size = sizes[s];
        uint64_t *row = out + s * n;
        for (int64_t i = 0; i < n; i++) {
            row[i] = mix128(lo[i], hi[i], seed) % size;
        }
    }
}

/* ------------------------------------------------------------------ */
/* HashFlow: main + ancillary probe-update walk (Algorithm 1)         */
/* ------------------------------------------------------------------ */

/* Meter slot layout shared by the update kernels. */
enum { M_HASHES = 0, M_READS = 1, M_WRITES = 2, M_PROMOTIONS = 3, M_SLOTS = 4 };

/* One batched HashFlow update pass.
 *
 * The main table is d probe stages over flat SoA buffers: stage s
 * addresses cells [offs[s], offs[s] + tbl_sizes[s]) of m_lo / m_hi /
 * m_counts (and m_bytes when byte tracking is on).  The multi-hash
 * layout passes d stages with offset 0 and the full table size; the
 * pipelined layout passes its geometric sub-table slices.
 *
 * pkt_sizes may be NULL (no byte tracking); m_bytes is ignored then.
 * meters receives the {hashes, reads, writes, promotions} deltas.
 */
EXPORT void repro_hashflow_update(
    const uint64_t *lo, const uint64_t *hi, const int64_t *pkt_sizes, int64_t n,
    const uint64_t *seeds, const int64_t *offs, const int64_t *tbl_sizes,
    int64_t depth,
    uint64_t *m_lo, uint64_t *m_hi, int64_t *m_counts, int64_t *m_bytes,
    uint64_t anc_seed, uint64_t dig_seed, uint64_t dig_mask,
    int64_t anc_cells, int64_t anc_max,
    uint64_t *a_digests, int64_t *a_counts,
    int64_t promote_enabled, int64_t clear_promoted,
    int64_t *meters) {
    int64_t hashes = 0, reads = 0, writes = 0, promotions = 0;
    const int track_bytes = pkt_sizes != 0;
    for (int64_t i = 0; i < n; i++) {
        const uint64_t klo = lo[i];
        const uint64_t khi = hi[i];
        /* Main-table probe (MainTable.probe): first empty bucket or own
         * record absorbs; otherwise remember the smallest-count
         * colliding bucket (the sentinel). */
        int64_t min_count = -1;
        int64_t sentinel = -1;
        int absorbed = 0;
        for (int64_t s = 0; s < depth; s++) {
            const int64_t idx =
                offs[s] + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)tbl_sizes[s]);
            hashes += 1;
            reads += 1;
            const int64_t count = m_counts[idx];
            if (count == 0) {
                m_lo[idx] = klo;
                m_hi[idx] = khi;
                m_counts[idx] = 1;
                if (track_bytes) {
                    m_bytes[idx] = pkt_sizes[i];
                }
                writes += 1;
                absorbed = 1;
                break;
            }
            if (m_lo[idx] == klo && m_hi[idx] == khi) {
                m_counts[idx] = count + 1;
                if (track_bytes) {
                    m_bytes[idx] += pkt_sizes[i];
                }
                writes += 1;
                absorbed = 1;
                break;
            }
            if (min_count < 0 || count < min_count) {
                min_count = count;
                sentinel = idx;
            }
        }
        if (absorbed) {
            continue;
        }
        if (!promote_enabled) {
            /* Ablation mode: the sentinel is unbeatable. */
            min_count = (int64_t)1 << 62;
        }
        /* Ancillary offer (AncillaryTable.offer). */
        const int64_t ai = (int64_t)(mix128(klo, khi, anc_seed) % (uint64_t)anc_cells);
        const uint64_t dig = mix128(klo, khi, dig_seed) & dig_mask;
        hashes += 2;
        reads += 1;
        const int64_t acount = a_counts[ai];
        if (acount == 0 || a_digests[ai] != dig) {
            a_digests[ai] = dig;
            a_counts[ai] = 1;
            writes += 1;
            continue;
        }
        if (acount < min_count) {
            if (acount < anc_max) {
                a_counts[ai] = acount + 1;
            }
            writes += 1;
            continue;
        }
        /* Promotion: overwrite the sentinel record. */
        m_lo[sentinel] = klo;
        m_hi[sentinel] = khi;
        m_counts[sentinel] = acount + 1;
        if (track_bytes) {
            m_bytes[sentinel] = pkt_sizes[i];
        }
        writes += 1;
        promotions += 1;
        if (clear_promoted) {
            a_digests[ai] = 0;
            a_counts[ai] = 0;
            writes += 1;
        }
    }
    meters[M_HASHES] += hashes;
    meters[M_READS] += reads;
    meters[M_WRITES] += writes;
    meters[M_PROMOTIONS] += promotions;
}

/* Batched HashFlow point query: main-table first match in stage order,
 * else the ancillary summarized count, else 0.  Meter-free, like every
 * query path. */
EXPORT void repro_hashflow_query(
    const uint64_t *lo, const uint64_t *hi, int64_t n,
    const uint64_t *seeds, const int64_t *offs, const int64_t *tbl_sizes,
    int64_t depth,
    const uint64_t *m_lo, const uint64_t *m_hi, const int64_t *m_counts,
    uint64_t anc_seed, uint64_t dig_seed, uint64_t dig_mask, int64_t anc_cells,
    const uint64_t *a_digests, const int64_t *a_counts,
    int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        const uint64_t klo = lo[i];
        const uint64_t khi = hi[i];
        int64_t answer = 0;
        for (int64_t s = 0; s < depth; s++) {
            const int64_t idx =
                offs[s] + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)tbl_sizes[s]);
            if (m_counts[idx] && m_lo[idx] == klo && m_hi[idx] == khi) {
                answer = m_counts[idx];
                break;
            }
        }
        if (answer == 0) {
            const int64_t ai =
                (int64_t)(mix128(klo, khi, anc_seed) % (uint64_t)anc_cells);
            if (a_counts[ai] > 0 &&
                a_digests[ai] == (mix128(klo, khi, dig_seed) & dig_mask)) {
                answer = a_counts[ai];
            }
        }
        out[i] = answer;
    }
}

/* ------------------------------------------------------------------ */
/* HashPipe (repro.sketches.hashpipe)                                 */
/* ------------------------------------------------------------------ */

/* Batched HashPipe update.  Stage s occupies cells [s * cells,
 * (s + 1) * cells) of the flat SoA buffers.  Later stages hash the
 * evicted carry record, so the whole walk is state-dependent and runs
 * here instead of a vectorized pass. */
EXPORT void repro_hashpipe_update(
    const uint64_t *lo, const uint64_t *hi, int64_t n,
    const uint64_t *seeds, int64_t stages, int64_t cells,
    uint64_t *k_lo, uint64_t *k_hi, int64_t *counts,
    int64_t *meters) {
    int64_t hashes = 0, reads = 0, writes = 0;
    for (int64_t i = 0; i < n; i++) {
        /* Stage 1: always insert, evicting whatever is there. */
        uint64_t klo = lo[i];
        uint64_t khi = hi[i];
        int64_t idx = (int64_t)(mix128(klo, khi, seeds[0]) % (uint64_t)cells);
        hashes += 1;
        reads += 1;
        const int64_t occupant = counts[idx];
        if (occupant == 0) {
            k_lo[idx] = klo;
            k_hi[idx] = khi;
            counts[idx] = 1;
            writes += 1;
            continue;
        }
        if (k_lo[idx] == klo && k_hi[idx] == khi) {
            counts[idx] = occupant + 1;
            writes += 1;
            continue;
        }
        uint64_t carry_lo = k_lo[idx];
        uint64_t carry_hi = k_hi[idx];
        int64_t carry_count = occupant;
        k_lo[idx] = klo;
        k_hi[idx] = khi;
        counts[idx] = 1;
        writes += 1;

        /* Later stages: keep the larger record, carry the smaller. */
        for (int64_t s = 1; s < stages; s++) {
            idx = s * cells +
                  (int64_t)(mix128(carry_lo, carry_hi, seeds[s]) % (uint64_t)cells);
            hashes += 1;
            reads += 1;
            const int64_t oc = counts[idx];
            if (oc == 0) {
                k_lo[idx] = carry_lo;
                k_hi[idx] = carry_hi;
                counts[idx] = carry_count;
                writes += 1;
                carry_count = 0;
                break;
            }
            if (k_lo[idx] == carry_lo && k_hi[idx] == carry_hi) {
                counts[idx] = oc + carry_count;
                writes += 1;
                carry_count = 0;
                break;
            }
            if (oc < carry_count) {
                const uint64_t tmp_lo = k_lo[idx];
                const uint64_t tmp_hi = k_hi[idx];
                k_lo[idx] = carry_lo;
                k_hi[idx] = carry_hi;
                counts[idx] = carry_count;
                carry_lo = tmp_lo;
                carry_hi = tmp_hi;
                carry_count = oc;
                writes += 1;
            }
        }
        /* Carry evicted from the final stage is discarded. */
    }
    meters[M_HASHES] += hashes;
    meters[M_READS] += reads;
    meters[M_WRITES] += writes;
}

/* Batched HashPipe point query: sum the flow's (possibly split)
 * partial records across all stages. */
EXPORT void repro_hashpipe_query(
    const uint64_t *lo, const uint64_t *hi, int64_t n,
    const uint64_t *seeds, int64_t stages, int64_t cells,
    const uint64_t *k_lo, const uint64_t *k_hi, const int64_t *counts,
    int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        const uint64_t klo = lo[i];
        const uint64_t khi = hi[i];
        int64_t total = 0;
        for (int64_t s = 0; s < stages; s++) {
            const int64_t idx =
                s * cells + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)cells);
            if (counts[idx] && k_lo[idx] == klo && k_hi[idx] == khi) {
                total += counts[idx];
            }
        }
        out[i] = total;
    }
}

/* ------------------------------------------------------------------ */
/* Count-min sketch (repro.sketches.countmin)                         */
/* ------------------------------------------------------------------ */

/* Batched count-min update; row s occupies [s * width, (s+1) * width)
 * of the flat counter buffer.  conservative != 0 selects conservative
 * update (only the minimal counters advance).  Counters saturate at
 * max_count instead of wrapping. */
EXPORT void repro_countmin_update(
    const uint64_t *lo, const uint64_t *hi, int64_t n,
    const uint64_t *seeds, int64_t depth, int64_t width,
    int64_t max_count, int64_t amount, int64_t conservative,
    int64_t *rows, int64_t *meters) {
    int64_t writes = 0;
    if (conservative) {
        for (int64_t i = 0; i < n; i++) {
            const uint64_t klo = lo[i];
            const uint64_t khi = hi[i];
            int64_t current_min = -1;
            for (int64_t s = 0; s < depth; s++) {
                const int64_t idx =
                    s * width + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)width);
                if (current_min < 0 || rows[idx] < current_min) {
                    current_min = rows[idx];
                }
            }
            const int64_t target = current_min + amount;
            for (int64_t s = 0; s < depth; s++) {
                const int64_t idx =
                    s * width + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)width);
                if (rows[idx] < target) {
                    rows[idx] = target < max_count ? target : max_count;
                    writes += 1;
                }
            }
        }
    } else {
        for (int64_t i = 0; i < n; i++) {
            const uint64_t klo = lo[i];
            const uint64_t khi = hi[i];
            for (int64_t s = 0; s < depth; s++) {
                const int64_t idx =
                    s * width + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)width);
                const int64_t value = rows[idx] + amount;
                rows[idx] = value < max_count ? value : max_count;
            }
        }
        writes = n * depth;
    }
    meters[M_HASHES] += n * depth;
    meters[M_READS] += n * depth;
    meters[M_WRITES] += writes;
}

/* Batched count-min point query: minimum counter across rows. */
EXPORT void repro_countmin_query(
    const uint64_t *lo, const uint64_t *hi, int64_t n,
    const uint64_t *seeds, int64_t depth, int64_t width,
    const int64_t *rows, int64_t *out) {
    for (int64_t i = 0; i < n; i++) {
        const uint64_t klo = lo[i];
        const uint64_t khi = hi[i];
        int64_t best = -1;
        for (int64_t s = 0; s < depth; s++) {
            const int64_t idx =
                s * width + (int64_t)(mix128(klo, khi, seeds[s]) % (uint64_t)width);
            if (best < 0 || rows[idx] < best) {
                best = rows[idx];
            }
        }
        out[i] = best;
    }
}

/* ABI version stamp, checked by the loader so a stale cached .so from
 * an older source revision is never driven with mismatched calls
 * (content-hash caching already prevents this; the stamp is a second,
 * in-band guard). */
EXPORT int64_t repro_native_abi_version(void) { return 1; }
