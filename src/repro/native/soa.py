"""Structure-of-arrays table storage for the native kernel tier.

The reference tables (:mod:`repro.core.maintable`,
:mod:`repro.core.ancillary`) store 104-bit flow keys as Python ints in
Python lists — ideal for the scalar/numpy oracle, invisible to C.  When
a collector is built with the native tier, it swaps in the variants
here, which hold the same logical state as flat contiguous numpy
buffers (keys split into ``uint64`` lo/hi planes, counters as
``int64``) that the kernels mutate in place.

Layout contract (shared with ``csrc/kernels.c``):

* a ``depth``-stage main table is **stage-major**: stage ``s`` owns the
  flat slice ``[offs[s], offs[s] + sizes[s])``.  The multi-hash layout
  is expressed in the same vocabulary — every stage has offset 0 and
  the full table size, sharing one buffer — so a single kernel serves
  both variants;
* iteration order of ``records()`` etc. equals the reference tables'
  (flat ascending index == stage-major cell order), so report dicts
  and export streams come out identical.

Every control-plane method (records, queries, remove, reset, byte
accounting) and the scalar ``probe``/``promote``/``offer`` contract are
implemented in Python over the SoA buffers with the reference tier's
exact semantics and meter increments — subclasses like
``AdaptiveHashFlow`` drive them directly, and they double as a
safety-net oracle for the kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.ancillary import PROMOTE, STORED, AncillaryTable
from repro.core.maintable import (
    ABSORBED,
    DEFAULT_ALPHA,
    DEFAULT_DEPTH,
    MISSED,
    MainTable,
    pipeline_sizes,
)
from repro.hashing.families import HashFamily
from repro.hashing.mixers import MASK64, mix128, mix128_batch
from repro.sketches.base import CostMeter

_EMPTY = 0


class NativeMainTable(MainTable):
    """SoA main table serving both paper layouts through one kernel.

    Args:
        n_cells: total buckets.
        depth: probe stages ``d``.
        variant: ``"pipelined"`` or ``"multihash"`` — same semantics as
            the reference classes they replace.
        alpha: pipeline weight (pipelined variant only).
        seed: hash family seed.
        meter: shared cost meter.
        track_bytes: allocate the parallel byte plane.
    """

    def __init__(
        self,
        n_cells: int,
        depth: int = DEFAULT_DEPTH,
        variant: str = "pipelined",
        alpha: float = DEFAULT_ALPHA,
        seed: int = 0,
        meter: CostMeter | None = None,
        track_bytes: bool = False,
    ):
        super().__init__(meter, track_bytes)
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._n = n_cells
        self.depth = depth
        self.variant = variant
        self._hashes = HashFamily(depth, master_seed=seed)
        self._seeds = [h.seed for h in self._hashes]
        if variant == "pipelined":
            self.alpha = alpha
            self.sizes = pipeline_sizes(n_cells, depth, alpha)
            offs = [0] * depth
            for s in range(1, depth):
                offs[s] = offs[s - 1] + self.sizes[s - 1]
            storage = n_cells
        elif variant == "multihash":
            # Every stage probes the same flat array of n cells.
            self.sizes = [n_cells] * depth
            offs = [0] * depth
            storage = n_cells
        else:
            raise ValueError(f"unknown variant {variant!r}")
        self._offs = offs
        # Kernel-facing views of the per-stage addressing triples.
        self.seeds_arr = np.array(self._seeds, dtype=np.uint64)
        self.offs_arr = np.array(offs, dtype=np.int64)
        self.sizes_arr = np.array(self.sizes, dtype=np.int64)
        self.k_lo = np.zeros(storage, dtype=np.uint64)
        self.k_hi = np.zeros(storage, dtype=np.uint64)
        self.counts = np.zeros(storage, dtype=np.int64)
        self.bytes = np.zeros(storage, dtype=np.int64) if track_bytes else None

    # ------------------------------------------------------------------
    # Scalar probe/promote contract (reference semantics over SoA)
    # ------------------------------------------------------------------
    def probe(self, key: int, size: int = 0) -> tuple[int, int, object]:
        meter = self.meter
        lo = key & MASK64
        hi = key >> 64
        counts = self.counts
        k_lo = self.k_lo
        k_hi = self.k_hi
        min_count = -1
        pos = -1
        for s in range(self.depth):
            idx = self._offs[s] + mix128(key, self._seeds[s]) % self.sizes[s]
            meter.hashes += 1
            meter.reads += 1
            count = int(counts[idx])
            if count == 0:
                k_lo[idx] = lo
                k_hi[idx] = hi
                counts[idx] = 1
                if self.bytes is not None:
                    self.bytes[idx] = size
                meter.writes += 1
                return ABSORBED, 0, None
            if int(k_lo[idx]) == lo and int(k_hi[idx]) == hi:
                counts[idx] = count + 1
                if self.bytes is not None:
                    self.bytes[idx] += size
                meter.writes += 1
                return ABSORBED, 0, None
            if min_count < 0 or count < min_count:
                min_count = count
                pos = idx
        return MISSED, min_count, pos

    def promote(self, sentinel: object, key: int, count: int, size: int = 0) -> None:
        idx = sentinel
        self.k_lo[idx] = key & MASK64
        self.k_hi[idx] = key >> 64
        self.counts[idx] = count
        if self.bytes is not None:
            self.bytes[idx] = size
        self.meter.writes += 1

    # ------------------------------------------------------------------
    # Batched list views: numpy-tier machinery that has no meaning here
    # ------------------------------------------------------------------
    def bucket_rows(self, batch):
        raise RuntimeError(
            "native SoA tables have no Python list views; "
            "the batched walk runs in the C kernel"
        )

    def stage_views(self, rows):
        raise RuntimeError(
            "native SoA tables have no Python list views; "
            "the batched walk runs in the C kernel"
        )

    # ------------------------------------------------------------------
    # Report / control plane
    # ------------------------------------------------------------------
    def _key_at(self, idx: int) -> int:
        return (int(self.k_hi[idx]) << 64) | int(self.k_lo[idx])

    def query(self, key: int) -> int:
        for s in range(self.depth):
            idx = self._offs[s] + mix128(key, self._seeds[s]) % self.sizes[s]
            if self.counts[idx] and self._key_at(idx) == key:
                return int(self.counts[idx])
        return 0

    def query_batch(self, batch) -> np.ndarray:
        """Vectorized :meth:`query` over the SoA planes.

        Same first-stage-hit precedence as the scalar probe: a later
        stage only answers keys every earlier stage missed.
        """
        n = len(batch)
        out = np.zeros(n, dtype=np.int64)
        if not n:
            return out
        lo, hi = batch.halves()
        unresolved = np.ones(n, dtype=bool)
        for s in range(self.depth):
            idx = (
                mix128_batch(lo, hi, self._seeds[s]) % np.uint64(self.sizes[s])
            ).astype(np.int64) + self._offs[s]
            hit = (
                unresolved
                & (self.counts[idx] > 0)
                & (self.k_lo[idx] == lo)
                & (self.k_hi[idx] == hi)
            )
            if hit.any():
                out[hit] = self.counts[idx[hit]]
                unresolved &= ~hit
                if not unresolved.any():
                    break
        return out

    def records(self) -> dict[int, int]:
        # Ascending flat index == stage-major order == the reference
        # tables' iteration order, so duplicate keys (possible only
        # after control-plane evictions) resolve identically.
        result: dict[int, int] = {}
        for idx in np.nonzero(self.counts)[0].tolist():
            result[self._key_at(idx)] = int(self.counts[idx])
        return result

    def byte_records(self) -> dict[int, int]:
        if self.bytes is None:
            return super().byte_records()
        result: dict[int, int] = {}
        for idx in np.nonzero(self.counts)[0].tolist():
            result[self._key_at(idx)] = int(self.bytes[idx])
        return result

    def byte_query(self, key: int) -> int | None:
        if self.bytes is None:
            return super().byte_query(key)
        for s in range(self.depth):
            idx = self._offs[s] + mix128(key, self._seeds[s]) % self.sizes[s]
            if self.counts[idx] and self._key_at(idx) == key:
                return int(self.bytes[idx])
        return None

    def occupancy(self) -> int:
        return int(np.count_nonzero(self.counts))

    def per_table_utilization(self) -> list[float]:
        """Occupancy fraction per probe stage's slice (pipelined layout)."""
        return [
            int(np.count_nonzero(self.counts[off : off + size])) / size
            for off, size in zip(self._offs, self.sizes)
        ]

    def remove(self, key: int) -> bool:
        for s in range(self.depth):
            idx = self._offs[s] + mix128(key, self._seeds[s]) % self.sizes[s]
            if self.counts[idx] and self._key_at(idx) == key:
                # Like the reference tables: bytes are left stale (they
                # are invisible while count == 0 and reseeded on insert).
                self.k_lo[idx] = _EMPTY
                self.k_hi[idx] = _EMPTY
                self.counts[idx] = 0
                return True
        return False

    def reset(self) -> None:
        self.k_lo.fill(0)
        self.k_hi.fill(0)
        self.counts.fill(0)
        if self.bytes is not None:
            self.bytes.fill(0)

    @property
    def n_cells(self) -> int:
        return self._n


class NativeAncillaryTable(AncillaryTable):
    """SoA ancillary table: (digest, count) planes as flat arrays.

    Construction mirrors :class:`~repro.core.ancillary.AncillaryTable`
    (same args); only the storage and the methods that touch it differ.
    Requires fast (plain ``HashFunction``/``DigestFunction``) hashes —
    the kernel addresses cells with prebound seeds.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not self._fast_hashes:
            raise ValueError(
                "the native ancillary table requires plain HashFunction/"
                "DigestFunction hashes (prebound seeds feed the C kernel)"
            )
        self.digests = np.zeros(self.n_cells, dtype=np.uint64)
        self.counts = np.zeros(self.n_cells, dtype=np.int64)
        # The list storage the parent built is never used.
        self._digests = None
        self._counts = None

    def offer(self, key: int, min_count: int) -> tuple[int, int]:
        meter = self.meter
        idx = mix128(key, self._index_seed) % self.n_cells
        dig = mix128(key, self._digest_seed) & self._digest_mask
        meter.hashes += 2
        meter.reads += 1
        count = int(self.counts[idx])
        if count == 0 or int(self.digests[idx]) != dig:
            self.digests[idx] = dig
            self.counts[idx] = 1
            meter.writes += 1
            return STORED, 0
        if count < min_count:
            if count < self.max_count:
                self.counts[idx] = count + 1
            meter.writes += 1
            return STORED, 0
        return PROMOTE, count + 1

    def query(self, key: int) -> int:
        idx = mix128(key, self._index_seed) % self.n_cells
        if self.counts[idx] > 0 and int(self.digests[idx]) == (
            mix128(key, self._digest_seed) & self._digest_mask
        ):
            return int(self.counts[idx])
        return 0

    def query_batch(self, batch) -> np.ndarray:
        idx = self.index_hash.buckets_batch(batch, self.n_cells)
        dig = self.digest.values_batch(batch)
        hit = self.counts[idx]
        return np.where((hit > 0) & (self.digests[idx] == dig), hit, np.int64(0))

    def clear_cell(self, key: int) -> None:
        idx = mix128(key, self._index_seed) % self.n_cells
        self.digests[idx] = 0
        self.counts[idx] = 0
        self.meter.writes += 1

    def occupancy(self) -> int:
        return int(np.count_nonzero(self.counts))

    def reset(self) -> None:
        self.digests.fill(0)
        self.counts.fill(0)
