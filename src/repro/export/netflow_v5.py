"""NetFlow v5 datagram export/import.

HashFlow is a NetFlow replacement on the switch, but the records it
collects still need to reach a collector; NetFlow v5 is the lingua
franca.  This module packs ``{flow key: packet count}`` records into
standard v5 datagrams (24-byte header + up to 30 x 48-byte records) and
parses them back, so records from any :class:`FlowCollector` can be
consumed by stock tooling (nfdump, flow-tools, commercial collectors).

Only the fields a flow-record collector knows are populated: the
5-tuple and the packet count (dOctets is estimated from a configurable
mean packet size).  Byte counts, AS numbers and interface indices are
left zero, as software exporters commonly do.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from dataclasses import dataclass

from repro.flow.key import pack_key, unpack_key
from repro.flow.packet import DEFAULT_PACKET_BYTES

NETFLOW_V5_VERSION = 5
MAX_RECORDS_PER_DATAGRAM = 30

_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

HEADER_BYTES = _HEADER.size  # 24
RECORD_BYTES = _RECORD.size  # 48


@dataclass(frozen=True, slots=True)
class NetFlowV5Record:
    """One parsed NetFlow v5 record (the fields this library populates).

    Attributes:
        key: packed 104-bit flow identifier.
        packets: packet count (dPkts).
        octets: byte count (dOctets).
        first_ms: flow start, SysUptime milliseconds.
        last_ms: flow end, SysUptime milliseconds.
    """

    key: int
    packets: int
    octets: int
    first_ms: int = 0
    last_ms: int = 0


class NetFlowV5Exporter:
    """Packs flow records into NetFlow v5 datagrams.

    Args:
        engine_id: exporter identifier carried in every header.
        sampling_interval: value for the header's sampling field (0 =
            unsampled; set to N when exporting from
            :class:`~repro.sketches.sampled.SampledNetFlow`).
        mean_packet_bytes: used to synthesize dOctets from packet counts.

    The exporter is stateful: ``flow_sequence`` increments across calls,
    as the protocol requires.
    """

    def __init__(
        self,
        engine_id: int = 0,
        sampling_interval: int = 0,
        mean_packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        if not 0 <= engine_id <= 0xFF:
            raise ValueError(f"engine_id out of range: {engine_id}")
        if not 0 <= sampling_interval <= 0x3FFF:
            raise ValueError(f"sampling_interval out of range: {sampling_interval}")
        if mean_packet_bytes <= 0:
            raise ValueError(f"mean_packet_bytes must be positive: {mean_packet_bytes}")
        self.engine_id = engine_id
        self.sampling_interval = sampling_interval
        self.mean_packet_bytes = mean_packet_bytes
        self.flow_sequence = 0

    def export(
        self,
        records: dict[int, int],
        sys_uptime_ms: int = 0,
        unix_secs: int = 0,
    ) -> list[bytes]:
        """Pack records into one or more v5 datagrams.

        Args:
            records: ``{packed flow key: packet count}``.
            sys_uptime_ms: exporter uptime for the header.
            unix_secs: export wall-clock time for the header.

        Returns:
            Encoded datagrams, each carrying at most 30 records.
        """
        datagrams = []
        items = sorted(records.items())
        for start in range(0, len(items), MAX_RECORDS_PER_DATAGRAM):
            chunk = items[start : start + MAX_RECORDS_PER_DATAGRAM]
            body = b"".join(
                self._encode_record(key, count, sys_uptime_ms)
                for key, count in chunk
            )
            header = _HEADER.pack(
                NETFLOW_V5_VERSION,
                len(chunk),
                sys_uptime_ms & 0xFFFFFFFF,
                unix_secs & 0xFFFFFFFF,
                0,  # unix_nsecs
                self.flow_sequence & 0xFFFFFFFF,
                0,  # engine_type
                self.engine_id,
                self.sampling_interval,
            )
            self.flow_sequence += len(chunk)
            datagrams.append(header + body)
        return datagrams

    def _encode_record(self, key: int, count: int, uptime_ms: int) -> bytes:
        src_ip, dst_ip, src_port, dst_port, proto = unpack_key(key)
        octets = count * self.mean_packet_bytes
        return _RECORD.pack(
            src_ip,
            dst_ip,
            0,  # nexthop
            0,  # input if
            0,  # output if
            count & 0xFFFFFFFF,
            octets & 0xFFFFFFFF,
            uptime_ms & 0xFFFFFFFF,  # first
            uptime_ms & 0xFFFFFFFF,  # last
            src_port,
            dst_port,
            0,  # pad1
            0,  # tcp_flags
            proto,
            0,  # tos
            0,  # src_as
            0,  # dst_as
            0,  # src_mask
            0,  # dst_mask
            0,  # pad2
        )


def parse_datagram(data: bytes) -> tuple[dict, list[NetFlowV5Record]]:
    """Parse one NetFlow v5 datagram.

    Returns:
        ``(header_fields, records)`` where ``header_fields`` is a dict
        with ``version / count / sys_uptime / unix_secs / flow_sequence /
        engine_id / sampling_interval``.

    Raises:
        ValueError: on a malformed or non-v5 datagram.
    """
    if len(data) < HEADER_BYTES:
        raise ValueError("datagram shorter than a v5 header")
    (
        version,
        count,
        sys_uptime,
        unix_secs,
        _unix_nsecs,
        flow_sequence,
        _engine_type,
        engine_id,
        sampling_interval,
    ) = _HEADER.unpack_from(data, 0)
    if version != NETFLOW_V5_VERSION:
        raise ValueError(f"not a NetFlow v5 datagram (version {version})")
    expected = HEADER_BYTES + count * RECORD_BYTES
    if len(data) < expected:
        raise ValueError(
            f"datagram truncated: {len(data)} bytes for {count} records"
        )
    header = {
        "version": version,
        "count": count,
        "sys_uptime": sys_uptime,
        "unix_secs": unix_secs,
        "flow_sequence": flow_sequence,
        "engine_id": engine_id,
        "sampling_interval": sampling_interval,
    }
    records = []
    for i in range(count):
        fields = _RECORD.unpack_from(data, HEADER_BYTES + i * RECORD_BYTES)
        (src_ip, dst_ip, _nh, _in, _out, pkts, octets, first, last,
         sport, dport, _pad1, _flags, proto, _tos, _sas, _das, _sm, _dm,
         _pad2) = fields
        records.append(
            NetFlowV5Record(
                key=pack_key(src_ip, dst_ip, sport, dport, proto),
                packets=pkts,
                octets=octets,
                first_ms=first,
                last_ms=last,
            )
        )
    return header, records


def parse_stream(datagrams: Iterator[bytes]) -> dict[int, int]:
    """Merge a sequence of datagrams back into ``{flow: packets}``.

    Records for the same flow across datagrams are summed (as a
    collector would when an exporter splits or re-exports flows).
    """
    merged: dict[int, int] = {}
    for datagram in datagrams:
        _, records = parse_datagram(datagram)
        for record in records:
            merged[record.key] = merged.get(record.key, 0) + record.packets
    return merged
