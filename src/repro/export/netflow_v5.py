"""NetFlow v5 datagram export/import.

HashFlow is a NetFlow replacement on the switch, but the records it
collects still need to reach a collector; NetFlow v5 is the lingua
franca.  This module packs ``{flow key: packet count}`` records into
standard v5 datagrams (24-byte header + up to 30 x 48-byte records) and
parses them back, so records from any :class:`FlowCollector` can be
consumed by stock tooling (nfdump, flow-tools, commercial collectors).

The 5-tuple and the packet count (dPkts) are always populated.  For
``dOctets`` the precedence is: a *measured* per-flow byte count when
the caller supplies one (collectors tracking real byte volumes, e.g.
``HashFlow(track_bytes=True)``) wins; otherwise the field is estimated
from a configurable mean packet size (the historical behaviour, kept
as the fallback).  ``first``/``last`` likewise take per-flow SysUptime
milliseconds when supplied (timeout-expiry exports know them) and fall
back to the header's ``sys_uptime_ms``.  AS numbers and interface
indices are left zero, as software exporters commonly do.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.flow.key import pack_key, unpack_key
from repro.flow.packet import DEFAULT_PACKET_BYTES

NETFLOW_V5_VERSION = 5
MAX_RECORDS_PER_DATAGRAM = 30

_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

HEADER_BYTES = _HEADER.size  # 24
RECORD_BYTES = _RECORD.size  # 48


@dataclass(frozen=True, slots=True)
class NetFlowV5Record:
    """One parsed NetFlow v5 record (the fields this library populates).

    Attributes:
        key: packed 104-bit flow identifier.
        packets: packet count (dPkts).
        octets: byte count (dOctets).
        first_ms: flow start, SysUptime milliseconds.
        last_ms: flow end, SysUptime milliseconds.
    """

    key: int
    packets: int
    octets: int
    first_ms: int = 0
    last_ms: int = 0


class NetFlowV5Exporter:
    """Packs flow records into NetFlow v5 datagrams.

    Args:
        engine_id: exporter identifier carried in every header.
        sampling_interval: value for the header's sampling field (0 =
            unsampled; set to N when exporting from
            :class:`~repro.sketches.sampled.SampledNetFlow`).
        mean_packet_bytes: used to synthesize dOctets from packet
            counts for flows without a measured byte count.

    The exporter is stateful: ``flow_sequence`` increments across calls,
    as the protocol requires.
    """

    def __init__(
        self,
        engine_id: int = 0,
        sampling_interval: int = 0,
        mean_packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        if not 0 <= engine_id <= 0xFF:
            raise ValueError(f"engine_id out of range: {engine_id}")
        if not 0 <= sampling_interval <= 0x3FFF:
            raise ValueError(f"sampling_interval out of range: {sampling_interval}")
        if mean_packet_bytes <= 0:
            raise ValueError(f"mean_packet_bytes must be positive: {mean_packet_bytes}")
        self.engine_id = engine_id
        self.sampling_interval = sampling_interval
        self.mean_packet_bytes = mean_packet_bytes
        self.flow_sequence = 0

    def export(
        self,
        records: dict[int, int],
        sys_uptime_ms: int = 0,
        unix_secs: int = 0,
        octets: Mapping[int, int] | None = None,
        times_ms: Mapping[int, tuple[int, int]] | None = None,
    ) -> list[bytes]:
        """Pack records into one or more v5 datagrams.

        Args:
            records: ``{packed flow key: packet count}``.
            sys_uptime_ms: exporter uptime for the header (and the
                ``first``/``last`` fallback).
            unix_secs: export wall-clock time for the header.
            octets: optional measured ``{flow key: byte count}``; a
                present key overrides the mean-packet-size estimate
                (measured beats estimated), missing keys fall back.
            times_ms: optional ``{flow key: (first_ms, last_ms)}``
                SysUptime flow timing; missing keys fall back to
                ``sys_uptime_ms`` for both fields.

        Returns:
            Encoded datagrams, each carrying at most 30 records.
        """
        datagrams = []
        items = sorted(records.items())
        for start in range(0, len(items), MAX_RECORDS_PER_DATAGRAM):
            chunk = items[start : start + MAX_RECORDS_PER_DATAGRAM]
            body = b"".join(
                self._encode_record(key, count, sys_uptime_ms, octets, times_ms)
                for key, count in chunk
            )
            header = _HEADER.pack(
                NETFLOW_V5_VERSION,
                len(chunk),
                sys_uptime_ms & 0xFFFFFFFF,
                unix_secs & 0xFFFFFFFF,
                0,  # unix_nsecs
                self.flow_sequence & 0xFFFFFFFF,
                0,  # engine_type
                self.engine_id,
                self.sampling_interval,
            )
            self.flow_sequence += len(chunk)
            datagrams.append(header + body)
        return datagrams

    def export_flows(
        self,
        flows: Iterable,
        sys_uptime_ms: int = 0,
        unix_secs: int = 0,
    ) -> list[bytes]:
        """Export flow-record objects, carrying their bytes and timing.

        Accepts any iterable of records exposing ``key`` / ``packets``
        and optionally ``octets`` / ``first_seen`` / ``last_seen`` —
        :class:`~repro.stream.records.FlowRecord` (and therefore
        ``TimeoutHashFlow.ExportedRecord``) qualify.  Measured octets
        take precedence over the mean-packet-size estimate; first/last
        seen timestamps (seconds; None means untracked, a measured
        0.0 counts) are converted to SysUptime milliseconds for the v5
        ``first``/``last`` fields.  Duplicate keys within one call
        merge: packet and byte counts sum, timing spans (min first,
        max last).  A flow with *any* unmeasured segment falls back to
        the whole-flow estimate — a partial measured sum would
        under-report dOctets.

        Args:
            flows: the records to export.
            sys_uptime_ms: header uptime (and timing fallback for
                records without timestamps).
            unix_secs: export wall-clock time for the header.

        Returns:
            Encoded datagrams, each carrying at most 30 records.
        """
        records: dict[int, int] = {}
        octets: dict[int, int] = {}
        unmeasured: set[int] = set()
        times_ms: dict[int, tuple[int, int]] = {}
        for flow in flows:
            key = flow.key
            records[key] = records.get(key, 0) + flow.packets
            measured = getattr(flow, "octets", None)
            if measured is None:
                unmeasured.add(key)
            else:
                octets[key] = octets.get(key, 0) + int(measured)
            first = getattr(flow, "first_seen", None)
            last = getattr(flow, "last_seen", None)
            if first is not None or last is not None:
                first_ms = int(round((first if first is not None else last) * 1000.0))
                last_ms = int(round((last if last is not None else first) * 1000.0))
                if key in times_ms:
                    prev_first, prev_last = times_ms[key]
                    first_ms = min(first_ms, prev_first)
                    last_ms = max(last_ms, prev_last)
                times_ms[key] = (first_ms, last_ms)
        for key in unmeasured:
            octets.pop(key, None)
        return self.export(
            records,
            sys_uptime_ms=sys_uptime_ms,
            unix_secs=unix_secs,
            octets=octets or None,
            times_ms=times_ms or None,
        )

    def _encode_record(
        self,
        key: int,
        count: int,
        uptime_ms: int,
        octets_map: Mapping[int, int] | None = None,
        times_map: Mapping[int, tuple[int, int]] | None = None,
    ) -> bytes:
        octets = None if octets_map is None else octets_map.get(key)
        if octets is None:
            # Fallback: estimate from the configured mean packet size.
            octets = count * self.mean_packet_bytes
        first_ms = last_ms = uptime_ms
        if times_map is not None:
            first_ms, last_ms = times_map.get(key, (uptime_ms, uptime_ms))
        return encode_record(key, count, octets, first_ms, last_ms)


def encode_header(
    count: int,
    sys_uptime_ms: int = 0,
    unix_secs: int = 0,
    flow_sequence: int = 0,
    engine_id: int = 0,
    sampling_interval: int = 0,
) -> bytes:
    """Pack one 24-byte v5 header for ``count`` records."""
    return _HEADER.pack(
        NETFLOW_V5_VERSION,
        count,
        sys_uptime_ms & 0xFFFFFFFF,
        unix_secs & 0xFFFFFFFF,
        0,  # unix_nsecs
        flow_sequence & 0xFFFFFFFF,
        0,  # engine_type
        engine_id,
        sampling_interval,
    )


def encode_record(
    key: int,
    packets: int,
    octets: int,
    first_ms: int = 0,
    last_ms: int | None = None,
) -> bytes:
    """Pack one 48-byte v5 record from a packed flow key.

    The inverse of the record half of :func:`parse_datagram`: the
    5-tuple comes from the key, counters and SysUptime timing from the
    arguments, everything else (AS numbers, interfaces, masks) zero.
    """
    src_ip, dst_ip, src_port, dst_port, proto = unpack_key(key)
    if last_ms is None:
        last_ms = first_ms
    return _RECORD.pack(
        src_ip,
        dst_ip,
        0,  # nexthop
        0,  # input if
        0,  # output if
        packets & 0xFFFFFFFF,
        octets & 0xFFFFFFFF,
        first_ms & 0xFFFFFFFF,
        last_ms & 0xFFFFFFFF,
        src_port,
        dst_port,
        0,  # pad1
        0,  # tcp_flags
        proto,
        0,  # tos
        0,  # src_as
        0,  # dst_as
        0,  # src_mask
        0,  # dst_mask
        0,  # pad2
    )


def split_datagram(data: bytes) -> tuple[dict, memoryview] | None:
    """Header + the *complete* record payload of a v5 datagram.

    The tolerant front half shared by :func:`parse_datagram` and
    :func:`parse_datagram_partial`: a datagram too short for a header,
    or carrying a different NetFlow version, yields None; otherwise the
    payload view covers ``min(count, records that fit)`` whole records
    — a truncated trailing record is excluded, never an error.

    Returns:
        ``(header_fields, payload)`` where ``payload`` is a zero-copy
        ``memoryview`` over a whole number of 48-byte records.
    """
    if len(data) < HEADER_BYTES:
        return None
    (
        version,
        count,
        sys_uptime,
        unix_secs,
        _unix_nsecs,
        flow_sequence,
        _engine_type,
        engine_id,
        sampling_interval,
    ) = _HEADER.unpack_from(data, 0)
    if version != NETFLOW_V5_VERSION:
        return None
    header = {
        "version": version,
        "count": count,
        "sys_uptime": sys_uptime,
        "unix_secs": unix_secs,
        "flow_sequence": flow_sequence,
        "engine_id": engine_id,
        "sampling_interval": sampling_interval,
    }
    complete = min(count, (len(data) - HEADER_BYTES) // RECORD_BYTES)
    payload = memoryview(data)[
        HEADER_BYTES : HEADER_BYTES + complete * RECORD_BYTES
    ]
    return header, payload


def _decode_records(payload: memoryview) -> list[NetFlowV5Record]:
    records = []
    for offset in range(0, len(payload), RECORD_BYTES):
        (src_ip, dst_ip, _nh, _in, _out, pkts, octets, first, last,
         sport, dport, _pad1, _flags, proto, _tos, _sas, _das, _sm, _dm,
         _pad2) = _RECORD.unpack_from(payload, offset)
        records.append(
            NetFlowV5Record(
                key=pack_key(src_ip, dst_ip, sport, dport, proto),
                packets=pkts,
                octets=octets,
                first_ms=first,
                last_ms=last,
            )
        )
    return records


def parse_datagram(data: bytes) -> tuple[dict, list[NetFlowV5Record]]:
    """Parse one NetFlow v5 datagram.

    Returns:
        ``(header_fields, records)`` where ``header_fields`` is a dict
        with ``version / count / sys_uptime / unix_secs / flow_sequence /
        engine_id / sampling_interval``.

    Raises:
        ValueError: on a malformed or non-v5 datagram.
    """
    split = split_datagram(data)
    if split is None:
        if len(data) < HEADER_BYTES:
            raise ValueError("datagram shorter than a v5 header")
        version = _HEADER.unpack_from(data, 0)[0]
        raise ValueError(f"not a NetFlow v5 datagram (version {version})")
    header, payload = split
    if len(payload) < header["count"] * RECORD_BYTES:
        raise ValueError(
            f"datagram truncated: {len(data)} bytes for {header['count']} records"
        )
    return header, _decode_records(payload)


def parse_datagram_partial(
    data: bytes,
) -> tuple[dict | None, list[NetFlowV5Record], int]:
    """Parse as much of a v5 datagram as is actually present.

    The live-collector counterpart of :func:`parse_datagram`: a UDP
    listener cannot afford to raise away a whole datagram because the
    wire truncated its tail (or a stray non-NetFlow packet hit the
    port), so this returns what decoded cleanly plus how far decoding
    got instead of raising mid-datagram.

    Returns:
        ``(header, records, consumed)`` — ``header`` is None (with no
        records and ``consumed == 0``) for a datagram too short for a
        v5 header or of a different NetFlow version; otherwise
        ``records`` holds every complete record (at most the header's
        claimed count) and ``consumed`` is the byte offset one past the
        last decoded record.
    """
    split = split_datagram(data)
    if split is None:
        return None, [], 0
    header, payload = split
    return header, _decode_records(payload), HEADER_BYTES + len(payload)


def split_stream(data: bytes) -> list[bytes]:
    """Split concatenated v5 datagrams back into individual datagrams.

    The inverse of ``b"".join(datagrams)`` as written by durable
    rotation archives (:class:`~repro.stream.durable.RotationArchive`
    files hold one rotation's datagrams back to back): each datagram's
    length is ``HEADER_BYTES + count * RECORD_BYTES``, recoverable from
    its own header.

    Raises:
        ValueError: when the bytes are not a whole number of well-formed
            v5 datagrams (a truncated archive — which the atomic write
            discipline is there to prevent).
    """
    datagrams: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_BYTES:
            raise ValueError(
                f"trailing {total - offset} bytes are shorter than a v5 header"
            )
        version, count = _HEADER.unpack_from(data, offset)[:2]
        if version != NETFLOW_V5_VERSION:
            raise ValueError(
                f"not a NetFlow v5 datagram at offset {offset} "
                f"(version {version})"
            )
        size = HEADER_BYTES + count * RECORD_BYTES
        if total - offset < size:
            raise ValueError(
                f"datagram at offset {offset} truncated: {total - offset} "
                f"bytes for {count} records"
            )
        datagrams.append(bytes(data[offset : offset + size]))
        offset += size
    return datagrams


def parse_stream(datagrams: Iterator[bytes]) -> dict[int, int]:
    """Merge a sequence of datagrams back into ``{flow: packets}``.

    Records for the same flow across datagrams are summed (as a
    collector would when an exporter splits or re-exports flows).
    """
    merged: dict[int, int] = {}
    for datagram in datagrams:
        _, records = parse_datagram(datagram)
        for record in records:
            merged[record.key] = merged.get(record.key, 0) + record.packets
    return merged


def parse_stream_records(datagrams: Iterator[bytes]) -> list[NetFlowV5Record]:
    """Parse a sequence of datagrams into full records, merged per flow.

    Like :func:`parse_stream` but keeps the whole record, not just the
    packet count — dOctets sum alongside dPkts and the time bounds
    widen to min(first)/max(last), which is what a summary store needs
    when it ingests archived exports (packets-only parsing is where
    byte counts used to silently vanish).  Records come back in packed
    flow-key order.
    """
    merged: dict[int, NetFlowV5Record] = {}
    for datagram in datagrams:
        _, records = parse_datagram(datagram)
        for record in records:
            prior = merged.get(record.key)
            if prior is None:
                merged[record.key] = record
            else:
                merged[record.key] = NetFlowV5Record(
                    key=record.key,
                    packets=prior.packets + record.packets,
                    octets=prior.octets + record.octets,
                    first_ms=min(prior.first_ms, record.first_ms),
                    last_ms=max(prior.last_ms, record.last_ms),
                )
    return [merged[key] for key in sorted(merged)]
