"""CSV and JSON-lines export of flow records.

For pipelines that do not speak NetFlow: dump any collector's records
as human-greppable text with the 5-tuple broken out into columns.
"""

from __future__ import annotations

import csv
import io
import json

from repro.flow.key import format_ip, pack_key, parse_ip, unpack_key

CSV_COLUMNS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "packets")


def records_to_csv(records: dict[int, int]) -> str:
    """Render records as CSV text (header + one row per flow).

    Rows are sorted by descending packet count, then by key, so the
    heaviest flows lead the file.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for key, count in sorted(records.items(), key=lambda kv: (-kv[1], kv[0])):
        src_ip, dst_ip, src_port, dst_port, proto = unpack_key(key)
        writer.writerow(
            [format_ip(src_ip), format_ip(dst_ip), src_port, dst_port, proto, count]
        )
    return buffer.getvalue()


def records_from_csv(text: str) -> dict[int, int]:
    """Parse CSV produced by :func:`records_to_csv` back into records.

    Raises:
        ValueError: if the header does not match.
    """
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != list(CSV_COLUMNS):
        raise ValueError(f"unexpected CSV header: {header}")
    records: dict[int, int] = {}
    for row in reader:
        if not row:
            continue
        src, dst, sport, dport, proto, count = row
        key = pack_key(parse_ip(src), parse_ip(dst), int(sport), int(dport), int(proto))
        records[key] = records.get(key, 0) + int(count)
    return records


def records_to_jsonl(records: dict[int, int]) -> str:
    """Render records as JSON lines (one object per flow)."""
    lines = []
    for key, count in sorted(records.items(), key=lambda kv: (-kv[1], kv[0])):
        src_ip, dst_ip, src_port, dst_port, proto = unpack_key(key)
        lines.append(
            json.dumps(
                {
                    "src_ip": format_ip(src_ip),
                    "dst_ip": format_ip(dst_ip),
                    "src_port": src_port,
                    "dst_port": dst_port,
                    "proto": proto,
                    "packets": count,
                },
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def records_from_jsonl(text: str) -> dict[int, int]:
    """Parse JSON lines produced by :func:`records_to_jsonl`."""
    records: dict[int, int] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        key = pack_key(
            parse_ip(obj["src_ip"]),
            parse_ip(obj["dst_ip"]),
            int(obj["src_port"]),
            int(obj["dst_port"]),
            int(obj["proto"]),
        )
        records[key] = records.get(key, 0) + int(obj["packets"])
    return records
