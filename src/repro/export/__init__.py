"""Record export: NetFlow v5 datagrams and CSV/JSON text formats."""

from repro.export.netflow_v5 import (
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    NetFlowV5Exporter,
    NetFlowV5Record,
    parse_datagram,
    parse_stream,
)
from repro.export.text import (
    records_from_csv,
    records_from_jsonl,
    records_to_csv,
    records_to_jsonl,
)

__all__ = [
    "MAX_RECORDS_PER_DATAGRAM",
    "NETFLOW_V5_VERSION",
    "NetFlowV5Exporter",
    "NetFlowV5Record",
    "parse_datagram",
    "parse_stream",
    "records_from_csv",
    "records_from_jsonl",
    "records_to_csv",
    "records_to_jsonl",
]
