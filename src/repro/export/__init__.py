"""Record export: NetFlow v5 datagrams and CSV/JSON text formats."""

from repro.export.netflow_v5 import (
    HEADER_BYTES,
    MAX_RECORDS_PER_DATAGRAM,
    NETFLOW_V5_VERSION,
    RECORD_BYTES,
    NetFlowV5Exporter,
    NetFlowV5Record,
    encode_header,
    encode_record,
    parse_datagram,
    parse_datagram_partial,
    parse_stream,
    parse_stream_records,
    split_datagram,
    split_stream,
)
from repro.export.text import (
    records_from_csv,
    records_from_jsonl,
    records_to_csv,
    records_to_jsonl,
)

__all__ = [
    "HEADER_BYTES",
    "MAX_RECORDS_PER_DATAGRAM",
    "NETFLOW_V5_VERSION",
    "RECORD_BYTES",
    "NetFlowV5Exporter",
    "NetFlowV5Record",
    "encode_header",
    "encode_record",
    "parse_datagram",
    "parse_datagram_partial",
    "parse_stream",
    "parse_stream_records",
    "split_datagram",
    "split_stream",
    "records_from_csv",
    "records_from_jsonl",
    "records_to_csv",
    "records_to_jsonl",
]
