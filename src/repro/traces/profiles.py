"""Calibrated trace profiles matching the paper's four evaluation traces.

Table I of the paper:

=======  ==========  =============  ==============
Trace    Date        max flow size  mean flow size
=======  ==========  =============  ==============
CAIDA    2018/03/15  110900 pkts    3.2 pkts
Campus   2014/02/07  289877 pkts    15.1 pkts
ISP1     2009/04/10  84357 pkts     5.2 pkts
ISP2     2015/12/31  2441 pkts      1.3 pkts
=======  ==========  =============  ==============

Each profile fixes the mice/elephant mixture shape and solves the tail
weight so the mixture mean matches Table I.  ISP2 is special: the paper
notes it is 1:5000-sampled from an access link, with more than 99% of
flows shorter than 5 packets; its profile uses a thin, short tail that
mirrors that shape (see also :mod:`repro.traces.sampling` for deriving
such traces by actually sampling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.synthetic import SizeModel, solve_tail_weight, synthesize
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class TraceProfile:
    """A named, calibrated synthetic trace profile.

    Attributes:
        name: trace name as used in the paper's figures.
        date: capture date from Table I (metadata only).
        target_mean: Table I mean flow size (packets).
        max_size: Table I max flow size (packets).
        mice_p: geometric parameter of the mice component.
        tail_alpha: Pareto exponent of the elephant component.
        tail_min: smallest elephant size.
        default_flows: reference flow count used for Table I / Fig. 3
            regeneration.
    """

    name: str
    date: str
    target_mean: float
    max_size: int
    mice_p: float
    tail_alpha: float
    tail_min: float
    default_flows: int = 250_000

    def size_model(self) -> SizeModel:
        """The calibrated mixture model for this profile."""
        weight = solve_tail_weight(
            self.target_mean, self.mice_p, self.tail_alpha, self.tail_min, self.max_size
        )
        return SizeModel(
            mice_p=self.mice_p,
            tail_alpha=self.tail_alpha,
            tail_min=self.tail_min,
            max_size=self.max_size,
            tail_weight=weight,
        )

    def generate(
        self,
        n_flows: int | None = None,
        seed: int = 0,
        interleave: str = "uniform",
        force_max: bool = False,
    ) -> Trace:
        """Generate a trace from this profile.

        Args:
            n_flows: number of flows (default: :attr:`default_flows`).
            seed: RNG seed; combined with the profile name so different
                profiles generated with the same seed are independent.
            interleave: packet interleaving mode (see
                :func:`repro.traces.synthetic.synthesize`).
            force_max: pin the largest flow to Table I's max size.  Only
                meaningful at (near-)paper flow counts; at small scales a
                forced elephant would distort the mean, so it defaults
                off and Table I regeneration enables it at scale >= 1.
        """
        n = self.default_flows if n_flows is None else n_flows
        # Offset the seed per profile so caida/seed=0 and campus/seed=0
        # do not share random streams.
        seed_offset = sum(ord(c) for c in self.name) * 10_007
        return synthesize(
            n,
            self.size_model(),
            seed=seed + seed_offset,
            name=self.name,
            interleave=interleave,
            force_max=force_max,
        )


CAIDA = TraceProfile(
    name="caida",
    date="2018/03/15",
    target_mean=3.2,
    max_size=110_900,
    mice_p=0.75,
    tail_alpha=1.5,
    tail_min=10.0,
)

CAMPUS = TraceProfile(
    name="campus",
    date="2014/02/07",
    target_mean=15.1,
    max_size=289_877,
    mice_p=0.5,
    tail_alpha=1.1,
    tail_min=20.0,
)

ISP1 = TraceProfile(
    name="isp1",
    date="2009/04/10",
    target_mean=5.2,
    max_size=84_357,
    mice_p=0.7,
    tail_alpha=1.45,
    tail_min=10.0,
)

ISP2 = TraceProfile(
    name="isp2",
    date="2015/12/31",
    target_mean=1.3,
    max_size=2_441,
    mice_p=0.85,
    tail_alpha=1.6,
    tail_min=8.0,
)

PROFILES: dict[str, TraceProfile] = {
    p.name: p for p in (CAIDA, CAMPUS, ISP1, ISP2)
}


def get_profile(name: str) -> TraceProfile:
    """Look up a profile by name (case-insensitive).

    Raises:
        KeyError: with the list of known names if not found.
    """
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown trace profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
