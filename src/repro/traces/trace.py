"""Trace container: a packet stream with known ground truth.

A :class:`Trace` stores a packet stream compactly: the list of distinct
flow keys, the per-flow packet counts, and an ``order`` array giving the
flow index of every packet.  This keeps multi-million-packet traces cheap
(one int32 per packet) while still allowing exact ground-truth queries,
flow subsetting ("select a constant number of flows from each trace and
feed the packets of these flows", paper Section IV-A), and iteration in
arrival order.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.flow.batch import KeyBatch
from repro.flow.packet import DEFAULT_PACKET_BYTES, Packet
from repro.flow.stats import TraceStats, size_cdf


class Trace:
    """An ordered packet stream over a fixed set of flows.

    Args:
        flow_keys: distinct packed 104-bit flow identifiers.
        order: int array, one entry per packet, giving the index into
            ``flow_keys`` of that packet's flow.
        timestamps: optional per-packet arrival times (seconds), same
            length as ``order`` and non-decreasing if provided.
        name: human-readable trace name (e.g. ``"caida"``).
    """

    def __init__(
        self,
        flow_keys: list[int],
        order: np.ndarray,
        timestamps: np.ndarray | None = None,
        name: str = "trace",
    ):
        order = np.asarray(order, dtype=np.int64)
        if order.size and (order.min() < 0 or order.max() >= len(flow_keys)):
            raise ValueError("order contains flow indices out of range")
        if timestamps is not None and len(timestamps) != len(order):
            raise ValueError(
                f"timestamps length {len(timestamps)} != packet count {len(order)}"
            )
        self.flow_keys = list(flow_keys)
        self.order = order
        self.timestamps = None if timestamps is None else np.asarray(timestamps, float)
        self.name = name
        self._sizes_cache: dict[int, int] | None = None
        self._flow_batch: KeyBatch | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of packets in the trace."""
        return int(self.order.size)

    @property
    def num_flows(self) -> int:
        """Number of distinct flows."""
        return len(self.flow_keys)

    def keys(self) -> Iterator[int]:
        """Iterate packed flow keys in packet arrival order."""
        flow_keys = self.flow_keys
        for idx in self.order:
            yield flow_keys[idx]

    def key_list(self) -> list[int]:
        """Materialize the per-packet key stream as a list (fast feeding)."""
        flow_keys = self.flow_keys
        return [flow_keys[idx] for idx in self.order.tolist()]

    def flow_batch(self) -> KeyBatch:
        """The distinct flow keys as a cached :class:`KeyBatch`.

        Both the packet stream (:meth:`key_batch`) and the evaluation
        truth vectors (``Workload.truth_batch``) derive from the same
        per-flow 64-bit halves, so they are split once and cached here.
        """
        if self._flow_batch is None:
            self._flow_batch = KeyBatch(self.flow_keys)
        return self._flow_batch

    def key_batch(self, sizes: np.ndarray | int | None = None) -> KeyBatch:
        """Materialize the stream as a :class:`~repro.flow.batch.KeyBatch`.

        The 64-bit halves every vectorized update path consumes are
        gathered per *flow* and broadcast to packets with one numpy
        indexing pass, so feeding a collector through the batch engine
        never splits keys packet-by-packet.

        Args:
            sizes: optional per-packet byte sizes carried on the batch —
                either an array of ``len(self)`` entries or a scalar
                byte size broadcast to every packet (the counterpart of
                :meth:`packets`' ``size`` argument).  Byte-tracking
                collectors consume them from their batched update path.
        """
        flow_lo, flow_hi = self.flow_batch().halves()
        if sizes is not None and np.ndim(sizes) == 0:
            sizes = np.full(len(self), int(sizes), dtype=np.int64)
        return KeyBatch(
            self.key_list(), flow_lo[self.order], flow_hi[self.order], sizes
        )

    def packets(self, size: int = DEFAULT_PACKET_BYTES) -> Iterator[Packet]:
        """Iterate :class:`~repro.flow.packet.Packet` objects in order."""
        flow_keys = self.flow_keys
        if self.timestamps is None:
            for idx in self.order:
                yield Packet(key=flow_keys[idx], timestamp=0.0, size=size)
        else:
            for idx, ts in zip(self.order, self.timestamps):
                yield Packet(key=flow_keys[idx], timestamp=float(ts), size=size)

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def flow_size_array(self) -> np.ndarray:
        """Per-flow packet counts, aligned with ``flow_keys``."""
        return np.bincount(self.order, minlength=self.num_flows)

    def true_sizes(self) -> dict[int, int]:
        """Ground-truth flow records: ``{flow key: packet count}``."""
        if self._sizes_cache is None:
            counts = self.flow_size_array()
            self._sizes_cache = {
                key: int(count)
                for key, count in zip(self.flow_keys, counts)
                if count > 0
            }
        return self._sizes_cache

    def stats(self) -> TraceStats:
        """Aggregate statistics (the paper's Table I row for this trace)."""
        return TraceStats.from_sizes(self.true_sizes())

    def cdf(self) -> list[tuple[int, float]]:
        """Cumulative flow-size distribution (paper Fig. 3)."""
        return size_cdf(self.true_sizes())

    # ------------------------------------------------------------------
    # Workload selection
    # ------------------------------------------------------------------
    def subset_flows(self, n_flows: int, seed: int | None = None) -> Trace:
        """Select ``n_flows`` flows and keep only their packets, in order.

        This implements the paper's trial construction: "we select a
        constant number of flows from each trace, and feed the packets of
        these flows to each algorithm".

        Args:
            n_flows: number of flows to keep; must not exceed
                :attr:`num_flows`.
            seed: if given, flows are chosen uniformly at random with
                this seed; otherwise the first ``n_flows`` flows in
                first-appearance order are kept.

        Returns:
            A new :class:`Trace` over the selected flows.
        """
        if n_flows > self.num_flows:
            raise ValueError(
                f"cannot select {n_flows} flows from a trace with {self.num_flows}"
            )
        if seed is None:
            chosen = self._first_seen_flows(n_flows)
        else:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(self.num_flows, size=n_flows, replace=False)
        keep = np.zeros(self.num_flows, dtype=bool)
        keep[chosen] = True
        mask = keep[self.order]
        remap = -np.ones(self.num_flows, dtype=np.int64)
        remap[chosen] = np.arange(n_flows)
        new_order = remap[self.order[mask]]
        new_keys = [self.flow_keys[i] for i in np.asarray(chosen).tolist()]
        new_ts = None if self.timestamps is None else self.timestamps[mask]
        return Trace(new_keys, new_order, new_ts, name=f"{self.name}[{n_flows}f]")

    def _first_seen_flows(self, n_flows: int) -> np.ndarray:
        """Indices of the first ``n_flows`` flows in appearance order."""
        _, first_pos = np.unique(self.order, return_index=True)
        by_appearance = np.argsort(first_pos)
        appeared = np.asarray(_, dtype=np.int64)[by_appearance]
        if len(appeared) < n_flows:
            # Flows that never appear in `order` are appended in index order
            # so that the selection is still well-defined.
            missing = np.setdiff1d(np.arange(self.num_flows), appeared)
            appeared = np.concatenate([appeared, missing])
        return appeared[:n_flows]

    def slice_packets(self, start: int, end: int) -> Trace:
        """The packets in ``[start, end)`` as a new trace.

        Flows without packets in the window are dropped and the
        remaining flows re-indexed in window order — the epoch-slicing
        primitive behind :func:`repro.traces.replay.split_by_packets`
        and the streaming :class:`~repro.stream.sources.TraceArraySource`.
        """
        order = self.order[start:end]
        used = np.unique(order)
        remap = -np.ones(self.num_flows, dtype=np.int64)
        remap[used] = np.arange(len(used))
        keys = [self.flow_keys[i] for i in used.tolist()]
        ts = None if self.timestamps is None else self.timestamps[start:end]
        return Trace(keys, remap[order], ts, name=f"{self.name}[{start}:{end}]")

    def truncate_packets(self, n_packets: int) -> Trace:
        """Keep only the first ``n_packets`` packets."""
        if n_packets < 0:
            raise ValueError(f"n_packets must be >= 0, got {n_packets}")
        n = min(n_packets, len(self))
        order = self.order[:n]
        used = np.unique(order)
        remap = -np.ones(self.num_flows, dtype=np.int64)
        remap[used] = np.arange(len(used))
        new_keys = [self.flow_keys[i] for i in used.tolist()]
        new_ts = None if self.timestamps is None else self.timestamps[:n]
        return Trace(new_keys, remap[order], new_ts, name=f"{self.name}[{n}p]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(name={self.name!r}, flows={self.num_flows}, packets={len(self)})"
        )


def trace_from_keys(keys: list[int], name: str = "trace") -> Trace:
    """Build a :class:`Trace` from an explicit per-packet key sequence.

    Convenience for tests and for importing external packet streams.
    """
    index: dict[int, int] = {}
    order = np.empty(len(keys), dtype=np.int64)
    flow_keys: list[int] = []
    for i, key in enumerate(keys):
        pos = index.get(key)
        if pos is None:
            pos = len(flow_keys)
            index[key] = pos
            flow_keys.append(key)
        order[i] = pos
    return Trace(flow_keys, order, name=name)
