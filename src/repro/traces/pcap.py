"""Minimal PCAP reader/writer for trace import/export.

Writes classic libpcap files (magic ``0xa1b2c3d4``, microsecond
timestamps, LINKTYPE_ETHERNET) with synthesized Ethernet/IPv4/TCP-or-UDP
headers carrying each packet's 5-tuple, and reads them back into
:class:`~repro.traces.trace.Trace` objects.  Only the fields the flow
key needs are parsed; other protocols are skipped.

This lets synthetic workloads be exported to standard tooling
(tcpdump/wireshark/bmv2) and real captures be imported for evaluation.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.flow.key import pack_key, unpack_key
from repro.traces.trace import Trace, trace_from_keys

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_PKT_HDR = struct.Struct("<IIII")
_ETH_HDR = struct.Struct("!6s6sH")
_IPV4_HDR = struct.Struct("!BBHHHBBH4s4s")
_PORTS_HDR = struct.Struct("!HH")

_ETH_TYPE_IPV4 = 0x0800
_SRC_MAC = b"\x02\x00\x00\x00\x00\x01"
_DST_MAC = b"\x02\x00\x00\x00\x00\x02"


def write_pcap(trace: Trace, path: str | Path, snaplen: int = 65535) -> int:
    """Write a trace as a classic pcap file.

    Each packet is emitted as Ethernet/IPv4/TCP-or-UDP with the flow's
    5-tuple; the transport header is truncated to the port fields (which
    is all a flow-record collector parses).

    Args:
        trace: trace to export.
        path: output file path.
        snaplen: snapshot length recorded in the global header.

    Returns:
        Number of packets written.
    """
    path = Path(path)
    count = 0
    with path.open("wb") as fh:
        fh.write(_GLOBAL_HDR.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET))
        for pkt in trace.packets():
            src_ip, dst_ip, sport, dport, proto = unpack_key(pkt.key)
            payload = _PORTS_HDR.pack(sport, dport)
            ip_total = _IPV4_HDR.size + len(payload)
            ip_hdr = _IPV4_HDR.pack(
                0x45,  # version 4, IHL 5
                0,
                ip_total,
                0,
                0,
                64,  # TTL
                proto,
                0,  # checksum left zero; parsers here do not verify it
                src_ip.to_bytes(4, "big"),
                dst_ip.to_bytes(4, "big"),
            )
            frame = _ETH_HDR.pack(_DST_MAC, _SRC_MAC, _ETH_TYPE_IPV4) + ip_hdr + payload
            ts = pkt.timestamp
            sec = int(ts)
            usec = int(round((ts - sec) * 1_000_000)) % 1_000_000
            fh.write(_PKT_HDR.pack(sec, usec, len(frame), len(frame)))
            fh.write(frame)
            count += 1
    return count


def read_pcap(path: str | Path, name: str | None = None) -> Trace:
    """Read a pcap file into a :class:`Trace`.

    Non-IPv4 frames and IPv4 packets without at least 4 bytes of
    transport header are skipped (their ports cannot be recovered).

    Raises:
        ValueError: if the file is not a little-endian classic pcap with
            an Ethernet link type.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _GLOBAL_HDR.size:
        raise ValueError(f"{path} is too short to be a pcap file")
    magic, _vmaj, _vmin, _tz, _sig, _snap, linktype = _GLOBAL_HDR.unpack_from(data, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"{path}: unsupported pcap magic {magic:#x}")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"{path}: unsupported link type {linktype}")
    keys: list[int] = []
    pos = _GLOBAL_HDR.size
    while pos + _PKT_HDR.size <= len(data):
        _sec, _usec, caplen, _origlen = _PKT_HDR.unpack_from(data, pos)
        pos += _PKT_HDR.size
        frame = data[pos : pos + caplen]
        pos += caplen
        key = _parse_frame(frame)
        if key is not None:
            keys.append(key)
    return trace_from_keys(keys, name=name or path.stem)


def _parse_frame(frame: bytes) -> int | None:
    """Extract the packed 5-tuple key from an Ethernet frame, or None."""
    if len(frame) < _ETH_HDR.size:
        return None
    _dst, _src, eth_type = _ETH_HDR.unpack_from(frame, 0)
    if eth_type != _ETH_TYPE_IPV4:
        return None
    off = _ETH_HDR.size
    if len(frame) < off + _IPV4_HDR.size:
        return None
    first = frame[off]
    if first >> 4 != 4:
        return None
    ihl = (first & 0x0F) * 4
    fields = _IPV4_HDR.unpack_from(frame, off)
    proto = fields[6]
    src_ip = int.from_bytes(fields[8], "big")
    dst_ip = int.from_bytes(fields[9], "big")
    transport = off + ihl
    if len(frame) < transport + 4:
        return None
    sport, dport = _PORTS_HDR.unpack_from(frame, transport)
    return pack_key(src_ip, dst_ip, sport, dport, proto)
