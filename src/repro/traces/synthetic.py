"""Synthetic trace generation with calibrated heavy-tailed flow sizes.

The paper evaluates on four operational traces (CAIDA, Campus, ISP1,
ISP2) which are not redistributable.  We substitute synthetic traces
whose flow-size distributions are calibrated to the published statistics
(Table I: max and mean flow size; Fig. 3: skewed CDF; Section II: "7.7%
of the flows contribute more than 85% of the packets" for the campus
trace).  All evaluated behaviours depend only on the flow-size
distribution, the number of flows, and the packet interleaving, so this
substitution preserves the experiments' shape (see DESIGN.md).

The size model is a two-component mixture:

* *mice*: a geometric distribution on {1, 2, ...} (most flows are tiny);
* *elephants*: a discretized truncated Pareto with tail exponent
  ``alpha`` on ``[tail_min, max_size]``.

The mixture weight is solved analytically from the target mean in
:func:`solve_tail_weight`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flow.key import pack_key
from repro.traces.trace import Trace

COMMON_PORTS = (80, 443, 53, 22, 25, 8080, 123, 993)

#: Version of the generation algorithm itself.  Bump whenever a change
#: makes :func:`synthesize` produce a *different trace* for the same
#: ``(n_flows, model, seed, ...)`` inputs — the parallel engine's
#: on-disk trace cache keys on it (with the profile parameters), so a
#: bump invalidates stale cached traces instead of letting a parallel
#: run silently diverge from a serial one.
GENERATION_VERSION = 1


@dataclass(frozen=True, slots=True)
class SizeModel:
    """Parameters of the mice/elephant mixture flow-size distribution.

    Attributes:
        mice_p: success probability of the geometric mice component
            (mean mice size = ``1 / mice_p``).
        tail_alpha: Pareto tail exponent of the elephant component.
        tail_min: smallest elephant size.
        max_size: truncation point (largest possible flow).
        tail_weight: probability that a flow is an elephant.
    """

    mice_p: float
    tail_alpha: float
    tail_min: float
    max_size: int
    tail_weight: float

    def __post_init__(self):
        if not 0.0 < self.mice_p <= 1.0:
            raise ValueError(f"mice_p must be in (0, 1], got {self.mice_p}")
        if self.tail_alpha <= 0:
            raise ValueError(f"tail_alpha must be > 0, got {self.tail_alpha}")
        if self.tail_min < 1:
            raise ValueError(f"tail_min must be >= 1, got {self.tail_min}")
        if self.max_size < self.tail_min:
            raise ValueError("max_size must be >= tail_min")
        if not 0.0 <= self.tail_weight <= 1.0:
            raise ValueError(f"tail_weight must be in [0, 1], got {self.tail_weight}")

    def mean(self) -> float:
        """Approximate mean flow size of the mixture."""
        mice_mean = 1.0 / self.mice_p
        tail_mean = truncated_pareto_mean(self.tail_alpha, self.tail_min, self.max_size)
        return (1 - self.tail_weight) * mice_mean + self.tail_weight * tail_mean

    def sample(self, n_flows: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_flows`` flow sizes (>= 1 packets each)."""
        sizes = rng.geometric(self.mice_p, size=n_flows).astype(np.int64)
        is_tail = rng.random(n_flows) < self.tail_weight
        n_tail = int(is_tail.sum())
        if n_tail:
            sizes[is_tail] = sample_truncated_pareto(
                self.tail_alpha, self.tail_min, self.max_size, n_tail, rng
            )
        return sizes


def truncated_pareto_mean(alpha: float, lo: float, hi: float) -> float:
    """Mean of a continuous Pareto(alpha) truncated to ``[lo, hi]``.

    Used by :func:`solve_tail_weight` to calibrate the mixture weight.
    """
    if hi <= lo:
        return lo
    r = lo / hi
    if abs(alpha - 1.0) < 1e-9:
        return lo * np.log(hi / lo) / (1 - r)
    return lo * (alpha / (alpha - 1.0)) * (1 - r ** (alpha - 1.0)) / (1 - r**alpha)


def sample_truncated_pareto(
    alpha: float, lo: float, hi: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` integer sizes from a discretized truncated Pareto.

    Inverse-CDF sampling of the continuous truncated Pareto followed by
    rounding; results are clipped to ``[lo, hi]``.
    """
    u = rng.random(n)
    r = (lo / hi) ** alpha
    x = lo * (1 - u * (1 - r)) ** (-1.0 / alpha)
    return np.clip(np.round(x), lo, hi).astype(np.int64)


def solve_tail_weight(
    target_mean: float, mice_p: float, tail_alpha: float, tail_min: float, max_size: int
) -> float:
    """Solve the mixture weight that achieves ``target_mean``.

    ``mean = (1 - w) * mice_mean + w * tail_mean  =>  w``.

    Raises:
        ValueError: if the target mean cannot be represented by the
            component means (i.e. it is outside ``[mice_mean, tail_mean]``).
    """
    mice_mean = 1.0 / mice_p
    tail_mean = truncated_pareto_mean(tail_alpha, tail_min, max_size)
    if not mice_mean <= target_mean <= tail_mean:
        raise ValueError(
            f"target mean {target_mean} outside component means "
            f"[{mice_mean:.3f}, {tail_mean:.3f}]"
        )
    return (target_mean - mice_mean) / (tail_mean - mice_mean)


def generate_flow_keys(n_flows: int, rng: np.random.Generator) -> list[int]:
    """Generate ``n_flows`` distinct, realistic-looking 5-tuple keys.

    Sources are drawn from a moderately sized client pool, destinations
    are biased toward a small set of servers and well-known ports, and
    the protocol mix is TCP-heavy — resembling access-link traffic.
    Uniqueness of the packed keys is enforced by rejection.
    """
    if n_flows < 0:
        raise ValueError(f"n_flows must be >= 0, got {n_flows}")
    keys: list[int] = []
    seen: set[int] = set()
    n_servers = max(16, n_flows // 64)
    servers = rng.integers(0, 2**32, size=n_servers, dtype=np.uint64)
    while len(keys) < n_flows:
        batch = n_flows - len(keys)
        src = rng.integers(0, 2**32, size=batch, dtype=np.uint64)
        dst = servers[rng.integers(0, n_servers, size=batch)]
        sport = rng.integers(1024, 65536, size=batch, dtype=np.uint64)
        use_common = rng.random(batch) < 0.7
        dport = rng.integers(1024, 65536, size=batch, dtype=np.uint64)
        common = rng.choice(np.array(COMMON_PORTS, dtype=np.uint64), size=batch)
        dport = np.where(use_common, common, dport)
        proto = np.where(rng.random(batch) < 0.85, 6, 17).astype(np.uint64)
        for s, d, sp, dp, pr in zip(src, dst, sport, dport, proto):
            key = pack_key(int(s), int(d), int(sp), int(dp), int(pr))
            if key not in seen:
                seen.add(key)
                keys.append(key)
                if len(keys) == n_flows:
                    break
    return keys


def interleave_uniform(
    sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random interleaving: each packet slot holds a random flow.

    Produces an ``order`` array (flow index per packet) where every
    flow's packets are spread uniformly over the epoch — the steady-state
    mixing regime the paper's per-epoch evaluation assumes.
    """
    order = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    return rng.permutation(order)


def interleave_temporal(
    sizes: np.ndarray, rng: np.random.Generator, duration: float = 60.0
) -> tuple[np.ndarray, np.ndarray]:
    """Temporal interleaving: flows are bursts inside an epoch.

    Each flow gets a start time uniform in the epoch and a duration that
    grows with its size; its packets are placed uniformly inside the
    burst.  Returns ``(order, timestamps)`` sorted by time.  This mode
    exercises eviction dynamics (flows arriving and dying) that the
    uniform shuffle smooths away.
    """
    n_flows = len(sizes)
    total = int(sizes.sum())
    starts = rng.random(n_flows) * duration
    # A flow of s packets lasts ~ proportional to log(s), capped to the epoch.
    spans = np.minimum(duration * 0.25 * (1 + np.log1p(sizes)) / 8.0, duration)
    order = np.repeat(np.arange(n_flows, dtype=np.int64), sizes)
    ts = starts[order] + rng.random(total) * spans[order]
    ts = np.minimum(ts, duration)
    perm = np.argsort(ts, kind="stable")
    return order[perm], ts[perm]


def synthesize(
    n_flows: int,
    model: SizeModel,
    seed: int = 0,
    name: str = "synthetic",
    interleave: str = "uniform",
    force_max: bool = False,
) -> Trace:
    """Generate a synthetic trace.

    Args:
        n_flows: number of distinct flows.
        model: flow-size mixture model.
        seed: RNG seed; the whole trace is deterministic given the seed.
        name: trace name.
        interleave: ``"uniform"`` (random shuffle, no timestamps) or
            ``"temporal"`` (bursty arrivals with timestamps).
        force_max: if True, the largest flow's size is set to exactly
            ``model.max_size``, pinning the Table I "max flow size"
            statistic.

    Returns:
        A :class:`~repro.traces.trace.Trace`.
    """
    rng = np.random.default_rng(seed)
    sizes = model.sample(n_flows, rng)
    if force_max and n_flows:
        sizes[int(np.argmax(sizes))] = model.max_size
    keys = generate_flow_keys(n_flows, rng)
    if interleave == "uniform":
        order = interleave_uniform(sizes, rng)
        return Trace(keys, order, name=name)
    if interleave == "temporal":
        order, ts = interleave_temporal(sizes, rng)
        return Trace(keys, order, timestamps=ts, name=name)
    raise ValueError(f"unknown interleave mode: {interleave!r}")
