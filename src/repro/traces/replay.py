"""Epoch-based trace replay.

Operational NetFlow measures in epochs: fill tables for an interval,
export, reset, repeat.  This module slices traces into epochs (by
packet count or by timestamp windows) and drives any collector through
them, producing per-epoch record sets — the workflow the
:class:`~repro.core.adaptive.EpochedHashFlow` extension automates for
HashFlow specifically.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.sketches.base import FlowCollector
from repro.specs import CollectorSpec, as_spec
from repro.traces.trace import Trace


def split_by_packets(trace: Trace, epoch_packets: int) -> Iterator[Trace]:
    """Slice a trace into consecutive epochs of ``epoch_packets`` packets.

    The final epoch may be shorter.  Flows spanning epochs appear in
    each epoch they have packets in, as they would on a real device.
    """
    if epoch_packets <= 0:
        raise ValueError(f"epoch_packets must be positive, got {epoch_packets}")
    for start in range(0, len(trace), epoch_packets):
        yield _slice(trace, start, min(start + epoch_packets, len(trace)))


def split_by_time(trace: Trace, window: float) -> Iterator[Trace]:
    """Slice a timestamped trace into fixed-duration windows.

    Raises:
        ValueError: if the trace has no timestamps.
    """
    if trace.timestamps is None:
        raise ValueError("trace has no timestamps; use split_by_packets")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    ts = trace.timestamps
    start = 0
    epoch_end = (float(ts[0]) // window + 1) * window if len(ts) else 0.0
    for i in range(len(ts)):
        if ts[i] >= epoch_end:
            yield _slice(trace, start, i)
            start = i
            while ts[i] >= epoch_end:
                epoch_end += window
    if start < len(ts):
        yield _slice(trace, start, len(ts))


def _slice(trace: Trace, start: int, end: int) -> Trace:
    # Kept as the module's internal spelling; the logic lives on Trace.
    return trace.slice_packets(start, end)


@dataclass(frozen=True, slots=True)
class EpochReport:
    """Result of one measurement epoch.

    Attributes:
        index: epoch number (0-based).
        packets: packets processed in the epoch.
        flows: ground-truth distinct flows in the epoch.
        records: the collector's exported records.
    """

    index: int
    packets: int
    flows: int
    records: dict[int, int]


class EpochRunner:
    """Replays a trace through fresh collector instances per epoch.

    Args:
        collector: what each epoch runs — a
            :class:`~repro.specs.CollectorSpec` (or spec dict / kind
            name), a prototype collector (cloned per epoch via its
            spec), or a legacy zero-argument factory callable.  A new
            instance is built once per epoch, so state never leaks
            across epochs — the device reset the paper's epoch model
            implies.
    """

    def __init__(
        self,
        collector: CollectorSpec | FlowCollector | Mapping | str | Callable[[], FlowCollector],
    ):
        self.spec: CollectorSpec | None = None
        if isinstance(collector, FlowCollector):
            self.spec = collector.spec
            self.collector_factory: Callable[[], FlowCollector] = collector.fresh_factory()
        elif isinstance(collector, (CollectorSpec, Mapping, str)):
            self.spec = as_spec(collector)
            self.collector_factory = self.spec.build
        else:
            self.collector_factory = collector

    def run(
        self, trace: Trace, epoch_packets: int, jobs: int | None = None
    ) -> list[EpochReport]:
        """Run all epochs; returns one report per epoch.

        Epochs are independent by construction (a fresh collector per
        epoch, no cross-epoch state), so the runner can execute them
        through the parallel sweep engine: ``jobs`` (default: the
        ``REPRO_JOBS`` environment variable, else serial) selects the
        worker count.  Parallel reports are bit-identical to serial
        ones.  Runners built from a legacy factory callable cannot ship
        their collector to another process and always run serially.
        """
        from repro.parallel import resolve_jobs

        if epoch_packets <= 0:
            raise ValueError(f"epoch_packets must be positive, got {epoch_packets}")
        if resolve_jobs(jobs) > 1 and self.spec is not None and len(trace):
            return self._run_parallel(trace, epoch_packets, jobs)
        reports = []
        for index, epoch in enumerate(split_by_packets(trace, epoch_packets)):
            collector = self.collector_factory()
            # key_batch() carries the pre-split 64-bit halves, so
            # collectors with a vectorized update path skip per-packet
            # key splitting entirely.
            collector.process_all(epoch.key_batch())
            reports.append(
                EpochReport(
                    index=index,
                    packets=len(epoch),
                    flows=epoch.num_flows,
                    records=collector.records(),
                )
            )
        return reports

    def _run_parallel(
        self, trace: Trace, epoch_packets: int, jobs: int | None
    ) -> list[EpochReport]:
        """Fan the per-epoch cells out over the sweep engine.

        The trace is saved once as mmap-able arrays in a scratch
        directory; each cell references a packet slice of it, so
        workers map the shared arrays instead of receiving pickled
        epoch traces.  Cell slicing uses the same :func:`_slice` as
        :func:`split_by_packets`, and the collector is rebuilt from the
        runner's spec — the parallel run is bit-identical to serial.
        """
        import tempfile

        from repro.parallel import SweepCell, WorkloadRef, run_plan
        from repro.traces.io import save_trace_arrays

        with tempfile.TemporaryDirectory(prefix="repro-epochs-") as scratch:
            saved = save_trace_arrays(trace, Path(scratch) / "trace")
            cells = [
                SweepCell(
                    workload=WorkloadRef(
                        path=str(saved),
                        start=start,
                        stop=min(start + epoch_packets, len(trace)),
                    ),
                    spec_or_kind=self.spec,
                    metrics=("epoch_report",),
                    label=index,
                )
                for index, start in enumerate(
                    range(0, len(trace), epoch_packets)
                )
            ]
            results = run_plan(cells, jobs=jobs)
        return [
            EpochReport(
                index=index,
                packets=res.rows[0]["packets"],
                flows=res.rows[0]["flows"],
                records=res.rows[0]["records"],
            )
            for index, res in enumerate(results)
        ]

    @staticmethod
    def merge(reports: list[EpochReport]) -> dict[int, int]:
        """Sum per-epoch records into a whole-trace view."""
        merged: dict[int, int] = {}
        for report in reports:
            for key, count in report.records.items():
                merged[key] = merged.get(key, 0) + count
        return merged
