"""Trace substrate: synthetic generation, containers, sampling, I/O."""

from repro.traces.io import load_trace, save_trace
from repro.traces.mixer import (
    inject_elephants,
    merge_traces,
    port_scan,
    syn_flood,
)
from repro.traces.pcap import read_pcap, write_pcap
from repro.traces.replay import (
    EpochReport,
    EpochRunner,
    split_by_packets,
    split_by_time,
)
from repro.traces.profiles import (
    CAIDA,
    CAMPUS,
    ISP1,
    ISP2,
    PROFILES,
    TraceProfile,
    get_profile,
)
from repro.traces.sampling import (
    sample_deterministic,
    sample_probabilistic,
    thin_flow_sizes,
)
from repro.traces.synthetic import (
    SizeModel,
    interleave_temporal,
    interleave_uniform,
    sample_truncated_pareto,
    solve_tail_weight,
    synthesize,
    truncated_pareto_mean,
)
from repro.traces.trace import Trace, trace_from_keys

__all__ = [
    "CAIDA",
    "CAMPUS",
    "EpochReport",
    "EpochRunner",
    "ISP1",
    "ISP2",
    "PROFILES",
    "SizeModel",
    "Trace",
    "TraceProfile",
    "get_profile",
    "inject_elephants",
    "interleave_temporal",
    "interleave_uniform",
    "load_trace",
    "merge_traces",
    "port_scan",
    "read_pcap",
    "sample_deterministic",
    "sample_probabilistic",
    "sample_truncated_pareto",
    "save_trace",
    "solve_tail_weight",
    "split_by_packets",
    "split_by_time",
    "syn_flood",
    "synthesize",
    "thin_flow_sizes",
    "trace_from_keys",
    "truncated_pareto_mean",
    "write_pcap",
]
