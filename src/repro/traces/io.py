"""Compact binary persistence for traces (npz container).

Saves the trace's structural arrays plus the flow keys (104-bit ints,
stored as two 64-bit halves).  Round-trips exactly, unlike the pcap
path, which re-derives flows from synthesized headers.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.traces.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> None:
    """Save a trace to an ``.npz`` file.

    Args:
        trace: trace to persist.
        path: destination path (``.npz`` appended by numpy if missing).
    """
    keys = trace.flow_keys
    lo = np.array([k & 0xFFFFFFFFFFFFFFFF for k in keys], dtype=np.uint64)
    hi = np.array([k >> 64 for k in keys], dtype=np.uint64)
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "name": np.array([trace.name]),
        "key_lo": lo,
        "key_hi": hi,
        "order": trace.order,
    }
    if trace.timestamps is not None:
        payload["timestamps"] = trace.timestamps
    np.savez_compressed(Path(path), **payload)


def load_trace(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: if the file has an unknown format version.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        lo = data["key_lo"].astype(object)
        hi = data["key_hi"].astype(object)
        keys = [int(h) << 64 | int(l) for h, l in zip(hi, lo)]
        order = data["order"]
        ts = data["timestamps"] if "timestamps" in data else None
        name = str(data["name"][0])
    return Trace(keys, order, ts, name=name)
