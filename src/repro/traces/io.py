"""Compact binary persistence for traces and key batches.

Two storage layouts serve two different consumers:

* :func:`save_trace` / :func:`load_trace` — a single compressed
  ``.npz`` container, the archival format.  Round-trips exactly,
  unlike the pcap path, which re-derives flows from synthesized
  headers.
* :func:`save_trace_arrays` / :func:`load_trace_arrays` — one raw
  ``.npy`` file per structural array inside a directory, written once
  and **memory-mapped** by readers.  This is the currency of the
  parallel sweep engine (:mod:`repro.parallel`): the parent process
  materializes each distinct workload trace once, and every worker
  process maps the per-packet ``order``/``timestamps`` arrays straight
  from the page cache instead of re-generating (or re-copying) the
  trace N times.

Both layouts store the 104-bit flow keys as two ``uint64`` half
arrays (the same split the batch engine uses), so keys round-trip
exactly at any width.  :func:`save_key_batch` / :func:`load_key_batch`
persist a standalone :class:`~repro.flow.batch.KeyBatch` (halves plus
optional per-packet sizes) the same way.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
from pathlib import Path

import numpy as np

from repro.flow.batch import KeyBatch
from repro.traces.trace import Trace

_FORMAT_VERSION = 1

#: meta.json schema version of the directory (array) layout.
_ARRAY_FORMAT_VERSION = 1

_META_NAME = "meta.json"


def _keys_from_halves(lo: np.ndarray, hi: np.ndarray) -> list[int]:
    """Rebuild exact Python-int keys from their 64-bit halves."""
    return [
        (h << 64) | l for h, l in zip(hi.tolist(), lo.tolist())
    ]


def _npz_path(path: str | Path) -> Path:
    """Resolve the ``.npz`` suffix ``np.savez`` appends on save.

    ``np.savez_compressed("x")`` writes ``x.npz``; loading must accept
    the same suffix-less argument the saver was given.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        return path.with_name(path.name + ".npz")
    return path


def save_trace(trace: Trace, path: str | Path) -> None:
    """Save a trace to an ``.npz`` file.

    Args:
        trace: trace to persist.
        path: destination path (``.npz`` appended by numpy if missing).
    """
    lo, hi = trace.flow_batch().halves()
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "name": np.array([trace.name]),
        "key_lo": lo,
        "key_hi": hi,
        "order": trace.order,
    }
    if trace.timestamps is not None:
        payload["timestamps"] = trace.timestamps
    np.savez_compressed(Path(path), **payload)


def load_trace(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`save_trace`.

    Raises:
        ValueError: if the file has an unknown format version.
    """
    with np.load(_npz_path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        keys = _keys_from_halves(data["key_lo"], data["key_hi"])
        order = data["order"]
        ts = data["timestamps"] if "timestamps" in data else None
        name = str(data["name"][0])
    return Trace(keys, order, ts, name=name)


# ----------------------------------------------------------------------
# Directory (mmap-friendly) layout
# ----------------------------------------------------------------------
def save_trace_arrays(trace: Trace, dir_path: str | Path) -> Path:
    """Persist a trace as raw ``.npy`` arrays for memory-mapped loading.

    The write is atomic against concurrent writers: arrays land in a
    scratch directory first and are renamed into place in one step, so
    a reader (or a racing writer producing the same trace) never sees a
    half-written directory.  If ``dir_path`` already exists it is left
    untouched — the layout is content-keyed by its producers, so an
    existing directory already holds the same trace.

    Args:
        trace: trace to persist.
        dir_path: destination directory.

    Returns:
        The destination directory path.
    """
    dest = Path(dir_path)
    if (dest / _META_NAME).exists():
        return dest
    dest.parent.mkdir(parents=True, exist_ok=True)
    tmp = dest.parent / f".{dest.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    tmp.mkdir()
    try:
        lo, hi = trace.flow_batch().halves()
        np.save(tmp / "key_lo.npy", lo)
        np.save(tmp / "key_hi.npy", hi)
        np.save(tmp / "order.npy", trace.order)
        meta = {
            "version": _ARRAY_FORMAT_VERSION,
            "name": trace.name,
            "n_flows": trace.num_flows,
            "n_packets": len(trace),
            "timestamps": trace.timestamps is not None,
        }
        if trace.timestamps is not None:
            np.save(tmp / "timestamps.npy", trace.timestamps)
        # meta.json is written last: its presence marks a complete dir.
        (tmp / _META_NAME).write_text(json.dumps(meta, indent=2) + "\n")
        try:
            os.replace(tmp, dest)
        except OSError:
            if not (dest / _META_NAME).exists():
                raise
            # A concurrent producer won the rename; same content.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return dest


def load_trace_arrays(dir_path: str | Path, mmap: bool = True) -> Trace:
    """Load a trace written by :func:`save_trace_arrays`.

    Args:
        dir_path: directory holding the arrays.
        mmap: map the per-packet arrays (``order``, ``timestamps``)
            read-only instead of copying them into memory — the mode
            sweep workers use.  The per-flow key halves are always read
            eagerly (they are converted to Python ints anyway).

    Raises:
        FileNotFoundError: if the directory is missing or incomplete.
        ValueError: on an unknown format version.
    """
    root = Path(dir_path)
    meta_path = root / _META_NAME
    if not meta_path.exists():
        raise FileNotFoundError(f"no trace arrays at {root}")
    meta = json.loads(meta_path.read_text())
    version = int(meta.get("version", -1))
    if version != _ARRAY_FORMAT_VERSION:
        raise ValueError(f"unsupported trace-array format version {version}")
    mode = "r" if mmap else None
    lo = np.load(root / "key_lo.npy")
    hi = np.load(root / "key_hi.npy")
    order = np.load(root / "order.npy", mmap_mode=mode)
    ts = None
    if meta.get("timestamps"):
        ts = np.load(root / "timestamps.npy", mmap_mode=mode)
    return Trace(_keys_from_halves(lo, hi), order, ts, name=str(meta["name"]))


# ----------------------------------------------------------------------
# KeyBatch persistence
# ----------------------------------------------------------------------
def save_key_batch(batch: KeyBatch, path: str | Path) -> None:
    """Save a :class:`~repro.flow.batch.KeyBatch` to an ``.npz`` file.

    The 64-bit halves (materialized if still lazy) and the optional
    per-packet sizes are stored; the Python-int key list is rebuilt
    from the halves on load, so the round trip is exact.
    """
    lo, hi = batch.halves()
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "key_lo": lo,
        "key_hi": hi,
    }
    if batch.sizes is not None:
        payload["sizes"] = batch.sizes
    np.savez_compressed(Path(path), **payload)


def load_key_batch(path: str | Path) -> KeyBatch:
    """Load a :class:`~repro.flow.batch.KeyBatch` saved by
    :func:`save_key_batch`.

    Raises:
        ValueError: on an unknown format version.
    """
    with np.load(_npz_path(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported key-batch format version {version}")
        lo = np.array(data["key_lo"])
        hi = np.array(data["key_hi"])
        sizes = np.array(data["sizes"]) if "sizes" in data else None
    return KeyBatch(_keys_from_halves(lo, hi), lo, hi, sizes)
