"""Packet sampling, as in Sampled NetFlow (paper Section I).

Two samplers over traces are provided — deterministic 1-in-N and uniform
probabilistic — plus a flow-level binomial thinning helper that models
how sampling reshapes a flow-size distribution (the paper's ISP2 trace
is a 1:5000-sampled access link capture; after such thinning more than
99% of surviving flows have fewer than 5 packets).
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import Trace


def sample_deterministic(trace: Trace, every_n: int, offset: int = 0) -> Trace:
    """Keep every ``every_n``-th packet (Sampled NetFlow's 1:N mode).

    Args:
        trace: input trace.
        every_n: sampling period (>= 1); ``1`` keeps everything.
        offset: index of the first sampled packet within each period.

    Returns:
        A new trace over the surviving packets (flows with no surviving
        packets are dropped).
    """
    if every_n < 1:
        raise ValueError(f"every_n must be >= 1, got {every_n}")
    if not 0 <= offset < every_n:
        raise ValueError(f"offset must be in [0, {every_n}), got {offset}")
    mask = np.zeros(len(trace), dtype=bool)
    mask[offset::every_n] = True
    return _apply_mask(trace, mask, f"{trace.name}~1:{every_n}")


def sample_probabilistic(trace: Trace, probability: float, seed: int = 0) -> Trace:
    """Keep each packet independently with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    rng = np.random.default_rng(seed)
    mask = rng.random(len(trace)) < probability
    return _apply_mask(trace, mask, f"{trace.name}~p={probability:g}")


def _apply_mask(trace: Trace, mask: np.ndarray, name: str) -> Trace:
    """Build the sub-trace of packets where ``mask`` is True."""
    order = trace.order[mask]
    used = np.unique(order)
    remap = -np.ones(trace.num_flows, dtype=np.int64)
    remap[used] = np.arange(len(used))
    keys = [trace.flow_keys[i] for i in used.tolist()]
    ts = None if trace.timestamps is None else trace.timestamps[mask]
    return Trace(keys, remap[order], ts, name=name)


def thin_flow_sizes(
    sizes: np.ndarray, probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Binomially thin flow sizes: the flow-level effect of packet sampling.

    A flow of ``s`` packets survives 1-in-``1/p`` sampling with
    ``Binomial(s, p)`` observed packets.  Flows thinned to zero are
    removed from the result.

    Args:
        sizes: original per-flow packet counts.
        probability: per-packet survival probability.
        rng: numpy random generator.

    Returns:
        Array of surviving (>= 1) sampled flow sizes.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    thinned = rng.binomial(np.asarray(sizes, dtype=np.int64), probability)
    return thinned[thinned > 0]
