"""Trace composition: merging traces and injecting anomalies.

Measurement systems are evaluated on how they behave when traffic
*changes* — a flash crowd, a DDoS, a port scan.  This module composes
base traces with synthetic events so those scenarios can be replayed
against any collector:

* :func:`merge_traces` — interleave several traces into one stream;
* :func:`inject_elephants` — add heavy flows to an existing trace;
* :func:`syn_flood` — a DDoS-like burst: huge numbers of single-packet
  flows from spoofed sources toward one victim;
* :func:`port_scan` — one source sweeping a victim's ports.
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import pack_key
from repro.traces.trace import Trace


def merge_traces(traces: list[Trace], seed: int = 0, name: str = "merged") -> Trace:
    """Interleave several traces into one uniformly mixed stream.

    Flow identities are preserved; a flow present in two inputs keeps a
    single merged record with the summed packet count.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    key_index: dict[int, int] = {}
    flow_keys: list[int] = []
    pieces = []
    for trace in traces:
        remap = np.empty(trace.num_flows, dtype=np.int64)
        for i, key in enumerate(trace.flow_keys):
            pos = key_index.get(key)
            if pos is None:
                pos = len(flow_keys)
                key_index[key] = pos
                flow_keys.append(key)
            remap[i] = pos
        pieces.append(remap[trace.order])
    order = np.concatenate(pieces)
    rng = np.random.default_rng(seed)
    return Trace(flow_keys, rng.permutation(order), name=name)


def inject_elephants(
    trace: Trace,
    n_elephants: int,
    size: int,
    seed: int = 0,
) -> Trace:
    """Add ``n_elephants`` fresh flows of ``size`` packets each.

    The new packets are spread uniformly through the stream, modelling
    elephants that ramp up mid-epoch.
    """
    if n_elephants < 0 or size <= 0:
        raise ValueError("n_elephants must be >= 0 and size positive")
    rng = np.random.default_rng(seed)
    new_keys = _fresh_keys(trace, n_elephants, rng)
    flow_keys = trace.flow_keys + new_keys
    base = trace.num_flows
    extra = np.repeat(np.arange(base, base + n_elephants, dtype=np.int64), size)
    order = np.concatenate([trace.order, extra])
    return Trace(flow_keys, rng.permutation(order), name=f"{trace.name}+elephants")


def syn_flood(
    victim_ip: int,
    n_sources: int,
    seed: int = 0,
    victim_port: int = 80,
) -> Trace:
    """A SYN-flood-like burst: ``n_sources`` spoofed single-packet flows
    toward one victim address and port."""
    if n_sources <= 0:
        raise ValueError(f"n_sources must be positive, got {n_sources}")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, 2**32, size=n_sources, dtype=np.uint64)
    sports = rng.integers(1024, 65536, size=n_sources, dtype=np.uint64)
    keys = [
        pack_key(int(src), victim_ip, int(sport), victim_port, 6)
        for src, sport in zip(sources, sports)
    ]
    # Spoofed sources can collide; dedupe while preserving order.
    keys = list(dict.fromkeys(keys))
    order = np.arange(len(keys), dtype=np.int64)
    return Trace(keys, order, name="syn_flood")


def port_scan(
    scanner_ip: int,
    victim_ip: int,
    n_ports: int = 1024,
    seed: int = 0,
) -> Trace:
    """A sequential port scan: one source probing ``n_ports`` ports with
    one packet each (every probe is a distinct flow)."""
    if not 1 <= n_ports <= 65_535:
        raise ValueError(f"n_ports must be in [1, 65535], got {n_ports}")
    rng = np.random.default_rng(seed)
    sport = int(rng.integers(1024, 65536))
    keys = [
        pack_key(scanner_ip, victim_ip, sport, port, 6)
        for port in range(1, n_ports + 1)
    ]
    return Trace(keys, np.arange(n_ports, dtype=np.int64), name="port_scan")


def _fresh_keys(trace: Trace, n: int, rng: np.random.Generator) -> list[int]:
    """Draw ``n`` keys not present in ``trace``."""
    existing = set(trace.flow_keys)
    keys: list[int] = []
    while len(keys) < n:
        src = int(rng.integers(0, 2**32))
        dst = int(rng.integers(0, 2**32))
        sport = int(rng.integers(1024, 65536))
        key = pack_key(src, dst, sport, 443, 6)
        if key not in existing:
            existing.add(key)
            keys.append(key)
    return keys
