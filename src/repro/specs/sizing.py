"""Registered memory sizing rules: paper Section IV-A parameter rules.

All algorithms are given the *same amount of memory* in every
experiment.  A full flow record is a 104-bit flow ID plus a 32-bit
counter ("So 1 MB memory approximately corresponds to 60K flow
records").  Per-algorithm cell sizes:

* **HashFlow** — main cell 136 b; ancillary cell 16 b (8-bit digest +
  8-bit counter); same number of cells in the two tables; main table is
  3 pipelined sub-tables with α = 0.7.
* **HashPipe** — 4 equal sub-tables of 136 b cells.
* **ElasticSketch** (hardware) — heavy cell 169 b (key + vote+ + vote− +
  flag) across 3 sub-tables; light part one count-min array of 8-bit
  counters; the two parts use the same number of cells.
* **FlowRadar** — counting cell 168 b (FlowXOR + FlowCount +
  PacketCount); Bloom bits = 40 × counting cells; 4 Bloom hashes and 3
  counting hashes.

These formulas used to live inside ``experiments/config.py``'s
``build_*`` functions; they are now sizing rules registered with the
collector registry (:func:`repro.specs.registry.register_sizing`), so
``build(kind, memory_bytes=...)`` sizes any kind the same way the
experiment harness does.  Each rule maps ``(memory_bytes, explicit
params)`` to the *size* parameters only — everything else comes from
the collector's constructor defaults, and explicit params always win.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.flow.key import FLOW_KEY_BITS
from repro.specs.registry import register_sizing

COUNTER_BITS = 32
RECORD_BITS = FLOW_KEY_BITS + COUNTER_BITS  # 136

HASHFLOW_ANCILLARY_CELL_BITS = 16  # 8-bit digest + 8-bit counter
ELASTIC_HEAVY_CELL_BITS = FLOW_KEY_BITS + 2 * COUNTER_BITS + 1  # 169
ELASTIC_LIGHT_CELL_BITS = 8
FLOWRADAR_CELL_BITS = FLOW_KEY_BITS + 2 * COUNTER_BITS  # 168
FLOWRADAR_BLOOM_RATIO = 40

DEFAULT_MEMORY_BYTES = 1 << 20  # 1 MB, the paper's default

#: Environment variable scaling experiment sizes (1.0 = paper scale).
SCALE_ENV = "REPRO_SCALE"
DEFAULT_SCALE = 0.1

#: Smallest budget a scaled experiment is allowed to shrink to.
MIN_MEMORY_BYTES = 4096


def resolve_scale(scale: float | None = None) -> float:
    """Resolve the experiment scale factor.

    Args:
        scale: explicit factor; if None, read ``REPRO_SCALE`` from the
            environment (default 0.1 — a laptop-friendly scale that
            preserves every load ratio ``m/n`` because memory and flow
            counts shrink together).

    Returns:
        A positive scale factor.
    """
    if scale is None:
        scale = float(os.environ.get(SCALE_ENV, DEFAULT_SCALE))
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return scale


def scaled_memory(scale: float, base: int = DEFAULT_MEMORY_BYTES) -> int:
    """Scale a memory budget, keeping it above the experiment floor."""
    return max(MIN_MEMORY_BYTES, int(round(base * scale)))


def hashflow_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """HashFlow under the budget: equal main/ancillary cell counts."""
    bits = memory_bytes * 8
    cells = int(bits // (RECORD_BITS + HASHFLOW_ANCILLARY_CELL_BITS))
    return {"main_cells": cells, "ancillary_cells": cells}


def hashpipe_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """HashPipe under the budget: ``stages`` equal 136-bit sub-tables."""
    stages = int(params.get("stages", 4))
    bits = memory_bytes * 8
    total_cells = bits // RECORD_BITS
    return {"cells_per_stage": int(total_cells // stages)}


def elastic_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """ElasticSketch (hardware) under the budget: equal heavy/light cells."""
    stages = int(params.get("stages", 3))
    bits = memory_bytes * 8
    pairs = bits // (ELASTIC_HEAVY_CELL_BITS + ELASTIC_LIGHT_CELL_BITS)
    heavy_per_stage = int(pairs // stages)
    return {
        "heavy_cells_per_stage": heavy_per_stage,
        "light_cells": int(heavy_per_stage * stages),
    }


def flowradar_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """FlowRadar under the budget: Bloom bits = 40 x counting cells."""
    bits = memory_bytes * 8
    cells = int(bits // (FLOWRADAR_CELL_BITS + FLOWRADAR_BLOOM_RATIO))
    return {"counting_cells": cells, "bloom_bits": cells * FLOWRADAR_BLOOM_RATIO}


def record_table_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """Full-record table capacity: 136 bits per (key, counter) entry."""
    return {"_cells": int(memory_bytes * 8 // RECORD_BITS)}


def spacesaving_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """Space-Saving under the budget: one full record per counter."""
    return {"capacity": record_table_sizing(memory_bytes, params)["_cells"]}


def cuckoo_sizing(memory_bytes: int, params: Mapping[str, Any]) -> dict[str, Any]:
    """Cuckoo flow cache under the budget: one full record per cell."""
    return {"n_cells": record_table_sizing(memory_bytes, params)["_cells"]}


register_sizing("hashflow", hashflow_sizing)
register_sizing("adaptive_hashflow", hashflow_sizing)
register_sizing("hashpipe", hashpipe_sizing)
register_sizing("elastic", elastic_sizing)
register_sizing("flowradar", flowradar_sizing)
register_sizing("spacesaving", spacesaving_sizing)
register_sizing("cuckoo", cuckoo_sizing)
