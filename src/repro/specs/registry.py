"""The global collector registry: kinds, builders, sizing rules.

Every collector the harness evaluates registers itself under a short
*kind* name (``@register("hashflow")`` on the class, or on a builder
function for wrapper kinds whose params nest another spec).  The
registry then offers one construction path for the whole codebase:

* :func:`build` — from a kind name, a :class:`CollectorSpec`, a spec
  dict, or a JSON file's contents, optionally sized to a memory budget
  through the kind's registered sizing rule;
* :func:`available_kinds` — what can be built;
* :func:`reseeded` / :func:`derive_seed` — deterministic per-shard /
  per-switch / per-epoch seed derivation from one prototype spec.

Collector modules import this module (to register); this module never
imports them at load time — :func:`_ensure_registered` pulls them in
lazily on the first registry query, so there are no import cycles.
"""

from __future__ import annotations

import importlib
import inspect
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.hashing.mixers import MASK64, splitmix64
from repro.specs.spec import CollectorSpec, SpecError

#: Modules that register collectors or sizing rules, imported lazily.
_REGISTRATION_MODULES = (
    "repro.specs.sizing",
    "repro.core.hashflow",
    "repro.core.adaptive",
    "repro.core.timeout",
    "repro.sketches.hashpipe",
    "repro.sketches.elastic",
    "repro.sketches.flowradar",
    "repro.sketches.exact",
    "repro.sketches.sampled",
    "repro.sketches.spacesaving",
    "repro.sketches.cuckoo",
    "repro.netwide.sharding",
)

#: The paper's four evaluated algorithms, in plotting order (§IV).
EVALUATED_KINDS = ("hashflow", "hashpipe", "elastic", "flowradar")

#: Params keys under which wrapper kinds nest an inner collector spec.
_NESTED_KEYS = ("inner", "collector")


@dataclass(frozen=True)
class Registration:
    """One registry entry.

    Attributes:
        kind: registered name.
        ctor: callable building the collector from keyword params.
        accepts_seed: whether ``ctor`` takes a ``seed`` parameter.
        sizing: memory sizing rule ``(memory_bytes, params) -> params``
            or None if the kind has no memory budget notion.
    """

    kind: str
    ctor: Callable[..., Any]
    accepts_seed: bool
    sizing: Callable[[int, Mapping[str, Any]], dict[str, Any]] | None = None


_REGISTRY: dict[str, Registration] = {}
_SIZING: dict[str, Callable[[int, Mapping[str, Any]], dict[str, Any]]] = {}
_loaded = False


def _takes_seed(ctor: Callable[..., Any]) -> bool:
    """Whether a constructor/builder accepts a ``seed`` keyword."""
    target = ctor.__init__ if inspect.isclass(ctor) else ctor
    try:
        sig = inspect.signature(target)
    except (TypeError, ValueError):  # builtins without introspection
        return False
    params = sig.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return True
    return "seed" in sig.parameters


def register(kind: str, *, cls: type | None = None):
    """Class/function decorator registering a collector kind.

    Applied to a :class:`~repro.sketches.base.FlowCollector` subclass,
    the class itself is the builder (``cls(**params)``); applied to a
    function (wrapper kinds that must build a nested spec first), the
    function is the builder and ``cls`` names the collector class it
    produces.  Either way the produced class gets a ``kind`` attribute
    so instances can report their spec.
    """

    def deco(obj):
        target_cls = cls if cls is not None else obj
        if inspect.isclass(target_cls):
            target_cls.kind = kind
        _REGISTRY[kind] = Registration(
            kind=kind,
            ctor=obj,
            accepts_seed=_takes_seed(obj),
            sizing=None,
        )
        return obj

    return deco


def register_sizing(
    kind: str, rule: Callable[[int, Mapping[str, Any]], dict[str, Any]]
) -> None:
    """Attach a memory sizing rule to a kind.

    The rule maps ``(memory_bytes, explicit_params)`` to the size
    parameters that make the collector fit the budget; explicit params
    always win over sized ones.  Sizing rules live apart from the
    collectors (see :mod:`repro.specs.sizing`) because the budget split
    is evaluation policy (paper §IV-A), not algorithm behaviour.
    """
    _SIZING[kind] = rule


def _ensure_registered() -> None:
    """Import every module that contributes registrations (idempotent)."""
    global _loaded
    if _loaded:
        return
    for module in _REGISTRATION_MODULES:
        importlib.import_module(module)
    # Only marked complete after every import succeeded, so a transient
    # import failure does not freeze a partial registry.
    _loaded = True


def _get(kind: str) -> Registration:
    _ensure_registered()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise SpecError(
            f"unknown collector kind {kind!r}; "
            f"available: {', '.join(available_kinds())}"
        ) from None


def available_kinds() -> list[str]:
    """Sorted names of every registered collector kind."""
    _ensure_registered()
    return sorted(_REGISTRY)


def display_name(kind: str) -> str:
    """The display name instances of a kind report (e.g. ``"HashFlow"``).

    Lets plan-building code label results without constructing a
    collector; falls back to the kind name for builder-function kinds
    whose class is not introspectable.
    """
    ctor = _get(kind).ctor
    name = getattr(ctor, "name", None) if inspect.isclass(ctor) else None
    return name if isinstance(name, str) else kind


def as_spec(obj: Any, params: Mapping[str, Any] | None = None) -> CollectorSpec:
    """Coerce a kind name / spec dict / spec / collector to a spec.

    Args:
        obj: a kind string, a :class:`CollectorSpec`, a canonical spec
            mapping, or a collector instance exposing ``.spec``.
        params: extra params merged in (kind-string form only).
    """
    if isinstance(obj, CollectorSpec):
        if params:
            return obj.with_params(**dict(params))
        return obj
    if isinstance(obj, str):
        return CollectorSpec(obj, dict(params or {}))
    if isinstance(obj, Mapping):
        spec = CollectorSpec.from_dict(obj)
        if params:
            return spec.with_params(**dict(params))
        return spec
    spec = getattr(obj, "spec", None)
    if isinstance(spec, CollectorSpec):
        if params:
            return spec.with_params(**dict(params))
        return spec
    raise SpecError(f"cannot interpret {obj!r} as a collector spec")


def derive_seed(base_seed: int, salt: int | str) -> int:
    """Deterministic seed derivation for shards / switches / epochs.

    Stable across processes and platforms (no reliance on Python's
    randomized ``hash``): string salts go through CRC-32, and the mix
    is the same splitmix64 finalizer the hash families build on.
    """
    if isinstance(salt, str):
        salt_int = zlib.crc32(salt.encode("utf-8"))
    else:
        salt_int = int(salt)
    mixed = (int(base_seed) ^ splitmix64((salt_int * 0x9E3779B97F4A7C15) & MASK64)) & MASK64
    return splitmix64(mixed)


def reseeded(spec: CollectorSpec, salt: int | str) -> CollectorSpec:
    """A spec whose (possibly nested) seed is derived from ``salt``.

    Seedful kinds get ``seed = derive_seed(current_seed, salt)``;
    wrapper kinds *also* recurse into their nested collector spec (a
    sharded spec deployed per switch must vary both its shard-assignment
    hash and its shards' collector seeds); seed-free kinds (exact,
    space-saving) come back unchanged.
    """
    reg = _get(spec.kind)
    updates: dict = {}
    if reg.accepts_seed:
        updates["seed"] = derive_seed(spec.params.get("seed", 0), salt)
    for key in _NESTED_KEYS:
        nested = spec.params.get(key)
        if isinstance(nested, Mapping) and "kind" in nested:
            inner = reseeded(CollectorSpec.from_dict(nested), salt)
            updates[key] = inner.to_dict()
    if not updates:
        return spec
    return spec.with_params(**updates)


def _apply_seed(params: dict, reg: Registration, seed: int) -> None:
    """Apply a seed override in place, following nested wrapper specs.

    Seedful kinds take it directly; wrapper kinds whose builder has no
    ``seed`` parameter (epoched, timeout) forward it into the nested
    collector spec so the override is never silently lost.  Genuinely
    seed-free kinds (exact, space-saving) ignore it.
    """
    if reg.accepts_seed:
        params["seed"] = seed
        return
    for key in _NESTED_KEYS:
        nested = params.get(key)
        if isinstance(nested, Mapping) and "kind" in nested:
            inner = CollectorSpec.from_dict(nested)
            inner_params = dict(inner.params)
            _apply_seed(inner_params, _get(inner.kind), seed)
            params[key] = CollectorSpec(inner.kind, inner_params).to_dict()


def build(
    spec_or_kind: Any,
    *,
    memory_bytes: int | None = None,
    scale: float | None = None,
    seed: int | None = None,
    **params: Any,
):
    """Build a collector from a spec or kind name.

    Args:
        spec_or_kind: a kind name (``"hashflow"``), a
            :class:`CollectorSpec`, a canonical spec mapping, or an
            existing collector (cloned via its spec).
        memory_bytes: size the collector to this budget through the
            kind's registered sizing rule (paper §IV-A formulas).
        scale: experiment scale factor; scales ``memory_bytes`` (or the
            paper's 1 MB default when ``memory_bytes`` is omitted)
            exactly as the experiment harness does.
        seed: overrides the spec's hash seed; wrapper kinds whose own
            builder is seedless forward it into their nested collector
            spec (ignored only for genuinely seed-free kinds).
        **params: extra constructor params; they override sized params.

    Returns:
        A fresh collector instance.

    Raises:
        SpecError: unknown kind, missing sizing rule when a budget was
            requested, or constructor rejection of the merged params.
    """
    spec = as_spec(spec_or_kind, params)
    reg = _get(spec.kind)
    merged = dict(spec.params)
    if memory_bytes is not None or scale is not None:
        from repro.specs.sizing import DEFAULT_MEMORY_BYTES, resolve_scale, scaled_memory

        budget = DEFAULT_MEMORY_BYTES if memory_bytes is None else int(memory_bytes)
        if scale is not None:
            budget = scaled_memory(resolve_scale(scale), base=budget)
        rule = _SIZING.get(spec.kind)
        if rule is None:
            raise SpecError(
                f"collector kind {spec.kind!r} has no registered sizing rule; "
                "pass explicit size params instead of memory_bytes/scale"
            )
        for key, value in rule(budget, merged).items():
            merged.setdefault(key, value)
    if seed is not None:
        _apply_seed(merged, reg, seed)
    try:
        return reg.ctor(**merged)
    except TypeError as exc:
        raise SpecError(f"cannot build {spec.kind!r} from params {merged}: {exc}") from exc


def build_evaluated(
    memory_bytes: int | None = None, seed: int = 0
) -> dict[str, Any]:
    """The paper's four evaluated algorithms at one memory budget.

    Returns ``{display name: collector}`` in the paper's plotting order
    (HashFlow, HashPipe, ElasticSketch, FlowRadar) — the registry-driven
    successor of ``experiments.config.build_all``.
    """
    from repro.specs.sizing import DEFAULT_MEMORY_BYTES

    budget = DEFAULT_MEMORY_BYTES if memory_bytes is None else int(memory_bytes)
    collectors = {}
    for kind in EVALUATED_KINDS:
        collector = build(kind, memory_bytes=budget, seed=seed)
        collectors[collector.name] = collector
    return collectors
