"""Spec-driven collector construction: describe collectors by data.

The paper evaluates seven algorithms under one memory budget; this
package makes every collector *described by data* — named, parameterized,
serializable, and reconstructible on any shard, switch, or epoch:

* :class:`CollectorSpec` — frozen kind + params, JSON round-trippable;
* :func:`register` / :func:`available_kinds` — the global kind registry;
* :func:`build` — one construction path for the whole harness, with
  per-kind memory sizing rules (:mod:`repro.specs.sizing`);
* :func:`derive_seed` — deterministic per-shard/per-switch reseeding.

Higher layers nest these specs in their own descriptions: a
:class:`~repro.stream.spec.PipelineSpec` embeds a collector spec beside
its source/rotation/sink stages, and :mod:`repro.parallel` ships spec
dicts to worker processes — both lean on the same JSON-native currency.

Quickstart::

    from repro.specs import build

    collector = build("hashflow", memory_bytes=1 << 20, seed=0)
    spec = collector.spec          # CollectorSpec, JSON-serializable
    twin = build(spec)             # bit-identical reconstruction
    factory = collector.fresh_factory()   # zero-arg factory of clones
"""

from repro.specs.registry import (
    EVALUATED_KINDS,
    Registration,
    as_spec,
    available_kinds,
    build,
    build_evaluated,
    derive_seed,
    display_name,
    register,
    register_sizing,
    reseeded,
)
from repro.specs.sizing import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_SCALE,
    SCALE_ENV,
    resolve_scale,
    scaled_memory,
)
from repro.specs.spec import CollectorSpec, SpecError, load_spec, save_spec

__all__ = [
    "CollectorSpec",
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_SCALE",
    "EVALUATED_KINDS",
    "Registration",
    "SCALE_ENV",
    "SpecError",
    "as_spec",
    "available_kinds",
    "build",
    "build_evaluated",
    "derive_seed",
    "display_name",
    "load_spec",
    "register",
    "register_sizing",
    "reseeded",
    "resolve_scale",
    "save_spec",
    "scaled_memory",
]
