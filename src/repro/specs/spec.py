"""Declarative collector descriptions.

A :class:`CollectorSpec` is the data half of the registry API
(:mod:`repro.specs.registry`): a collector *kind* plus the constructor
parameters that reproduce it.  Specs are frozen, hashable, comparable,
and round-trip through JSON, so a collector configuration can be named
in a config file, shipped to another shard/epoch/process, and rebuilt
bit-identically — ``build(collector.spec)`` is the contract every
registered collector honours.

Wrapper collectors (epoched, timeout, sharded) nest their inner
collector's spec under a params key (``"inner"`` / ``"collector"``) as
a plain ``{"kind": ..., "params": ...}`` dict, keeping the whole
structure JSON-native.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping


class SpecError(TypeError):
    """A collector spec could not be produced, parsed, or built."""


def _canonical(params: Mapping[str, Any]) -> dict[str, Any]:
    """Deep-copy params through JSON, validating serializability.

    The round trip both detaches the spec from caller-owned mutable
    dicts and normalizes containers (tuples become lists), so equal
    specs always serialize to equal JSON.
    """
    try:
        return json.loads(json.dumps(dict(params), sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec params are not JSON-serializable: {exc}") from exc


@dataclass(frozen=True, eq=False)
class CollectorSpec:
    """A frozen, JSON-round-trippable collector description.

    Attributes:
        kind: registered collector kind (see
            :func:`repro.specs.registry.available_kinds`).
        params: constructor parameters; values are JSON scalars or
            nested spec dicts for wrapper kinds.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError(f"spec kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(self, "params", _canonical(self.params))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CollectorSpec):
            return NotImplemented
        return self.kind == other.kind and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.kind, json.dumps(self.params, sort_keys=True)))

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"CollectorSpec({self.kind}: {args})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form: ``{"kind": ..., "params": {...}}``."""
        return {"kind": self.kind, "params": _canonical(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CollectorSpec":
        """Inverse of :meth:`to_dict`.

        Raises:
            SpecError: if the mapping is not of the canonical shape.
        """
        if not isinstance(data, Mapping) or "kind" not in data:
            raise SpecError(f"not a collector spec mapping: {data!r}")
        extra = set(data) - {"kind", "params"}
        if extra:
            raise SpecError(f"unknown spec fields {sorted(extra)} in {data!r}")
        return cls(kind=data["kind"], params=data.get("params", {}))

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CollectorSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_params(self, **overrides: Any) -> "CollectorSpec":
        """A new spec with some params replaced (or added)."""
        merged = dict(self.params)
        merged.update(overrides)
        return CollectorSpec(self.kind, merged)

    def reseed(self, salt: int | str) -> "CollectorSpec":
        """A new spec whose hash seed is derived from ``salt``.

        The derivation is deterministic (same spec + same salt → same
        seed), which is what lets shards, switches, and epochs rebuild
        their exact collector from the deployment's one prototype spec.
        Seed-free kinds are returned unchanged; wrapper kinds reseed
        their nested collector.
        """
        from repro.specs.registry import reseeded

        return reseeded(self, salt)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self):
        """Build a fresh collector from this spec.

        Bound to the frozen spec, this method doubles as a zero-argument
        factory: ``spec.build`` is what
        :meth:`~repro.sketches.base.FlowCollector.fresh_factory`
        returns.
        """
        from repro.specs.registry import build

        return build(self)


def load_spec(path) -> CollectorSpec:
    """Load a :class:`CollectorSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return CollectorSpec.from_json(fh.read())


def save_spec(spec: CollectorSpec, path) -> None:
    """Write a :class:`CollectorSpec` to a JSON file (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json(indent=2) + "\n")
