"""HashFlow: the paper's flow-record collection algorithm (Algorithm 1).

HashFlow keeps *accurate* records for elephant flows in a main table and
*summarized* records for mice flows in an ancillary table, glued
together by two strategies:

1. **Collision resolution** — a packet probes the main table with
   ``h_1 ... h_d``; it takes the first empty bucket or increments its
   own record.  Probes never evict, so records are never split.  The
   probe remembers the *sentinel*: the colliding bucket with the
   smallest count.
2. **Record promotion** — a packet that loses all ``d`` probes falls
   into the ancillary table (digest-keyed, evict-on-mismatch).  When its
   summarized count reaches the sentinel count, the flow has become an
   elephant and is promoted: it overwrites the sentinel record in the
   main table with ``count = ancillary count + 1``.

The main table can be a single multi-hash array or pipelined sub-tables
(paper default: 3 pipelined tables, ``α = 0.7``); see
:mod:`repro.core.maintable`.

Fidelity notes:

* Following the literal Algorithm 1, a promoted flow's ancillary cell is
  left stale (the paper does not clear it); pass
  ``clear_promoted=True`` for the tidier variant — the difference is
  measurable only through digest-collision noise.
* The sentinel is chosen among the *current packet's* ``d`` candidate
  buckets, so a promoted record is always found again by later packets
  of the same flow.
"""

from __future__ import annotations

import numpy as np

from repro.flow.batch import KeyBatch
from repro.hashing.digest import DEFAULT_DIGEST_BITS, DigestFunction
from repro.hashing.families import HashFamily
from repro.hashing.mixers import MASK64
from repro.native import resolve_kernel
from repro.sketches.base import FlowCollector
from repro.specs import register
from repro.core.ancillary import PROMOTE, AncillaryTable, DEFAULT_COUNTER_BITS
from repro.core.maintable import (
    ABSORBED,
    DEFAULT_ALPHA,
    DEFAULT_DEPTH,
    MainTable,
    MultiHashTable,
    PipelinedTables,
)


@register("hashflow")
class HashFlow(FlowCollector):
    """The HashFlow collector.

    Args:
        main_cells: buckets in the main table.
        ancillary_cells: buckets in the ancillary table (the paper uses
            the same number as ``main_cells``).
        depth: number of main-table hash functions ``d`` (paper: 3).
        variant: ``"pipelined"`` (paper's evaluated configuration) or
            ``"multihash"``.
        alpha: pipeline weight ``α`` for the pipelined variant (paper: 0.7).
        digest_bits: ancillary digest width (paper: 8).
        ancillary_counter_bits: ancillary counter width (paper: 8).
        clear_promoted: clear a flow's ancillary cell on promotion
            (Algorithm 1 leaves it stale; default follows the paper).
        promote: enable the record-promotion strategy (disable only for
            ablation studies — without it, ancillary elephants can never
            re-enter the main table).
        track_bytes: keep a 32-bit byte counter per main-table record
            (the NetFlow dOctets field); feed packets through
            :meth:`process_packet` to populate it.  Costs 32 bits per
            cell and is off in the paper's configuration.
        seed: seed for all hash functions.
        kernel: execution tier — ``"native"`` (compiled C kernels over
            SoA buffers), ``"numpy"`` (the reference tier), or None to
            follow the ``REPRO_KERNEL`` environment variable.  The two
            tiers are bit-identical (states, estimates, meters); an
            explicit choice is recorded in the spec so sweep workers
            rebuild the same tier.
        storage: table storage layout — ``"soa"`` forces the flat
            structure-of-arrays tables (:mod:`repro.native.soa`) even
            on the numpy tier, ``"lists"`` forces the reference list
            tables (numpy tier only), None picks per tier (native ⇒
            SoA, numpy ⇒ lists).  SoA storage is what shared-memory
            shard-parallel ingest (:mod:`repro.shm`) maps between
            processes; both layouts are bit-identical (records, query
            answers, meters).  An explicit choice is recorded in the
            spec so ingest workers rebuild the same layout.
    """

    name = "HashFlow"

    def __init__(
        self,
        main_cells: int,
        ancillary_cells: int | None = None,
        depth: int = DEFAULT_DEPTH,
        variant: str = "pipelined",
        alpha: float = DEFAULT_ALPHA,
        digest_bits: int = DEFAULT_DIGEST_BITS,
        ancillary_counter_bits: int = DEFAULT_COUNTER_BITS,
        clear_promoted: bool = False,
        promote: bool = True,
        track_bytes: bool = False,
        seed: int = 0,
        kernel: str | None = None,
        storage: str | None = None,
    ):
        super().__init__()
        if ancillary_cells is None:
            ancillary_cells = main_cells
        if storage not in (None, "soa", "lists"):
            raise ValueError(
                f"unknown storage {storage!r}; choose 'soa', 'lists' or None"
            )
        params = dict(
            main_cells=main_cells,
            ancillary_cells=ancillary_cells,
            depth=depth,
            variant=variant,
            alpha=alpha,
            digest_bits=digest_bits,
            ancillary_counter_bits=ancillary_counter_bits,
            clear_promoted=clear_promoted,
            promote=promote,
            track_bytes=track_bytes,
            seed=seed,
        )
        # Only an explicit kernel choice is part of the collector's
        # identity; env-resolved tiers keep specs portable across
        # machines (the tiers are bit-identical anyway).
        if kernel is not None:
            params["kernel"] = kernel
        if storage is not None:
            params["storage"] = storage
        self._record_spec(**params)
        self.kernel, self._native = resolve_kernel(kernel)
        self.variant = variant
        self.clear_promoted = clear_promoted
        self.promote_enabled = promote
        self.track_bytes = track_bytes
        if self._native is not None and storage == "lists":
            raise ValueError(
                "storage='lists' is a numpy-tier layout; the native "
                "kernels require SoA tables"
            )
        self._soa = self._native is not None or storage == "soa"
        self.main: MainTable
        if self._soa:
            from repro.native.soa import NativeAncillaryTable, NativeMainTable

            if ancillary_counter_bits > 62:
                raise ValueError(
                    "the SoA tables store counters as int64; "
                    f"ancillary_counter_bits must be <= 62, got {ancillary_counter_bits}"
                )
            self.main = NativeMainTable(
                main_cells,
                depth=depth,
                variant=variant,
                alpha=alpha,
                seed=seed,
                meter=self.meter,
                track_bytes=track_bytes,
            )
            aux = HashFamily(2, master_seed=seed ^ 0xA5C1_11A7)
            self.ancillary = NativeAncillaryTable(
                ancillary_cells,
                index_hash=aux[0],
                digest=DigestFunction(aux[1], bits=digest_bits),
                counter_bits=ancillary_counter_bits,
                meter=self.meter,
            )
            self.promotions = 0
            return
        if variant == "pipelined":
            self.main = PipelinedTables(
                main_cells,
                depth=depth,
                alpha=alpha,
                seed=seed,
                meter=self.meter,
                track_bytes=track_bytes,
            )
        elif variant == "multihash":
            self.main = MultiHashTable(
                main_cells,
                depth=depth,
                seed=seed,
                meter=self.meter,
                track_bytes=track_bytes,
            )
        else:
            raise ValueError(f"unknown variant {variant!r}")
        # g1 and the digest base hash are independent of h_1..h_d.
        aux = HashFamily(2, master_seed=seed ^ 0xA5C1_11A7)
        self.ancillary = AncillaryTable(
            ancillary_cells,
            index_hash=aux[0],
            digest=DigestFunction(aux[1], bits=digest_bits),
            counter_bits=ancillary_counter_bits,
            meter=self.meter,
        )
        self.promotions = 0

    # ------------------------------------------------------------------
    # Update path (Algorithm 1)
    # ------------------------------------------------------------------
    def process(self, key: int, size: int = 0) -> None:
        """Process one packet of flow ``key`` (``size`` feeds the
        optional byte counters)."""
        if self._native is not None:
            # A batch of one through the kernel is bit-identical to the
            # scalar walk (same probes, same meter deltas) and keeps a
            # single implementation of Algorithm 1 per tier.
            sizes = (
                np.array([size], dtype=np.int64) if self.track_bytes else None
            )
            self._native_update(KeyBatch([key], sizes=sizes))
            return
        self.meter.packets += 1
        status, min_count, sentinel = self.main.probe(key, size)
        if status == ABSORBED:
            return
        if not self.promote_enabled:
            # Ablation mode: treat the sentinel as unbeatable, so the
            # ancillary only ever stores/increments.
            min_count = 1 << 62
        outcome, new_count = self.ancillary.offer(key, min_count)
        if outcome == PROMOTE:
            self.main.promote(sentinel, key, new_count, size)
            self.promotions += 1
            if self.clear_promoted:
                self.ancillary.clear_cell(key)

    def process_packet(self, packet) -> None:
        """Process a :class:`~repro.flow.packet.Packet`, counting bytes."""
        self.process(packet.key, packet.size)

    # ------------------------------------------------------------------
    # Batched update path
    # ------------------------------------------------------------------
    def process_batch(self, keys) -> None:
        """Run Algorithm 1 over a whole batch with precomputed hashes.

        All main-table probe indices, ancillary bucket indices and
        digests are computed for the batch in a few vectorized passes;
        the remaining per-packet loop is pure list indexing.  Packets
        are applied strictly in arrival order and the cost meter is
        settled once per batch, so records, query answers, promotions
        and meter totals are bit-identical to the scalar path.

        With ``track_bytes=True`` the batch must carry per-packet sizes
        (``KeyBatch.sizes``, e.g. from ``Trace.key_batch(sizes=...)``)
        to stay on the batched path; a size-less batch falls back to the
        scalar loop (each packet counted at 0 bytes, exactly as
        ``process(key)`` would).
        """
        batch = KeyBatch.coerce(keys)
        if not len(batch):
            return
        if self._native is not None:
            if self.track_bytes and batch.sizes is None:
                # The numpy tier degrades to the scalar loop here, each
                # packet counted at 0 bytes; an explicit zero-size array
                # gives the kernel the identical outcome in one call.
                lo, hi = batch.halves()
                batch = KeyBatch(
                    batch.keys, lo, hi, np.zeros(len(batch), dtype=np.int64)
                )
            self._native_update(batch)
            return
        if self._soa:
            # SoA storage on the numpy tier: the planes walk consumes
            # the batch's 64-bit halves directly (no Python-key list
            # views exist), with the same zero-size fallback as above.
            lo, hi = batch.halves()
            self.ingest_planes(lo, hi, batch.sizes)
            return
        if self.track_bytes and batch.sizes is None:
            # Byte counters need per-packet sizes; a key-only batch
            # stays on the scalar path.
            process = self.process
            for key in batch.keys:
                process(key)
            return
        self._process_batch(batch)

    def ingest_planes(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        sizes: np.ndarray | None = None,
    ) -> None:
        """Ingest a batch given only its SoA representation.

        The entry point of shared-memory shard-parallel workers
        (:mod:`repro.shm.ingest`): a worker holds the batch as the
        ``uint64`` key-half planes of a shared input segment and never
        rebuilds Python-int keys.  Requires SoA storage (the native
        tier or ``storage="soa"``); dispatches to the C kernel or the
        numpy planes walk, both bit-identical to ``process_batch`` on
        the equivalent :class:`~repro.flow.batch.KeyBatch` (records,
        promotions, meters).

        Args:
            lo: low 64 bits of every key (``np.uint64``).
            hi: high bits of every key (``np.uint64``).
            sizes: optional per-packet byte sizes; with
                ``track_bytes=True`` a missing array counts every
                packet at 0 bytes, exactly like the key-only
                ``process_batch`` fallback.
        """
        n = len(lo)
        if not n:
            return
        if not self._soa:
            raise RuntimeError(
                "ingest_planes requires SoA table storage; build the "
                "collector with storage='soa' or the native kernel tier"
            )
        if self.track_bytes:
            if sizes is None:
                sizes = np.zeros(n, dtype=np.int64)
        else:
            sizes = None
        if self._native is not None:
            self._native_ingest(lo, hi, sizes)
        else:
            self._soa_update(lo, hi, sizes)

    def _native_update(self, batch: KeyBatch) -> None:
        """Run the batch through the compiled Algorithm-1 kernel.

        The kernel mutates the SoA table buffers in place and returns
        its cost-meter deltas; packets are applied in arrival order, so
        states, promotions and meter totals stay bit-identical to the
        numpy tier.
        """
        lo, hi = batch.halves()
        self._native_ingest(lo, hi, batch.sizes if self.track_bytes else None)

    def _native_ingest(
        self, lo: np.ndarray, hi: np.ndarray, sizes: np.ndarray | None
    ) -> None:
        main = self.main
        anc = self.ancillary
        hashes, reads, writes, promotions = self._native.hashflow_update(
            lo,
            hi,
            sizes,
            main.seeds_arr,
            main.offs_arr,
            main.sizes_arr,
            main.k_lo,
            main.k_hi,
            main.counts,
            main.bytes,
            anc._index_seed,
            anc._digest_seed,
            anc._digest_mask,
            anc.n_cells,
            anc.max_count,
            anc.digests,
            anc.counts,
            self.promote_enabled,
            self.clear_promoted,
        )
        self.promotions += promotions
        self.meter.add(
            packets=len(lo), hashes=hashes, reads=reads, writes=writes
        )

    def _soa_update(
        self, lo: np.ndarray, hi: np.ndarray, sizes: np.ndarray | None
    ) -> None:
        """The numpy-tier Algorithm-1 walk over SoA planes.

        Mirrors :meth:`_process_batch` exactly — same precomputed hash
        rows, same per-packet control flow, same meter increments — but
        reads and writes the flat ``k_lo``/``k_hi``/count planes
        instead of Python list views, so it can run over shared-memory
        segments in any process.  Keys never need reassembling: a
        stored key equals the packet's key iff both 64-bit halves
        match.
        """
        from repro.hashing.mixers import mix128_batch

        main = self.main
        anc = self.ancillary
        n = len(lo)
        stage_rows = [
            (
                (mix128_batch(lo, hi, seed) % np.uint64(size)).astype(np.int64)
                + off
            ).tolist()
            for seed, off, size in zip(main._seeds, main._offs, main.sizes)
        ]
        anc_idx = (
            mix128_batch(lo, hi, anc._index_seed) % np.uint64(anc.n_cells)
        ).tolist()
        anc_dig = (
            mix128_batch(lo, hi, anc._digest_seed) & np.uint64(anc._digest_mask)
        ).tolist()
        lo_list = lo.tolist()
        hi_list = hi.tolist()
        size_list = None if sizes is None else sizes.tolist()
        k_lo = main.k_lo
        k_hi = main.k_hi
        counts = main.counts
        mbytes = main.bytes if size_list is not None else None
        a_digests = anc.digests
        a_counts = anc.counts
        a_max = anc.max_count
        promote_enabled = self.promote_enabled
        clear_promoted = self.clear_promoted
        hashes = reads = writes = promotions = 0
        for i in range(n):
            key_lo = lo_list[i]
            key_hi = hi_list[i]
            min_count = -1
            sen_idx = -1
            absorbed = False
            for row in stage_rows:
                idx = row[i]
                hashes += 1
                reads += 1
                count = counts[idx]
                if count == 0:
                    k_lo[idx] = key_lo
                    k_hi[idx] = key_hi
                    counts[idx] = 1
                    if mbytes is not None:
                        mbytes[idx] = size_list[i]
                    writes += 1
                    absorbed = True
                    break
                if k_lo[idx] == key_lo and k_hi[idx] == key_hi:
                    counts[idx] = count + 1
                    if mbytes is not None:
                        mbytes[idx] += size_list[i]
                    writes += 1
                    absorbed = True
                    break
                if min_count < 0 or count < min_count:
                    min_count = count
                    sen_idx = idx
            if absorbed:
                continue
            if not promote_enabled:
                min_count = 1 << 62
            ai = anc_idx[i]
            dig = anc_dig[i]
            hashes += 2
            reads += 1
            acount = a_counts[ai]
            if acount == 0 or a_digests[ai] != dig:
                a_digests[ai] = dig
                a_counts[ai] = 1
                writes += 1
                continue
            if acount < min_count:
                if acount < a_max:
                    a_counts[ai] = acount + 1
                writes += 1
                continue
            # Promotion: overwrite the sentinel record.
            k_lo[sen_idx] = key_lo
            k_hi[sen_idx] = key_hi
            counts[sen_idx] = acount + 1
            if mbytes is not None:
                mbytes[sen_idx] = size_list[i]
            writes += 1
            promotions += 1
            if clear_promoted:
                a_digests[ai] = 0
                a_counts[ai] = 0
                writes += 1
        self.promotions += promotions
        self.meter.add(packets=n, hashes=hashes, reads=reads, writes=writes)

    def _native_query(self, batch: KeyBatch) -> np.ndarray:
        """Batched main-then-ancillary point queries via the C kernel."""
        lo, hi = batch.halves()
        main = self.main
        anc = self.ancillary
        return self._native.hashflow_query(
            lo,
            hi,
            main.seeds_arr,
            main.offs_arr,
            main.sizes_arr,
            main.k_lo,
            main.k_hi,
            main.counts,
            anc._index_seed,
            anc._digest_seed,
            anc._digest_mask,
            anc.n_cells,
            anc.digests,
            anc.counts,
        )

    def _process_batch(self, batch: KeyBatch) -> None:
        if self.track_bytes and batch.sizes is not None:
            self._process_batch_bytes(batch)
            return
        main = self.main
        anc = self.ancillary
        anc_idx, anc_dig = anc.bucket_digest_rows(batch)
        # One loop serves any main-table layout: stage_views pairs each
        # precomputed index row with that stage's cell storage.
        stage_rows = main.stage_views(main.bucket_rows(batch))
        a_digests = anc._digests
        a_counts = anc._counts
        a_max = anc.max_count
        promote_enabled = self.promote_enabled
        clear_promoted = self.clear_promoted
        hashes = reads = writes = promotions = 0
        for i, key in enumerate(batch.keys):
            # Main-table probe (MainTable.probe, inlined).
            min_count = -1
            sen_keys = sen_counts = None
            sen_idx = -1
            absorbed = False
            for row, s_keys, s_counts in stage_rows:
                idx = row[i]
                hashes += 1
                reads += 1
                count = s_counts[idx]
                if count == 0:
                    s_keys[idx] = key
                    s_counts[idx] = 1
                    writes += 1
                    absorbed = True
                    break
                if s_keys[idx] == key:
                    s_counts[idx] = count + 1
                    writes += 1
                    absorbed = True
                    break
                if min_count < 0 or count < min_count:
                    min_count = count
                    sen_keys, sen_counts, sen_idx = s_keys, s_counts, idx
            if absorbed:
                continue
            if not promote_enabled:
                min_count = 1 << 62
            # Ancillary offer (AncillaryTable.offer, inlined).
            ai = anc_idx[i]
            dig = anc_dig[i]
            hashes += 2
            reads += 1
            acount = a_counts[ai]
            if acount == 0 or a_digests[ai] != dig:
                a_digests[ai] = dig
                a_counts[ai] = 1
                writes += 1
                continue
            if acount < min_count:
                if acount < a_max:
                    a_counts[ai] = acount + 1
                writes += 1
                continue
            # Promotion: overwrite the sentinel record.
            sen_keys[sen_idx] = key
            sen_counts[sen_idx] = acount + 1
            writes += 1
            promotions += 1
            if clear_promoted:
                a_digests[ai] = 0
                a_counts[ai] = 0
                writes += 1
        self.promotions += promotions
        self.meter.add(
            packets=len(batch), hashes=hashes, reads=reads, writes=writes
        )

    def _process_batch_bytes(self, batch: KeyBatch) -> None:
        """The batched loop with byte counters (``track_bytes=True``).

        Identical control flow to :meth:`_process_batch` plus the byte
        bookkeeping of the scalar probe/promote path: an insert seeds
        the cell's byte counter, an increment accumulates, and a
        promotion restarts it at the promoting packet's size (the
        documented lower bound).  Kept separate so the byte-free hot
        loop pays nothing for the option.
        """
        main = self.main
        anc = self.ancillary
        anc_idx, anc_dig = anc.bucket_digest_rows(batch)
        stage_rows = main.stage_views(main.bucket_rows(batch))
        stage_bytes = main.stage_byte_views()
        staged = [
            (row, s_keys, s_counts, s_bytes)
            for (row, s_keys, s_counts), s_bytes in zip(stage_rows, stage_bytes)
        ]
        sizes = batch.sizes.tolist()
        a_digests = anc._digests
        a_counts = anc._counts
        a_max = anc.max_count
        promote_enabled = self.promote_enabled
        clear_promoted = self.clear_promoted
        hashes = reads = writes = promotions = 0
        for i, key in enumerate(batch.keys):
            size = sizes[i]
            min_count = -1
            sen_keys = sen_counts = sen_bytes = None
            sen_idx = -1
            absorbed = False
            for row, s_keys, s_counts, s_bytes in staged:
                idx = row[i]
                hashes += 1
                reads += 1
                count = s_counts[idx]
                if count == 0:
                    s_keys[idx] = key
                    s_counts[idx] = 1
                    s_bytes[idx] = size
                    writes += 1
                    absorbed = True
                    break
                if s_keys[idx] == key:
                    s_counts[idx] = count + 1
                    s_bytes[idx] += size
                    writes += 1
                    absorbed = True
                    break
                if min_count < 0 or count < min_count:
                    min_count = count
                    sen_keys, sen_counts, sen_bytes, sen_idx = (
                        s_keys, s_counts, s_bytes, idx,
                    )
            if absorbed:
                continue
            if not promote_enabled:
                min_count = 1 << 62
            ai = anc_idx[i]
            dig = anc_dig[i]
            hashes += 2
            reads += 1
            acount = a_counts[ai]
            if acount == 0 or a_digests[ai] != dig:
                a_digests[ai] = dig
                a_counts[ai] = 1
                writes += 1
                continue
            if acount < min_count:
                if acount < a_max:
                    a_counts[ai] = acount + 1
                writes += 1
                continue
            sen_keys[sen_idx] = key
            sen_counts[sen_idx] = acount + 1
            sen_bytes[sen_idx] = size
            writes += 1
            promotions += 1
            if clear_promoted:
                a_digests[ai] = 0
                a_counts[ai] = 0
                writes += 1
        self.promotions += promotions
        self.meter.add(
            packets=len(batch), hashes=hashes, reads=reads, writes=writes
        )

    def byte_records(self) -> dict[int, int]:
        """Per-flow byte counts (requires ``track_bytes=True``).

        Counts are exact for never-promoted records and lower bounds for
        promoted ones (bytes lost to ancillary churn are unrecoverable).

        Raises:
            RuntimeError: if byte tracking is disabled.
        """
        return self.main.byte_records()

    def byte_query(self, key: int) -> int | None:
        """The flow's resident byte count, or None if absent (requires
        ``track_bytes=True``); a per-key probe so expiry exporters read
        a few flows without scanning the whole table.

        Raises:
            RuntimeError: if byte tracking is disabled.
        """
        return self.main.byte_query(key)

    # ------------------------------------------------------------------
    # Report path
    # ------------------------------------------------------------------
    def records(self) -> dict[int, int]:
        """Accurate records: the main table's resident flows."""
        return self.main.records()

    def query(self, key: int) -> int:
        """Main-table count, else the ancillary summarized count, else 0."""
        if self._native is not None:
            return int(self._native_query(KeyBatch([key]))[0])
        count = self.main.query(key)
        if count:
            return count
        return self.ancillary.query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`: vectorized main probe, then ancillary.

        Both tables answer the whole batch with precomputed hash rows
        (reusing the batch's 64-bit halves across every hash function);
        the scalar main-then-ancillary precedence becomes one masked
        select.  Bit-identical to the scalar query per key.  On the
        native tier the whole walk — probe stages, precedence, digest
        check — is one C kernel call over the SoA buffers.
        """
        batch = KeyBatch.coerce(keys)
        if self._native is not None:
            if not len(batch):
                return np.zeros(0, dtype=np.int64)
            return self._native_query(batch)
        main = self.main.query_batch(batch)
        ancillary = self.ancillary.query_batch(batch)
        return np.where(main != 0, main, ancillary)

    def estimate_cardinality(self) -> float:
        """Occupied main cells + linear counting over the ancillary table
        (paper §IV-A)."""
        return self.main.occupancy() + self.ancillary.estimate_cardinality()

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Main-table flows with more than ``threshold`` packets."""
        return {k: v for k, v in self.main.records().items() if v > threshold}

    def utilization(self) -> float:
        """Main-table utilization (the quantity modelled in §III-B)."""
        return self.main.utilization()

    def evict(self, key: int) -> bool:
        """Control-plane eviction: clear the flow's main-table record and
        its ancillary cell (used by timeout/export engines; not metered).

        Returns:
            Whether a main-table record was removed.
        """
        removed = self.main.remove(key)
        # clear_cell meters a write because the promotion path uses it
        # from the dataplane; eviction is control-plane, so undo it.
        writes_before = self.meter.writes
        self.ancillary.clear_cell(key)
        self.meter.writes = writes_before
        return removed

    def reset(self) -> None:
        """Clear both tables, the promotion counter and the meter."""
        self.main.reset()
        self.ancillary.reset()
        self.promotions = 0
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Main records + ancillary (digest, counter) cells."""
        return self.main.memory_bits + self.ancillary.memory_bits
