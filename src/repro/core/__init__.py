"""HashFlow core: the paper's primary contribution."""

from repro.core.adaptive import AdaptiveHashFlow, EpochedHashFlow, merge_records
from repro.core.ancillary import PROMOTE, STORED, AncillaryTable
from repro.core.hashflow import HashFlow
from repro.core.timeout import ExportedRecord, TimeoutHashFlow
from repro.core.maintable import (
    ABSORBED,
    DEFAULT_ALPHA,
    DEFAULT_DEPTH,
    MISSED,
    MainTable,
    MultiHashTable,
    PipelinedTables,
    pipeline_sizes,
)

__all__ = [
    "ABSORBED",
    "DEFAULT_ALPHA",
    "DEFAULT_DEPTH",
    "MISSED",
    "PROMOTE",
    "STORED",
    "AdaptiveHashFlow",
    "AncillaryTable",
    "EpochedHashFlow",
    "ExportedRecord",
    "HashFlow",
    "TimeoutHashFlow",
    "MainTable",
    "MultiHashTable",
    "PipelinedTables",
    "merge_records",
    "pipeline_sizes",
]
