"""NetFlow-style record expiry: active and inactive timeouts.

Operational NetFlow does not hold records forever: a record is exported
and cleared when its flow has been idle for the *inactive timeout* or
has been alive past the *active timeout* (RFC 3954 semantics).  This
module adds those cache dynamics on top of HashFlow: the dataplane
tables stay fixed-size, while the control plane tracks per-flow
timestamps, expires records, and accumulates the exported archive.

Since the streaming pipeline subsystem (:mod:`repro.stream`), the
timestamp tracking and the expiry decision live in
:class:`repro.stream.rotation.TimeoutRotation` — the rotation policy a
:class:`~repro.stream.pipeline.Pipeline` drives against *any* evictable
collector.  :class:`TimeoutHashFlow` remains as the thin adapter that
binds that policy to one HashFlow and keeps the original one-shot API
(``process_packet`` / ``expire`` / ``flush`` / ``exported``)
bit-identically.  The exported record type is the pipeline's
:class:`~repro.stream.records.FlowRecord` (aliased as
``ExportedRecord`` for compatibility).
"""

from __future__ import annotations

import numpy as np

from repro.core.hashflow import HashFlow
from repro.flow.batch import KeyBatch
from repro.flow.packet import Packet
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import build, register
from repro.stream.records import FlowRecord
from repro.stream.rotation import TimeoutRotation

#: Compatibility alias: timeout exports have always been flow records.
ExportedRecord = FlowRecord


class TimeoutHashFlow(FlowCollector):
    """HashFlow with active/inactive timeout export.

    Args:
        inner: the HashFlow whose tables hold the live records.
        inactive_timeout: seconds of silence after which a flow is
            exported (NetFlow default: 15s).
        active_timeout: maximum record lifetime before a mid-flow export
            (NetFlow default: 30min).
        expiry_interval: how often (in packets) the expiry scan runs;
            models the periodic export engine sweep.
    """

    name = "TimeoutHashFlow"

    def __init__(
        self,
        inner: HashFlow,
        inactive_timeout: float = 15.0,
        active_timeout: float = 1800.0,
        expiry_interval: int = 1024,
    ):
        super().__init__()
        self.inner = inner
        self.meter = inner.meter
        self.policy = TimeoutRotation(
            inactive_timeout=inactive_timeout,
            active_timeout=active_timeout,
            expiry_interval=expiry_interval,
        )
        self.exported: list[ExportedRecord] = []

    @property
    def inactive_timeout(self) -> float:
        return self.policy.inactive_timeout

    @property
    def active_timeout(self) -> float:
        return self.policy.active_timeout

    @property
    def expiry_interval(self) -> int:
        return self.policy.expiry_interval

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Process a timestamped packet and run due expiry sweeps."""
        self.inner.process(packet.key)
        if self.policy.track(packet.key, packet.timestamp):
            self.expire(self.policy.now)

    def process(self, key: int) -> None:
        """Untimestamped fallback: behaves like plain HashFlow (no expiry
        clock advances)."""
        self.inner.process(key)
        self.policy.touch(key)

    def process_trace(self, trace) -> int:
        """Feed a (preferably timestamped) trace; returns packet count."""
        n = 0
        for packet in trace.packets():
            self.process_packet(packet)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def expire(self, now: float) -> list[ExportedRecord]:
        """Export and clear every record past a timeout.

        Returns:
            The records exported by this sweep.
        """
        exported = self.policy.sweep(self.inner, now)
        self.exported.extend(exported)
        return exported

    def flush(self) -> list[ExportedRecord]:
        """Export everything still resident (end-of-run drain)."""
        # A flush is an expiry sweep with an infinitely late clock.
        return self.expire(self.policy.flush_horizon())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def records(self) -> dict[int, int]:
        """Exported records merged with the live tables' records."""
        merged: dict[int, int] = {}
        for record in self.exported:
            merged[record.key] = merged.get(record.key, 0) + record.packets
        for key, count in self.inner.records().items():
            merged[key] = merged.get(key, 0) + count
        return merged

    def query(self, key: int) -> int:
        """Exported count plus the live estimate."""
        exported = sum(r.packets for r in self.exported if r.key == key)
        return exported + self.inner.query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`.

        The scalar path scans the export archive once *per query*; here
        the per-flow export sums are folded into a dict once per batch
        and gathered, with the live tables answering through the inner
        collector's vectorized batch query.
        """
        batch = KeyBatch.coerce(keys)
        exported: dict[int, int] = {}
        for record in self.exported:
            exported[record.key] = exported.get(record.key, 0) + record.packets
        return gather_estimates(exported, batch) + self.inner.query_batch(batch)

    def estimate_cardinality(self) -> float:
        """Distinct exported flows plus the live estimate (flows spanning
        an export boundary count once per segment)."""
        exported_keys = {r.key for r in self.exported}
        live = self.inner.estimate_cardinality()
        overlap = len(exported_keys & self.inner.records().keys())
        return len(exported_keys) + live - overlap

    def reset(self) -> None:
        """Clear the tables, the timestamps and the archive."""
        self.inner.reset()
        self.policy.reset()
        self.exported.clear()

    @property
    def memory_bits(self) -> int:
        """Dataplane memory only (timestamps live control-plane side)."""
        return self.inner.memory_bits

    def spec_params(self) -> dict:
        """Nested spec: the inner collector's spec plus the timeouts."""
        return {
            "inner": self.inner.spec.to_dict(),
            **self.policy.spec_params(),
        }


@register("timeout", cls=TimeoutHashFlow)
def _build_timeout(
    inner,
    inactive_timeout: float = 15.0,
    active_timeout: float = 1800.0,
    expiry_interval: int = 1024,
) -> TimeoutHashFlow:
    """Registry builder: construct the inner collector from its spec."""
    return TimeoutHashFlow(
        build(inner),
        inactive_timeout=inactive_timeout,
        active_timeout=active_timeout,
        expiry_interval=expiry_interval,
    )
