"""NetFlow-style record expiry: active and inactive timeouts.

Operational NetFlow does not hold records forever: a record is exported
and cleared when its flow has been idle for the *inactive timeout* or
has been alive past the *active timeout* (RFC 3954 semantics).  This
module adds those cache dynamics on top of HashFlow: the dataplane
tables stay fixed-size, while the control plane tracks per-flow
timestamps, expires records, and accumulates the exported archive.

The timestamp map lives control-plane side (ordinary memory), matching
real deployments where the export engine, not the SRAM tables, owns
flow timing.  Expiry frees main-table cells, so long-lived measurement
keeps absorbing new flows — the same operational motivation as
:class:`~repro.core.adaptive.EpochedHashFlow`, but flow-granular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hashflow import HashFlow
from repro.flow.batch import KeyBatch
from repro.flow.packet import Packet
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import build, register


@dataclass(frozen=True, slots=True)
class ExportedRecord:
    """A flow record exported on expiry.

    Attributes:
        key: packed flow ID.
        packets: recorded packet count at export time.
        first_seen: flow start timestamp.
        last_seen: last packet timestamp.
        reason: ``"inactive"`` or ``"active"``.
    """

    key: int
    packets: int
    first_seen: float
    last_seen: float
    reason: str


class TimeoutHashFlow(FlowCollector):
    """HashFlow with active/inactive timeout export.

    Args:
        inner: the HashFlow whose tables hold the live records.
        inactive_timeout: seconds of silence after which a flow is
            exported (NetFlow default: 15s).
        active_timeout: maximum record lifetime before a mid-flow export
            (NetFlow default: 30min).
        expiry_interval: how often (in packets) the expiry scan runs;
            models the periodic export engine sweep.
    """

    name = "TimeoutHashFlow"

    def __init__(
        self,
        inner: HashFlow,
        inactive_timeout: float = 15.0,
        active_timeout: float = 1800.0,
        expiry_interval: int = 1024,
    ):
        super().__init__()
        if inactive_timeout <= 0 or active_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if active_timeout < inactive_timeout:
            raise ValueError("active timeout must be >= inactive timeout")
        if expiry_interval <= 0:
            raise ValueError(f"expiry_interval must be positive, got {expiry_interval}")
        self.inner = inner
        self.meter = inner.meter
        self.inactive_timeout = inactive_timeout
        self.active_timeout = active_timeout
        self.expiry_interval = expiry_interval
        self._first_seen: dict[int, float] = {}
        self._last_seen: dict[int, float] = {}
        self._now = 0.0
        self._since_sweep = 0
        self.exported: list[ExportedRecord] = []

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def process_packet(self, packet: Packet) -> None:
        """Process a timestamped packet and run due expiry sweeps."""
        self._now = max(self._now, packet.timestamp)
        key = packet.key
        self.inner.process(key)
        if key not in self._first_seen:
            self._first_seen[key] = packet.timestamp
        self._last_seen[key] = packet.timestamp
        self._since_sweep += 1
        if self._since_sweep >= self.expiry_interval:
            self.expire(self._now)

    def process(self, key: int) -> None:
        """Untimestamped fallback: behaves like plain HashFlow (no expiry
        clock advances)."""
        self.inner.process(key)
        self._first_seen.setdefault(key, self._now)
        self._last_seen[key] = self._now

    def process_trace(self, trace) -> int:
        """Feed a (preferably timestamped) trace; returns packet count."""
        n = 0
        for packet in trace.packets():
            self.process_packet(packet)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def expire(self, now: float) -> list[ExportedRecord]:
        """Export and clear every record past a timeout.

        Returns:
            The records exported by this sweep.
        """
        self._since_sweep = 0
        exported: list[ExportedRecord] = []
        for key, last in list(self._last_seen.items()):
            first = self._first_seen[key]
            if now - last >= self.inactive_timeout:
                reason = "inactive"
            elif now - first >= self.active_timeout:
                reason = "active"
            else:
                continue
            count = self.inner.query(key)
            if count > 0:
                exported.append(
                    ExportedRecord(
                        key=key,
                        packets=count,
                        first_seen=first,
                        last_seen=last,
                        reason=reason,
                    )
                )
            self.inner.evict(key)
            del self._first_seen[key]
            del self._last_seen[key]
        self.exported.extend(exported)
        return exported

    def flush(self) -> list[ExportedRecord]:
        """Export everything still resident (end-of-run drain)."""
        # A flush is an expiry sweep with an infinitely late clock.
        return self.expire(self._now + self.active_timeout + self.inactive_timeout)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def records(self) -> dict[int, int]:
        """Exported records merged with the live tables' records."""
        merged: dict[int, int] = {}
        for record in self.exported:
            merged[record.key] = merged.get(record.key, 0) + record.packets
        for key, count in self.inner.records().items():
            merged[key] = merged.get(key, 0) + count
        return merged

    def query(self, key: int) -> int:
        """Exported count plus the live estimate."""
        exported = sum(r.packets for r in self.exported if r.key == key)
        return exported + self.inner.query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`.

        The scalar path scans the export archive once *per query*; here
        the per-flow export sums are folded into a dict once per batch
        and gathered, with the live tables answering through the inner
        collector's vectorized batch query.
        """
        batch = KeyBatch.coerce(keys)
        exported: dict[int, int] = {}
        for record in self.exported:
            exported[record.key] = exported.get(record.key, 0) + record.packets
        return gather_estimates(exported, batch) + self.inner.query_batch(batch)

    def estimate_cardinality(self) -> float:
        """Distinct exported flows plus the live estimate (flows spanning
        an export boundary count once per segment)."""
        exported_keys = {r.key for r in self.exported}
        live = self.inner.estimate_cardinality()
        overlap = len(exported_keys & self.inner.records().keys())
        return len(exported_keys) + live - overlap

    def reset(self) -> None:
        """Clear the tables, the timestamps and the archive."""
        self.inner.reset()
        self._first_seen.clear()
        self._last_seen.clear()
        self.exported.clear()
        self._now = 0.0
        self._since_sweep = 0

    @property
    def memory_bits(self) -> int:
        """Dataplane memory only (timestamps live control-plane side)."""
        return self.inner.memory_bits

    def spec_params(self) -> dict:
        """Nested spec: the inner collector's spec plus the timeouts."""
        return {
            "inner": self.inner.spec.to_dict(),
            "inactive_timeout": self.inactive_timeout,
            "active_timeout": self.active_timeout,
            "expiry_interval": self.expiry_interval,
        }


@register("timeout", cls=TimeoutHashFlow)
def _build_timeout(
    inner,
    inactive_timeout: float = 15.0,
    active_timeout: float = 1800.0,
    expiry_interval: int = 1024,
) -> TimeoutHashFlow:
    """Registry builder: construct the inner collector from its spec."""
    return TimeoutHashFlow(
        build(inner),
        inactive_timeout=inactive_timeout,
        active_timeout=active_timeout,
        expiry_interval=expiry_interval,
    )
