"""Adaptivity extensions (the paper's future work, Section V).

The paper closes with: "we plan to ... study how to make it adaptive to
traffic variation and network wide measurement."  This module supplies
the traffic-variation half:

* :class:`EpochedHashFlow` — rotates the HashFlow state every epoch (a
  fixed packet budget), exporting each epoch's records into a cumulative
  store, so long-running measurement does not saturate the tables.
* :class:`AdaptiveHashFlow` — adjusts the promotion margin based on the
  observed ancillary replacement (thrash) rate: under heavy mice churn
  the ancillary table evicts constantly and genuine elephants struggle
  to accumulate counts, so lowering the effective promotion bar keeps
  them flowing into the main table.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashflow import HashFlow
from repro.flow.batch import KeyBatch
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import build, register
from repro.stream.rotation import CountRotation, export_and_reset


def merge_records(into: dict[int, int], records: dict[int, int]) -> None:
    """Accumulate ``records`` into ``into`` (summing counts per flow)."""
    for key, count in records.items():
        into[key] = into.get(key, 0) + count


class EpochedHashFlow(FlowCollector):
    """HashFlow with periodic epoch rotation.

    A thin adapter binding a
    :class:`repro.stream.rotation.CountRotation` policy (the shared
    epoch-boundary logic of the streaming pipeline) to one HashFlow,
    with the rotated epochs merged into a cumulative archive.

    Args:
        inner: the HashFlow instance to rotate.
        epoch_packets: packets per epoch; the tables are exported and
            reset after every ``epoch_packets`` packets.
    """

    name = "EpochedHashFlow"

    def __init__(self, inner: HashFlow, epoch_packets: int):
        super().__init__()
        self.inner = inner
        self.policy = CountRotation(epoch_packets)
        self.meter = inner.meter  # share the inner meter
        self._epoch_count = 0
        self._archive: dict[int, int] = {}

    @property
    def epoch_packets(self) -> int:
        return self.policy.epoch_packets

    @property
    def epochs_completed(self) -> int:
        """Number of epochs rotated so far."""
        return self._epoch_count

    def process(self, key: int) -> None:
        """Feed the inner collector, rotating at epoch boundaries."""
        self.inner.process(key)
        if self.policy.tick():
            self.rotate()

    def rotate(self) -> dict[int, int]:
        """Export the current epoch's records and reset the tables
        (cumulative cost accounting survives the reset).

        Returns:
            The records of the epoch that just closed.
        """
        exported = export_and_reset(self.inner)
        merge_records(self._archive, exported)
        self._epoch_count += 1
        self.policy.mark_rotated()
        return exported

    def records(self) -> dict[int, int]:
        """Archived records merged with the live epoch's records."""
        merged = dict(self._archive)
        merge_records(merged, self.inner.records())
        return merged

    def query(self, key: int) -> int:
        """Archived count plus the live epoch's estimate."""
        return self._archive.get(key, 0) + self.inner.query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`: one archive dict-gather plus the inner
        collector's vectorized batch query."""
        batch = KeyBatch.coerce(keys)
        return gather_estimates(self._archive, batch) + self.inner.query_batch(batch)

    def estimate_cardinality(self) -> float:
        """Archived distinct flows plus the live epoch's estimate.

        Flows spanning epochs are counted once per epoch; for long-lived
        traffic this overestimates, which is the inherent cost of epoch
        rotation (documented rather than hidden).
        """
        live = self.inner.estimate_cardinality()
        if not self._archive:
            return live
        return float(len(self._archive)) + live - len(
            self._archive.keys() & self.inner.records().keys()
        )

    def reset(self) -> None:
        """Clear the archive and the inner collector."""
        self.inner.reset()
        self._archive.clear()
        self._epoch_count = 0
        self.policy.reset()

    @property
    def memory_bits(self) -> int:
        """On-switch memory: the inner collector only (the archive lives
        off-switch at the collector, as in operational NetFlow)."""
        return self.inner.memory_bits

    def spec_params(self) -> dict:
        """Nested spec: the inner collector's spec plus the epoch size."""
        return {
            "inner": self.inner.spec.to_dict(),
            "epoch_packets": self.epoch_packets,
        }


@register("epoched", cls=EpochedHashFlow)
def _build_epoched(inner, epoch_packets) -> EpochedHashFlow:
    """Registry builder: construct the inner collector from its spec."""
    return EpochedHashFlow(build(inner), epoch_packets)


@register("adaptive_hashflow")
class AdaptiveHashFlow(HashFlow):
    """HashFlow with a promotion margin adapted to ancillary thrash.

    Every ``window`` packets the collector inspects how often ancillary
    offers replaced an existing record (digest mismatch churn).  A high
    replacement share means mice churn is suppressing promotion, so the
    margin grows (promote earlier); a low share shrinks it back toward
    the paper's exact rule.

    The margin ``m`` relaxes the promotion condition to
    ``count >= sentinel_min - m``.
    """

    name = "AdaptiveHashFlow"

    def __init__(self, *args, window: int = 4096, max_margin: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if max_margin < 0:
            raise ValueError(f"max_margin must be >= 0, got {max_margin}")
        self._spec_params.update(window=window, max_margin=max_margin)
        self.window = window
        self.max_margin = max_margin
        self.margin = 0
        self._window_offers = 0
        self._window_replacements = 0

    def process(self, key: int) -> None:
        """Algorithm 1 with the adaptive promotion margin."""
        from repro.core.maintable import ABSORBED  # local import for clarity
        from repro.core.ancillary import PROMOTE

        self.meter.packets += 1
        status, min_count, sentinel = self.main.probe(key)
        if status == ABSORBED:
            return
        before = self.ancillary.query(key)
        effective_min = max(1, min_count - self.margin)
        outcome, new_count = self.ancillary.offer(key, effective_min)
        self._window_offers += 1
        if before == 0:
            self._window_replacements += 1
        if outcome == PROMOTE:
            self.main.promote(sentinel, key, new_count)
            self.promotions += 1
            if self.clear_promoted:
                self.ancillary.clear_cell(key)
        if self._window_offers >= self.window:
            self._adapt()

    def process_batch(self, keys) -> None:
        """Per-packet loop: the margin adapts mid-batch, so the base
        class's vectorized Algorithm 1 (which assumes the exact
        promotion rule throughout) must not engage.  The *query* side
        has no such state dependence — the margin only shapes updates —
        so the inherited vectorized ``query_batch`` stays valid."""
        FlowCollector.process_batch(self, keys)

    def _adapt(self) -> None:
        """Update the margin from the last window's replacement share."""
        share = self._window_replacements / self._window_offers
        if share > 0.5 and self.margin < self.max_margin:
            self.margin += 1
        elif share < 0.25 and self.margin > 0:
            self.margin -= 1
        self._window_offers = 0
        self._window_replacements = 0
