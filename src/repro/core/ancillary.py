"""HashFlow ancillary table ``A``.

Stores *summarized* records ``(digest, count)`` for flows that lost all
``d`` main-table probes (paper Algorithm 1, lines 14-23).  A short
digest of the flow ID (8 bits by default) replaces the full key to save
memory; the counter is likewise narrow (8 bits) and saturates.

Update semantics for a packet whose flow digests to ``digest`` at bucket
``idx``, with ``min_count`` the sentinel count from the failed main
probe:

* empty bucket or digest mismatch → *replace*: the existing summarized
  flow is discarded and the bucket becomes ``(digest, 1)``;
* digest match and ``count < min_count`` → *increment*;
* digest match and ``count >= min_count`` → *promote*: the flow has
  grown at least as large as the smallest colliding main-table record,
  so it should displace that sentinel.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.digest import DEFAULT_DIGEST_BITS, DigestFunction
from repro.hashing.families import HashFunction
from repro.hashing.mixers import mix128
from repro.sketches.base import CostMeter
from repro.sketches.linear_counting import linear_counting_estimate

DEFAULT_COUNTER_BITS = 8

#: Outcome: the packet was recorded in the ancillary table.
STORED = 0
#: Outcome: the record grew past the sentinel and must be promoted.
PROMOTE = 1


class AncillaryTable:
    """The ancillary (digest, count) table of HashFlow.

    Args:
        n_cells: number of buckets.
        index_hash: the hash ``g1`` mapping flow IDs to buckets.
        digest: digest function (``h1 mod 2**w`` in the paper).
        counter_bits: counter width; counters saturate at
            ``2**counter_bits - 1`` (8 bits in the paper's setup).
        meter: shared cost meter.
    """

    def __init__(
        self,
        n_cells: int,
        index_hash: HashFunction,
        digest: DigestFunction,
        counter_bits: int = DEFAULT_COUNTER_BITS,
        meter: CostMeter | None = None,
    ):
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive, got {counter_bits}")
        self.n_cells = n_cells
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.index_hash = index_hash
        self.digest = digest
        self.meter = meter if meter is not None else CostMeter()
        # The hot path inlines `mix128(key, seed)` with prebound seeds,
        # which is only valid for plain (non-subclassed) HashFunction /
        # DigestFunction instances; anything else — e.g. a TabulationHash
        # drop-in — dispatches through the injected objects instead.
        self._fast_hashes = (
            type(index_hash) is HashFunction
            and type(digest) is DigestFunction
            and type(digest.base) is HashFunction
        )
        if self._fast_hashes:
            self._index_seed = index_hash.seed
            self._digest_seed = digest.base.seed
            self._digest_mask = (1 << digest.bits) - 1
        self._digests = [0] * n_cells
        self._counts = [0] * n_cells

    def offer(self, key: int, min_count: int) -> tuple[int, int]:
        """Record a packet that failed every main-table probe.

        Args:
            key: packed flow ID.
            min_count: sentinel count from the failed main probe.

        Returns:
            ``(STORED, 0)`` if the packet was absorbed here, or
            ``(PROMOTE, new_count)`` when the caller must write
            ``(key, new_count)`` over the main-table sentinel
            (``new_count = count + 1``, counting this packet).
        """
        meter = self.meter
        if self._fast_hashes:
            idx = mix128(key, self._index_seed) % self.n_cells
            dig = mix128(key, self._digest_seed) & self._digest_mask
        else:
            idx = self.index_hash.bucket(key, self.n_cells)
            dig = self.digest(key)
        meter.hashes += 2
        meter.reads += 1
        count = self._counts[idx]
        if count == 0 or self._digests[idx] != dig:
            # New or colliding flow: replace the summarized record.
            self._digests[idx] = dig
            self._counts[idx] = 1
            meter.writes += 1
            return STORED, 0
        if count < min_count:
            if count < self.max_count:
                self._counts[idx] = count + 1
            meter.writes += 1
            return STORED, 0
        return PROMOTE, count + 1

    def bucket_digest_rows(self, batch) -> tuple[list[int], list[int]]:
        """Precompute bucket indices and digests for a whole key batch.

        Returns:
            ``(indices, digests)`` lists of Python ints, bit-identical
            to what :meth:`offer` would compute per key.
        """
        if self._fast_hashes:
            idx = self.index_hash.buckets_batch(batch, self.n_cells).tolist()
            dig = self.digest.values_batch(batch).tolist()
        else:
            n = self.n_cells
            idx = [self.index_hash.bucket(k, n) for k in batch.keys]
            dig = [self.digest(k) for k in batch.keys]
        return idx, dig

    def query(self, key: int) -> int:
        """Summarized count for ``key`` (0 unless its digest matches)."""
        idx = self.index_hash.bucket(key, self.n_cells)
        if self._counts[idx] > 0 and self._digests[idx] == self.digest(key):
            return self._counts[idx]
        return 0

    def query_batch(self, batch) -> np.ndarray:
        """Summarized counts for a whole key batch (``np.int64``).

        Digest comparison is exact integer work, so the whole query
        collapses into vectorized passes: batched bucket indices,
        batched digests, one gather of the (counts, digests) cells and
        one masked select.  Injected hashes without a batched form
        (e.g. a TabulationHash drop-in) fall back to the scalar query.
        """
        n = len(batch)
        if not self._fast_hashes:
            query = self.query
            return np.fromiter((query(k) for k in batch.keys), np.int64, count=n)
        idx = self.index_hash.buckets_batch(batch, self.n_cells)
        dig = self.digest.values_batch(batch)
        counts = np.fromiter(self._counts, np.int64, count=self.n_cells)
        digests = np.fromiter(self._digests, np.uint64, count=self.n_cells)
        hit = counts[idx]
        return np.where((hit > 0) & (digests[idx] == dig), hit, np.int64(0))

    def clear_cell(self, key: int) -> None:
        """Erase the cell ``key`` maps to (used by the promotion-clearing
        HashFlow variant; the literal Algorithm 1 leaves it stale)."""
        idx = self.index_hash.bucket(key, self.n_cells)
        self._digests[idx] = 0
        self._counts[idx] = 0
        self.meter.writes += 1

    def occupancy(self) -> int:
        """Number of non-empty buckets."""
        return sum(1 for c in self._counts if c > 0)

    def estimate_cardinality(self) -> float:
        """Linear-counting estimate of distinct flows that hit this table.

        Paper §IV-A: linear counting is "used by HashFlow to estimate
        the number of flows in its ancillary table".
        """
        return linear_counting_estimate(self.n_cells, self.n_cells - self.occupancy())

    def reset(self) -> None:
        """Clear all buckets."""
        self._digests = [0] * self.n_cells
        self._counts = [0] * self.n_cells

    @property
    def memory_bits(self) -> int:
        """Buckets of (digest, counter)."""
        return self.n_cells * (self.digest.bits + self.counter_bits)
