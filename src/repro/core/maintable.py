"""HashFlow main table: multi-hash and pipelined variants.

The main table ``M`` stores accurate ``(flow_id, count)`` records.  Two
organizations are implemented, as in the paper (Section III-A):

* :class:`MultiHashTable` — one array of ``n`` buckets probed with ``d``
  independent hash functions ``h_1 ... h_d``.
* :class:`PipelinedTables` — ``d`` sub-tables whose sizes decay
  geometrically (``n_{k+1} = α · n_k``), each with its own hash
  function.  The paper shows this improves utilization by up to ~5.5%
  at ``α = 0.7`` (Fig. 2d) and adopts it for the evaluation.

Both expose the same *probe* contract used by Algorithm 1: a probe
either increments an existing record, fills an empty bucket, or fails —
reporting the *sentinel* (the colliding bucket with the smallest count)
for the record-promotion strategy.  Probes never evict, so a flow is
never split across buckets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.flow.batch import KeyBatch
from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFamily
from repro.hashing.mixers import low_halves, mix128
from repro.sketches.base import CostMeter

_COUNTER_BITS = 32
_EMPTY = 0

#: Probe outcome: the packet was absorbed (inserted or incremented).
ABSORBED = 0
#: Probe outcome: all d buckets collided; sentinel information returned.
MISSED = 1

DEFAULT_DEPTH = 3
DEFAULT_ALPHA = 0.7


def _query_batch_stages(batch: KeyBatch, stages) -> np.ndarray:
    """Vectorized first-match point queries over probe stages.

    The scalar :meth:`MainTable.query` checks the key's probe bucket in
    each stage *in order* and returns the first resident match.  This
    helper reproduces that exactly for a whole batch:

    * every probe index is precomputed (``stages`` pairs an index row
      with that stage's cell storage, like ``stage_views``);
    * the stored keys' low 64-bit halves are compared against the
      batch's precomputed ``lo`` halves in one vectorized pass, so only
      real candidates (occupied bucket, matching low half) reach the
      exact Python-int comparison;
    * a resolved mask enforces first-match-wins across stages, keeping
      the answer bit-identical even if control-plane evictions ever
      leave a flow resident in more than one probe bucket.

    Args:
        batch: the query keys (halves are materialized on first use).
        stages: iterable of ``(index_row, keys_list, counts_list,
            keys_lo, counts_arr)`` per probe stage, where ``index_row``
            is an integer ndarray of ``len(batch)`` bucket indices,
            ``keys_lo`` is ``low_halves(keys_list)`` and ``counts_arr``
            the counts as ``np.int64`` (both passed in so a shared flat
            table is converted only once, not once per stage).

    Returns:
        ``np.int64`` array; entry ``i`` equals the scalar query of
        ``batch.keys[i]``.
    """
    n = len(batch)
    out = np.zeros(n, dtype=np.int64)
    unresolved = np.ones(n, dtype=bool)
    lo = batch.lo
    keys = batch.keys
    for row, s_keys, s_counts, s_lo, counts_arr in stages:
        if not unresolved.any():
            break
        candidates = unresolved & (counts_arr[row] > 0) & (s_lo[row] == lo)
        for i in np.nonzero(candidates)[0].tolist():
            idx = int(row[i])
            if s_keys[idx] == keys[i]:
                out[i] = s_counts[idx]
                unresolved[i] = False
    return out


class MainTable(ABC):
    """Abstract main table with the probe/promote contract.

    Args:
        meter: shared cost meter.
        track_bytes: allocate a parallel byte counter per bucket (the
            NetFlow record's dOctets field); incremented by the
            ``size`` argument of :meth:`probe`.
    """

    def __init__(self, meter: CostMeter | None = None, track_bytes: bool = False):
        self.meter = meter if meter is not None else CostMeter()
        self.track_bytes = track_bytes

    @abstractmethod
    def probe(self, key: int, size: int = 0) -> tuple[int, int, object]:
        """Probe the table with all hash functions for ``key``.

        Args:
            key: packed flow ID.
            size: packet length in bytes, accumulated when
                ``track_bytes`` is enabled.

        Returns:
            ``(ABSORBED, 0, None)`` if the packet found its record or an
            empty bucket; ``(MISSED, min_count, sentinel)`` otherwise,
            where ``sentinel`` is an opaque location token for
            :meth:`promote` and ``min_count`` the smallest colliding
            count.
        """

    @abstractmethod
    def promote(self, sentinel: object, key: int, count: int, size: int = 0) -> None:
        """Overwrite the sentinel bucket with ``(key, count)``.

        With byte tracking, the promoted record's byte counter restarts
        at ``size`` (earlier bytes were lost to ancillary churn — a
        documented lower bound).
        """

    @abstractmethod
    def bucket_rows(self, batch) -> list[list[int]]:
        """Precompute every probe index for a whole key batch.

        Args:
            batch: a :class:`~repro.flow.batch.KeyBatch`.

        Returns:
            ``d`` lists of ``len(batch)`` Python-int indices; entry
            ``[s][i]`` is the bucket the stage-``s`` hash maps key ``i``
            to — exactly what the scalar :meth:`probe` would compute.
        """

    @abstractmethod
    def stage_views(self, rows: list[list[int]]) -> list[tuple]:
        """Pair precomputed index rows with each probe stage's storage.

        Args:
            rows: the output of :meth:`bucket_rows` for the same batch.

        Returns:
            One ``(index_row, keys_list, counts_list)`` tuple per probe
            stage, where ``keys_list[index_row[i]]`` /
            ``counts_list[index_row[i]]`` are the cells the stage-``s``
            probe of key ``i`` touches.  This is the layout-agnostic
            handle the batched update loop iterates, so engine code
            never reaches into a concrete table's internals.
        """

    def byte_records(self) -> dict[int, int]:
        """Per-flow byte counts (requires ``track_bytes``).

        Raises:
            RuntimeError: if byte tracking is disabled.
        """
        raise RuntimeError("byte tracking is disabled for this table")

    def byte_query(self, key: int) -> int | None:
        """Measured byte count of the flow's resident record.

        A per-key probe (the byte-side twin of :meth:`query`) so
        expiry-style exporters can read a few flows' byte counts
        without materializing :meth:`byte_records` over the whole
        table.  Returns None when the flow is not resident.

        Raises:
            RuntimeError: if byte tracking is disabled.
        """
        raise RuntimeError("byte tracking is disabled for this table")

    def stage_byte_views(self) -> list[list[int]] | None:
        """Per-stage byte storage aligned with :meth:`stage_views`.

        Entry ``s`` is the byte-counter list addressed by stage ``s``'s
        probe indices (the same flat list ``depth`` times for the
        multi-hash layout).  Returns None when byte tracking is off —
        the batched update loop uses that to skip byte bookkeeping.
        """
        return None

    @abstractmethod
    def query(self, key: int) -> int:
        """The flow's recorded count, or 0 if absent."""

    def query_batch(self, batch: KeyBatch) -> np.ndarray:
        """Recorded counts for a whole key batch (``np.int64``).

        Bit-identical to the scalar :meth:`query` per key; both layouts
        override this with a :func:`_query_batch_stages` pass over
        precomputed probe-index rows.
        """
        query = self.query
        return np.fromiter(
            (query(k) for k in batch.keys), np.int64, count=len(batch)
        )

    @abstractmethod
    def records(self) -> dict[int, int]:
        """All resident records."""

    @abstractmethod
    def occupancy(self) -> int:
        """Number of occupied buckets."""

    @abstractmethod
    def remove(self, key: int) -> bool:
        """Clear the flow's record if resident (control-plane operation,
        e.g. after a timeout export; not metered).  Returns whether a
        record was removed."""

    @abstractmethod
    def reset(self) -> None:
        """Clear all buckets."""

    @property
    @abstractmethod
    def n_cells(self) -> int:
        """Total buckets."""

    def utilization(self) -> float:
        """Fraction of buckets occupied (the quantity modelled in §III-B)."""
        return self.occupancy() / self.n_cells

    @property
    def memory_bits(self) -> int:
        """Buckets of (104-bit key, 32-bit counter [, 32-bit bytes])."""
        cell = FLOW_KEY_BITS + _COUNTER_BITS
        if self.track_bytes:
            cell += _COUNTER_BITS
        return self.n_cells * cell


class MultiHashTable(MainTable):
    """Single array probed by ``depth`` independent hash functions.

    Args:
        n_cells: number of buckets.
        depth: number of hash functions ``d`` (paper default 3).
        seed: hash family seed.
        meter: shared cost meter.
    """

    def __init__(
        self,
        n_cells: int,
        depth: int = DEFAULT_DEPTH,
        seed: int = 0,
        meter: CostMeter | None = None,
        track_bytes: bool = False,
    ):
        super().__init__(meter, track_bytes)
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self._n = n_cells
        self.depth = depth
        self._hashes = HashFamily(depth, master_seed=seed)
        # Seeds prebound for the hot path: `mix128(key, seed) % n` inline
        # skips the HashFunction.bucket call per probe stage.
        self._seeds = [h.seed for h in self._hashes]
        self._keys = [_EMPTY] * n_cells
        self._counts = [0] * n_cells
        self._bytes = [0] * n_cells if track_bytes else None

    def probe(self, key: int, size: int = 0) -> tuple[int, int, object]:
        meter = self.meter
        n = self._n
        keys = self._keys
        counts = self._counts
        mix = mix128
        min_count = -1
        pos = -1
        for seed in self._seeds:
            idx = mix(key, seed) % n
            meter.hashes += 1
            meter.reads += 1
            count = counts[idx]
            if count == 0:
                keys[idx] = key
                counts[idx] = 1
                if self._bytes is not None:
                    self._bytes[idx] = size
                meter.writes += 1
                return ABSORBED, 0, None
            if keys[idx] == key:
                counts[idx] = count + 1
                if self._bytes is not None:
                    self._bytes[idx] += size
                meter.writes += 1
                return ABSORBED, 0, None
            if min_count < 0 or count < min_count:
                min_count = count
                pos = idx
        return MISSED, min_count, pos

    def bucket_rows(self, batch) -> list[list[int]]:
        return self._hashes.bucket_matrix(batch, self._n).tolist()

    def stage_views(self, rows: list[list[int]]) -> list[tuple]:
        # Every probe stage addresses the same flat arrays.
        return [(row, self._keys, self._counts) for row in rows]

    def stage_byte_views(self) -> list[list[int]] | None:
        if self._bytes is None:
            return None
        return [self._bytes] * self.depth

    def promote(self, sentinel: object, key: int, count: int, size: int = 0) -> None:
        idx = sentinel
        self._keys[idx] = key
        self._counts[idx] = count
        if self._bytes is not None:
            self._bytes[idx] = size
        self.meter.writes += 1

    def byte_records(self) -> dict[int, int]:
        if self._bytes is None:
            return super().byte_records()
        return {
            k: b
            for k, c, b in zip(self._keys, self._counts, self._bytes)
            if c > 0
        }

    def byte_query(self, key: int) -> int | None:
        if self._bytes is None:
            return super().byte_query(key)
        n = self._n
        for h in self._hashes:
            idx = h.bucket(key, n)
            if self._counts[idx] and self._keys[idx] == key:
                return self._bytes[idx]
        return None

    def query(self, key: int) -> int:
        n = self._n
        for h in self._hashes:
            idx = h.bucket(key, n)
            if self._counts[idx] and self._keys[idx] == key:
                return self._counts[idx]
        return 0

    def query_batch(self, batch: KeyBatch) -> np.ndarray:
        # All probe stages address the same flat arrays, so the stored
        # keys' low halves and the counts are converted exactly once.
        rows = self._hashes.bucket_matrix(batch, self._n)
        table_lo = low_halves(self._keys)
        counts_arr = np.fromiter(self._counts, np.int64, count=self._n)
        return _query_batch_stages(
            batch,
            ((row, self._keys, self._counts, table_lo, counts_arr) for row in rows),
        )

    def records(self) -> dict[int, int]:
        return {k: c for k, c in zip(self._keys, self._counts) if c > 0}

    def occupancy(self) -> int:
        return sum(1 for c in self._counts if c > 0)

    def remove(self, key: int) -> bool:
        n = self._n
        for h in self._hashes:
            idx = h.bucket(key, n)
            if self._counts[idx] and self._keys[idx] == key:
                self._keys[idx] = _EMPTY
                self._counts[idx] = 0
                return True
        return False

    def reset(self) -> None:
        self._keys = [_EMPTY] * self._n
        self._counts = [0] * self._n
        if self._bytes is not None:
            self._bytes = [0] * self._n

    @property
    def n_cells(self) -> int:
        return self._n


def pipeline_sizes(n_cells: int, depth: int, alpha: float) -> list[int]:
    """Split ``n_cells`` into ``depth`` geometrically decaying sub-tables.

    ``n_k = α^{k-1} · n_1`` with ``n_1 = n · (1-α)/(1-α^d)`` (paper
    Section III-B).  Sizes are rounded to integers (each at least 1) and
    the first table absorbs the rounding drift so the total is exact.
    """
    if n_cells < depth:
        raise ValueError(f"need at least {depth} cells for depth {depth}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    first = n_cells * (1 - alpha) / (1 - alpha**depth)
    sizes = [max(1, round(first * alpha**k)) for k in range(depth)]
    sizes[0] += n_cells - sum(sizes)
    if sizes[0] < 1:
        raise ValueError(
            f"cannot build {depth} pipelined tables with alpha={alpha} "
            f"from {n_cells} cells"
        )
    return sizes


class PipelinedTables(MainTable):
    """``depth`` sub-tables with geometric sizes and per-table hashes.

    Args:
        n_cells: total buckets across all sub-tables.
        depth: number of sub-tables ``d`` (paper default 3).
        alpha: pipeline weight ``α`` (paper default 0.7).
        seed: hash family seed.
        meter: shared cost meter.
    """

    def __init__(
        self,
        n_cells: int,
        depth: int = DEFAULT_DEPTH,
        alpha: float = DEFAULT_ALPHA,
        seed: int = 0,
        meter: CostMeter | None = None,
        track_bytes: bool = False,
    ):
        super().__init__(meter, track_bytes)
        self.depth = depth
        self.alpha = alpha
        self.sizes = pipeline_sizes(n_cells, depth, alpha)
        self._n = n_cells
        self._hashes = HashFamily(depth, master_seed=seed)
        # (seed, size) pairs prebound for the hot path, as in
        # MultiHashTable.probe.
        self._seeds = [h.seed for h in self._hashes]
        self._keys = [[_EMPTY] * size for size in self.sizes]
        self._counts = [[0] * size for size in self.sizes]
        self._bytes = (
            [[0] * size for size in self.sizes] if track_bytes else None
        )
        self._stages = list(
            zip(self._seeds, self.sizes, self._keys, self._counts)
        )

    def probe(self, key: int, size: int = 0) -> tuple[int, int, object]:
        meter = self.meter
        mix = mix128
        min_count = -1
        sentinel: tuple[int, int] | None = None
        for s, (seed, table_size, keys, counts) in enumerate(self._stages):
            idx = mix(key, seed) % table_size
            meter.hashes += 1
            meter.reads += 1
            count = counts[idx]
            if count == 0:
                keys[idx] = key
                counts[idx] = 1
                if self._bytes is not None:
                    self._bytes[s][idx] = size
                meter.writes += 1
                return ABSORBED, 0, None
            if keys[idx] == key:
                counts[idx] = count + 1
                if self._bytes is not None:
                    self._bytes[s][idx] += size
                meter.writes += 1
                return ABSORBED, 0, None
            if min_count < 0 or count < min_count:
                min_count = count
                sentinel = (s, idx)
        return MISSED, min_count, sentinel

    def bucket_rows(self, batch) -> list[list[int]]:
        return self._hashes.bucket_matrix(batch, self.sizes).tolist()

    def stage_views(self, rows: list[list[int]]) -> list[tuple]:
        return list(zip(rows, self._keys, self._counts))

    def stage_byte_views(self) -> list[list[int]] | None:
        if self._bytes is None:
            return None
        return list(self._bytes)

    def promote(self, sentinel: object, key: int, count: int, size: int = 0) -> None:
        s, idx = sentinel
        self._keys[s][idx] = key
        self._counts[s][idx] = count
        if self._bytes is not None:
            self._bytes[s][idx] = size
        self.meter.writes += 1

    def byte_records(self) -> dict[int, int]:
        if self._bytes is None:
            return super().byte_records()
        result: dict[int, int] = {}
        for keys, counts, byte_counts in zip(self._keys, self._counts, self._bytes):
            for k, c, b in zip(keys, counts, byte_counts):
                if c > 0:
                    result[k] = b
        return result

    def byte_query(self, key: int) -> int | None:
        if self._bytes is None:
            return super().byte_query(key)
        for s, (h, size) in enumerate(zip(self._hashes, self.sizes)):
            idx = h.bucket(key, size)
            if self._counts[s][idx] and self._keys[s][idx] == key:
                return self._bytes[s][idx]
        return None

    def query(self, key: int) -> int:
        for s, (h, size) in enumerate(zip(self._hashes, self.sizes)):
            idx = h.bucket(key, size)
            if self._counts[s][idx] and self._keys[s][idx] == key:
                return self._counts[s][idx]
        return 0

    def query_batch(self, batch: KeyBatch) -> np.ndarray:
        rows = self._hashes.bucket_matrix(batch, self.sizes)
        return _query_batch_stages(
            batch,
            (
                (
                    row,
                    keys,
                    counts,
                    low_halves(keys),
                    np.fromiter(counts, np.int64, count=len(counts)),
                )
                for row, keys, counts in zip(rows, self._keys, self._counts)
            ),
        )

    def records(self) -> dict[int, int]:
        result: dict[int, int] = {}
        for keys, counts in zip(self._keys, self._counts):
            for k, c in zip(keys, counts):
                if c > 0:
                    result[k] = c
        return result

    def occupancy(self) -> int:
        return sum(
            sum(1 for c in counts if c > 0) for counts in self._counts
        )

    def per_table_utilization(self) -> list[float]:
        """Occupancy fraction of each sub-table (compare with Eq. 4)."""
        return [
            sum(1 for c in counts if c > 0) / size
            for counts, size in zip(self._counts, self.sizes)
        ]

    def remove(self, key: int) -> bool:
        for s, (h, size) in enumerate(zip(self._hashes, self.sizes)):
            idx = h.bucket(key, size)
            if self._counts[s][idx] and self._keys[s][idx] == key:
                self._keys[s][idx] = _EMPTY
                self._counts[s][idx] = 0
                return True
        return False

    def reset(self) -> None:
        self._keys = [[_EMPTY] * size for size in self.sizes]
        self._counts = [[0] * size for size in self.sizes]
        if self._bytes is not None:
            self._bytes = [[0] * size for size in self.sizes]
        self._stages = list(
            zip(self._seeds, self.sizes, self._keys, self._counts)
        )

    @property
    def n_cells(self) -> int:
        return self._n
