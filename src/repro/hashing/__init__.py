"""Hashing substrate: seeded mixers, hash families, digests, tabulation.

This package provides the independent uniform hash functions that every
measurement algorithm in :mod:`repro` is built on, replacing the CRC
units a P4 switch would use.
"""

from repro.hashing.digest import DEFAULT_DIGEST_BITS, DigestFunction
from repro.hashing.families import HashFamily, HashFunction
from repro.hashing.mixers import MASK64, derive_seeds, mix128, murmur64, splitmix64
from repro.hashing.tabulation import TabulationFamily, TabulationHash

__all__ = [
    "MASK64",
    "DEFAULT_DIGEST_BITS",
    "DigestFunction",
    "HashFamily",
    "HashFunction",
    "TabulationFamily",
    "TabulationHash",
    "derive_seeds",
    "mix128",
    "murmur64",
    "splitmix64",
]
