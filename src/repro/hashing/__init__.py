"""Hashing substrate: seeded mixers, hash families, digests, tabulation.

This package provides the independent uniform hash functions that every
measurement algorithm in :mod:`repro` is built on, replacing the CRC
units a P4 switch would use.
"""

from repro.hashing.digest import DEFAULT_DIGEST_BITS, DigestFunction
from repro.hashing.families import HashFamily, HashFunction
from repro.hashing.mixers import (
    MASK64,
    derive_seeds,
    mix128,
    mix128_batch,
    murmur64,
    murmur64_batch,
    split_keys,
    splitmix64,
    splitmix64_batch,
)
from repro.hashing.tabulation import TabulationFamily, TabulationHash

__all__ = [
    "MASK64",
    "DEFAULT_DIGEST_BITS",
    "DigestFunction",
    "HashFamily",
    "HashFunction",
    "TabulationFamily",
    "TabulationHash",
    "derive_seeds",
    "mix128",
    "mix128_batch",
    "murmur64",
    "murmur64_batch",
    "split_keys",
    "splitmix64",
    "splitmix64_batch",
]
