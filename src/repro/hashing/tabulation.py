"""Tabulation hashing: a 3-independent hash family.

Provided as an alternative backend to the multiplicative mixers in
:mod:`repro.hashing.mixers`.  Simple tabulation hashing (Zobrist 1970;
analyzed by Patrascu & Thorup 2012) splits the key into 8-bit characters
and XORs per-character random tables.  It gives strong theoretical
guarantees (3-independence, Chernoff-style concentration for linear
probing and cuckoo hashing) which make it a good reference when testing
the occupancy model of Section III-B against an "idealized" hash.
"""

from __future__ import annotations

import random

MASK64 = 0xFFFFFFFFFFFFFFFF


class TabulationHash:
    """Simple tabulation hash over fixed-width integer keys.

    Args:
        key_bits: width of the keys to be hashed (rounded up to a whole
            number of 8-bit characters).  HashFlow keys are 104 bits.
        seed: seed for the table contents.
    """

    __slots__ = ("key_bits", "n_chars", "_tables")

    def __init__(self, key_bits: int = 104, seed: int = 0):
        if key_bits <= 0:
            raise ValueError(f"key_bits must be positive, got {key_bits}")
        self.key_bits = key_bits
        self.n_chars = (key_bits + 7) // 8
        rng = random.Random(seed)
        self._tables = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(self.n_chars)
        ]

    def __call__(self, key: int) -> int:
        """Hash ``key`` to a 64-bit value by XORing per-character tables."""
        h = 0
        for table in self._tables:
            h ^= table[key & 0xFF]
            key >>= 8
        return h & MASK64

    def bucket(self, key: int, n: int) -> int:
        """Map ``key`` to a bucket index in ``[0, n)``."""
        return self(key) % n


class TabulationFamily:
    """A family of independent :class:`TabulationHash` functions."""

    def __init__(self, size: int, key_bits: int = 104, master_seed: int = 0):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._functions = [
            TabulationHash(key_bits=key_bits, seed=(master_seed << 20) + i)
            for i in range(size)
        ]

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, i: int) -> TabulationHash:
        return self._functions[i]

    def __iter__(self):
        return iter(self._functions)
