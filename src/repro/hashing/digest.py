"""Short flow-ID digests for the HashFlow ancillary table.

Paper, Algorithm 1 line 15: ``digest <- h1(flowID) % 2**digest_width``.
The ancillary table stores this digest instead of the 104-bit flow ID to
save memory (8 bits by default, Section IV-A).  Distinct flows may share
a digest ("this may mix flows up, but with a small chance"): with w-bit
digests two random flows collide with probability 2**-w.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import HashFunction

DEFAULT_DIGEST_BITS = 8


class DigestFunction:
    """Derives a ``bits``-wide digest of a flow key from a base hash.

    Args:
        base: the hash function whose output is truncated (the paper uses
            ``h1``, i.e. the first main-table hash).
        bits: digest width in bits; must be in ``[1, 64]``.
    """

    __slots__ = ("base", "bits", "_mask")

    def __init__(self, base: HashFunction, bits: int = DEFAULT_DIGEST_BITS):
        if not 1 <= bits <= 64:
            raise ValueError(f"digest bits must be in [1, 64], got {bits}")
        self.base = base
        self.bits = bits
        self._mask = (1 << bits) - 1

    def __call__(self, key: int) -> int:
        """Return the digest of ``key``: ``base(key) mod 2**bits``."""
        return self.base(key) & self._mask

    def values_batch(self, keys):
        """Digests for a whole key batch (``np.uint64`` array).

        Bit-identical to calling the digest on each key; used by the
        batch-update engine to precompute ancillary-table digests.
        """
        return self.base.values_batch(keys) & np.uint64(self._mask)

    def collision_probability(self) -> float:
        """Probability that two distinct random flows share a digest."""
        return 1.0 / (1 << self.bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DigestFunction(bits={self.bits})"
