"""Integer mixing primitives used to build independent hash functions.

The measurement algorithms in this package (HashFlow, HashPipe,
ElasticSketch, FlowRadar, ...) only require families of *independent,
uniform* hash functions over flow identifiers.  On P4 hardware these are
CRC polynomials with different seeds; here we use well-studied 64-bit
finalizers (splitmix64 and the murmur3 variant) applied to the key XORed
and multiplied with per-function seed material.  They are deterministic,
seedable, fast in pure Python, and pass the avalanche sanity checks in
``tests/test_hashing_mixers.py``.

All arithmetic is performed modulo 2**64, mirroring unsigned 64-bit
integer behaviour.

Each mixer has a ``*_batch`` twin operating on ``np.uint64`` arrays.
The batch variants are bit-identical to the scalar ones (numpy's
fixed-width integer arithmetic wraps modulo 2**64 exactly like the
masked Python-int arithmetic here) and amortize the per-call Python
overhead across a whole packet chunk — they are the substrate of the
batch-update engine used by the collector hot paths.
"""

from __future__ import annotations

import numpy as np

MASK64 = 0xFFFFFFFFFFFFFFFF

# Multiplicative constants from splitmix64 (Steele, Lea, Flood 2014).
_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_M1 = 0xBF58476D1CE4E5B9
_SM64_M2 = 0x94D049BB133111EB

# Constants from the murmur3 64-bit finalizer.
_MM3_M1 = 0xFF51AFD7ED558CCD
_MM3_M2 = 0xC4CEB9FE1A85EC53

# The same constants as np.uint64, prebuilt so the batch mixers do no
# per-call conversions.
_U64_GAMMA = np.uint64(_SM64_GAMMA)
_U64_SM_M1 = np.uint64(_SM64_M1)
_U64_SM_M2 = np.uint64(_SM64_M2)
_U64_MM_M1 = np.uint64(_MM3_M1)
_U64_MM_M2 = np.uint64(_MM3_M2)
_U64_ZERO = np.uint64(0)
_SHIFT_27 = np.uint64(27)
_SHIFT_30 = np.uint64(30)
_SHIFT_31 = np.uint64(31)
_SHIFT_33 = np.uint64(33)


def splitmix64(x: int) -> int:
    """Finalize ``x`` with the splitmix64 mixing function.

    This is a bijection on 64-bit integers with full avalanche: flipping
    any input bit flips each output bit with probability ~1/2.

    Args:
        x: arbitrary (possibly >64-bit) non-negative integer; only the low
           64 bits participate after the initial masking.

    Returns:
        A uniformly mixed 64-bit integer.
    """
    x = (x + _SM64_GAMMA) & MASK64
    x = ((x ^ (x >> 30)) * _SM64_M1) & MASK64
    x = ((x ^ (x >> 27)) * _SM64_M2) & MASK64
    return x ^ (x >> 31)


def murmur64(x: int) -> int:
    """Finalize ``x`` with the murmur3 64-bit finalizer (fmix64).

    Args:
        x: non-negative integer; masked to 64 bits.

    Returns:
        A uniformly mixed 64-bit integer.
    """
    x &= MASK64
    x = ((x ^ (x >> 33)) * _MM3_M1) & MASK64
    x = ((x ^ (x >> 33)) * _MM3_M2) & MASK64
    return x ^ (x >> 33)


def mix128(key: int, seed: int) -> int:
    """Mix a key of up to 128 bits with a 64-bit seed into 64 bits.

    Flow identifiers in this package are 104-bit packed 5-tuples, which do
    not fit a single 64-bit word.  We fold the high bits in with an odd
    multiplier before the final avalanche so that every input bit of the
    key influences the result.

    Args:
        key: non-negative integer, up to 128 bits.
        seed: per-hash-function seed material.

    Returns:
        A 64-bit mixed value; for a fixed seed the map ``key -> value``
        behaves like an independent uniform hash function.
    """
    lo = key & MASK64
    hi = (key >> 64) & MASK64
    h = splitmix64(lo ^ seed)
    if hi:
        h = splitmix64(h ^ (hi * _SM64_GAMMA & MASK64))
    return h


def splitmix64_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``np.uint64`` array.

    Bit-identical to the scalar mixer: for every element,
    ``splitmix64_batch(a)[i] == splitmix64(int(a[i]))``.

    Args:
        x: array of 64-bit values (coerced to ``np.uint64``).

    Returns:
        New ``np.uint64`` array of mixed values.
    """
    x = np.asarray(x, dtype=np.uint64)
    x = x + _U64_GAMMA
    x = (x ^ (x >> _SHIFT_30)) * _U64_SM_M1
    x = (x ^ (x >> _SHIFT_27)) * _U64_SM_M2
    return x ^ (x >> _SHIFT_31)


def murmur64_batch(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`murmur64` over a ``np.uint64`` array."""
    x = np.asarray(x, dtype=np.uint64)
    x = (x ^ (x >> _SHIFT_33)) * _U64_MM_M1
    x = (x ^ (x >> _SHIFT_33)) * _U64_MM_M2
    return x ^ (x >> _SHIFT_33)


def mix128_batch(lo: np.ndarray, hi: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized :func:`mix128` over keys split into 64-bit halves.

    Bit-identical to the scalar mixer, including the conditional
    high-half fold: elements with ``hi == 0`` take exactly the scalar
    single-round path.

    Args:
        lo: low 64 bits of every key (``np.uint64`` array).
        hi: high bits (bit 64 and up) of every key (``np.uint64`` array).
        seed: per-hash-function seed material.

    Returns:
        ``np.uint64`` array of 64-bit mixed values.
    """
    lo = np.asarray(lo, dtype=np.uint64)
    hi = np.asarray(hi, dtype=np.uint64)
    h = splitmix64_batch(lo ^ np.uint64(seed & MASK64))
    nonzero = hi != _U64_ZERO
    if nonzero.any():
        folded = splitmix64_batch(h ^ (hi * _U64_GAMMA))
        h = np.where(nonzero, folded, h)
    return h


def split_keys(keys) -> tuple[np.ndarray, np.ndarray]:
    """Split up-to-128-bit Python-int keys into ``np.uint64`` half arrays.

    Accepts any object exposing ``halves()`` (e.g. a
    :class:`~repro.flow.batch.KeyBatch`, whose precomputed halves are
    reused), otherwise builds the arrays from the int sequence.

    Returns:
        ``(lo, hi)`` arrays suitable for :func:`mix128_batch`.
    """
    halves = getattr(keys, "halves", None)
    if halves is not None:
        return halves()
    if not isinstance(keys, (list, tuple)):
        keys = list(keys)
    n = len(keys)
    lo = np.fromiter((k & MASK64 for k in keys), np.uint64, count=n)
    hi = np.fromiter((k >> 64 for k in keys), np.uint64, count=n)
    return lo, hi


def low_halves(keys) -> np.ndarray:
    """Low 64 bits of every key as a ``np.uint64`` array.

    The batch-query engine compares *stored* table keys against a query
    batch's precomputed ``lo`` halves as a vectorized prefilter (two
    distinct keys rarely share their low 64 bits); only the surviving
    candidates pay for an exact Python-int comparison.  Unlike
    :func:`split_keys` this never builds the high-half array, since
    table-side keys are only needed for that prefilter.

    Args:
        keys: sequence of non-negative Python ints (up to 128 bits).

    Returns:
        ``np.uint64`` array with ``keys[i] & MASK64`` at position ``i``.
    """
    return np.fromiter((k & MASK64 for k in keys), np.uint64, count=len(keys))


def derive_seeds(master_seed: int, count: int) -> list[int]:
    """Derive ``count`` well-separated 64-bit seeds from one master seed.

    Seeds are produced by iterating splitmix64, the construction the
    original splitmix64 paper recommends for seeding parallel generators.

    Args:
        master_seed: any non-negative integer.
        count: number of seeds to derive; must be >= 0.

    Returns:
        List of ``count`` distinct 64-bit seeds (distinct for any
        reasonable count because splitmix64 is a bijection on a
        2**64-period sequence).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = []
    state = master_seed & MASK64
    for _ in range(count):
        state = (state + _SM64_GAMMA) & MASK64
        seeds.append(splitmix64(state))
    return seeds
