"""Seeded families of independent hash functions.

A :class:`HashFamily` plays the role of the ``d + 1`` independent hash
functions ``h_1 ... h_d, g_1`` in the HashFlow paper (Section III-A), and
of the hash function sets used by HashPipe, ElasticSketch and FlowRadar.
Each member maps an integer flow key to either a raw 64-bit value or a
bucket index in a caller-supplied range.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.hashing.mixers import (
    MASK64,
    derive_seeds,
    mix128,
    mix128_batch,
    split_keys,
)


class HashFunction:
    """A single seeded hash function over integer keys.

    Instances are callables returning a 64-bit value; :meth:`bucket`
    reduces the value to a table index.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = seed & MASK64

    def __call__(self, key: int) -> int:
        return mix128(key, self.seed)

    def bucket(self, key: int, n: int) -> int:
        """Map ``key`` to a bucket index in ``[0, n)``."""
        return mix128(key, self.seed) % n

    def values_batch(self, keys) -> np.ndarray:
        """Raw 64-bit hash values for a whole key batch.

        Args:
            keys: a :class:`~repro.flow.batch.KeyBatch` or sequence of
                Python-int keys.

        Returns:
            ``np.uint64`` array, bit-identical to calling the scalar
            function on each key.
        """
        lo, hi = split_keys(keys)
        return mix128_batch(lo, hi, self.seed)

    def buckets_batch(self, keys, n: int) -> np.ndarray:
        """Bucket indices in ``[0, n)`` for a whole key batch.

        Bit-identical to :meth:`bucket` applied per key.
        """
        return self.values_batch(keys) % np.uint64(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFunction(seed={self.seed:#018x})"


class HashFamily(Sequence):
    """An indexed family of independent :class:`HashFunction` objects.

    Args:
        size: number of member functions.
        master_seed: seed from which member seeds are derived; two
            families built with the same ``(size, master_seed)`` are
            identical, and families with different master seeds are
            effectively independent.

    The family supports ``len()``, indexing and iteration, so algorithm
    code can write ``for h in family: idx = h.bucket(key, n)``.
    """

    def __init__(self, size: int, master_seed: int = 0):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.master_seed = master_seed
        self._functions = [HashFunction(s) for s in derive_seeds(master_seed, size)]

    def __len__(self) -> int:
        return len(self._functions)

    def __getitem__(self, i: int) -> HashFunction:
        return self._functions[i]

    def values(self, key: int) -> list[int]:
        """Return the raw 64-bit hash values of all members for ``key``."""
        return [h(key) for h in self._functions]

    def buckets(self, key: int, n: int) -> list[int]:
        """Return the bucket indices of all members for ``key`` in ``[0, n)``."""
        return [h.bucket(key, n) for h in self._functions]

    def bucket_matrix(self, keys, n) -> np.ndarray:
        """Bucket indices of all members for a whole key batch.

        The 64-bit halves of the batch are split once and reused for
        every member function, so a ``d``-member family costs ``d``
        vectorized mixing passes over the batch.

        Args:
            keys: a :class:`~repro.flow.batch.KeyBatch` or sequence of
                Python-int keys (N keys).
            n: common bucket count, or a per-function sequence of bucket
                counts (e.g. pipelined sub-table sizes), length ``d``.

        Returns:
            ``(d, N)`` ``np.uint64`` matrix; row ``i`` equals
            ``[self[i].bucket(k, n_i) for k in keys]``.
        """
        lo, hi = split_keys(keys)
        d = len(self._functions)
        sizes = [n] * d if isinstance(n, int) else list(n)
        if len(sizes) != d:
            raise ValueError(f"expected {d} bucket counts, got {len(sizes)}")
        if not d:
            return np.empty((0, len(lo)), dtype=np.uint64)
        return np.stack(
            [
                mix128_batch(lo, hi, h.seed) % np.uint64(size)
                for h, size in zip(self._functions, sizes)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(size={len(self)}, master_seed={self.master_seed:#x})"
