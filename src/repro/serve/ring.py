"""Lock-minimal shared-memory packet rings (DESIGN §10).

One :class:`PacketRing` is the single-producer / single-consumer
conduit between the serve daemon's listener process and one worker
process.  Everything lives in one named segment from
:mod:`repro.shm.segments` (so the registry's atexit + resource-tracker
guards cover crash cleanup for free):

* a small ``int64`` header plane — capacity, the producer's *head*
  (packets ever published), the consumer's *tail* (packets ever
  consumed), a drop counter, and a stop flag;
* four payload planes of ``capacity`` slots each — key halves
  (``uint64`` lo/hi), per-packet byte sizes (``int64``), and
  timestamps (``float64``).

Counters are monotonic; a slot index is ``counter & (capacity - 1)``
(capacity is a power of two), so full/empty are just ``head - tail``.
The seqlock-style discipline is *payload before publish*: the producer
writes every payload slot, then stores the new head; the consumer
reads the head, copies the payload **out**, then stores the new tail.
Each 8-byte counter is written by exactly one side and aligned, so
loads/stores are single machine words; the publish ordering relies on
total-store-order (x86) or the interpreter's sequencing of the
separate buffer writes — the same assumption the shard-ingest planes
make.  Neither side ever takes a lock in the data path; the only
blocking is the *caller's* back-pressure policy looping on
:meth:`try_push`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.shm.segments import (
    Segment,
    attach_segment,
    carve,
    create_segment,
    layout_bytes,
)

#: Default ring capacity in packet slots (power of two).
DEFAULT_RING_SLOTS = 65_536

#: Header int64 slots: capacity, head, tail, drops, stop, reserved.
_HEADER_SLOTS = 8
_CAPACITY, _HEAD, _TAIL, _DROPS, _STOP = range(5)


def _layout(capacity: int):
    return [
        (_HEADER_SLOTS, np.dtype(np.int64)),
        (capacity, np.dtype(np.uint64)),   # key low halves
        (capacity, np.dtype(np.uint64)),   # key high halves
        (capacity, np.dtype(np.int64)),    # per-packet byte sizes
        (capacity, np.dtype(np.float64)),  # per-packet timestamps
    ]


class PacketRing:
    """One SPSC packet ring over a named shared segment.

    Build with :meth:`create` (producer side, owns the segment) or
    :meth:`attach` (consumer side, by name).  The object itself is
    role-agnostic — discipline (one pusher, one popper) is the
    caller's contract.
    """

    __slots__ = ("segment", "capacity", "_header", "_lo", "_hi", "_sizes", "_ts")

    def __init__(self, segment: Segment):
        header = carve(segment, [(_HEADER_SLOTS, np.dtype(np.int64))])[0]
        capacity = int(header[_CAPACITY])
        self.segment = segment
        self.capacity = capacity
        self._header, self._lo, self._hi, self._sizes, self._ts = carve(
            segment, _layout(capacity)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, slots: int = DEFAULT_RING_SLOTS, label: str = "ring") -> "PacketRing":
        """Create an owned ring of ``slots`` packet slots (power of 2)."""
        slots = int(slots)
        if slots < 2 or slots & (slots - 1):
            raise ValueError(
                f"ring slots must be a power of two >= 2, got {slots}"
            )
        segment = create_segment(layout_bytes(_layout(slots)), label=label)
        header = carve(segment, [(_HEADER_SLOTS, np.dtype(np.int64))])[0]
        header[:] = 0
        header[_CAPACITY] = slots
        return cls(segment)

    @classmethod
    def attach(cls, name: str) -> "PacketRing":
        """Attach to an existing ring by segment name (consumer side)."""
        return cls(attach_segment(name))

    @property
    def name(self) -> str:
        return self.segment.name

    def unlink(self) -> None:
        """Remove the segment name (owner side; mappings stay valid)."""
        self.segment.unlink()

    # ------------------------------------------------------------------
    # Introspection (either side)
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Packets currently published but not yet consumed."""
        return int(self._header[_HEAD] - self._header[_TAIL])

    @property
    def consumed(self) -> int:
        """Packets ever consumed (the monotonic tail counter).

        Supervision derives a dead worker incarnation's exact *fed*
        count from tail deltas — the tail only moves after a payload
        is copied out, so everything before it reached the feeder.
        """
        return int(self._header[_TAIL])

    @property
    def drops(self) -> int:
        """Packets dropped at the ring door (back-pressure ``drop``)."""
        return int(self._header[_DROPS])

    def add_drops(self, n: int) -> None:
        """Count ``n`` packets dropped by the producer (producer only)."""
        self._header[_DROPS] += int(n)

    def request_stop(self) -> None:
        """Raise the stop flag: consume what remains, then exit."""
        self._header[_STOP] = 1

    def stopped(self) -> bool:
        return bool(self._header[_STOP])

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def try_push(self, lo, hi, sizes, timestamps, start: int = 0) -> int:
        """Publish as many packets from ``start`` on as fit right now.

        Payload slots are written before the head moves, so the
        consumer never observes a published-but-unwritten packet.

        Returns:
            Packets accepted (0 when the ring is full) — the caller
            loops (``block``) or counts drops (``drop``) on the rest.
        """
        head = int(self._header[_HEAD])
        free = self.capacity - (head - int(self._header[_TAIL]))
        take = min(free, len(lo) - start)
        if take <= 0:
            return 0
        index = head & (self.capacity - 1)
        first = min(take, self.capacity - index)
        stop = start + first
        self._lo[index : index + first] = lo[start:stop]
        self._hi[index : index + first] = hi[start:stop]
        self._sizes[index : index + first] = sizes[start:stop]
        self._ts[index : index + first] = timestamps[start:stop]
        if take > first:  # wraparound: the rest lands at slot 0
            rest = take - first
            self._lo[:rest] = lo[stop : stop + rest]
            self._hi[:rest] = hi[stop : stop + rest]
            self._sizes[:rest] = sizes[stop : stop + rest]
            self._ts[:rest] = timestamps[stop : stop + rest]
        self._header[_HEAD] = head + take
        return take

    def push(
        self,
        lo,
        hi,
        sizes,
        timestamps,
        poll_s: float = 0.0002,
        should_abort=None,
    ) -> int:
        """Blocking publish of a whole batch (back-pressure ``block``).

        Loops on :meth:`try_push` until everything is in, sleeping
        ``poll_s`` between full-ring attempts; ``should_abort()`` (e.g.
        "is the consumer still alive") breaks the loop early.

        Returns:
            Packets published (less than the batch only on abort).
        """
        n = len(lo)
        done = 0
        while done < n:
            done += self.try_push(lo, hi, sizes, timestamps, start=done)
            if done < n:
                if should_abort is not None and should_abort():
                    break
                time.sleep(poll_s)
        return done

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def pop(self, max_n: int):
        """Consume up to ``max_n`` published packets.

        The payload is **copied out** before the tail moves (the
        producer may overwrite the slots immediately after), so the
        returned arrays are private to the caller.

        Returns:
            ``(lo, hi, sizes, timestamps)`` arrays, or None when the
            ring is empty.
        """
        tail = int(self._header[_TAIL])
        available = int(self._header[_HEAD]) - tail
        take = min(available, int(max_n))
        if take <= 0:
            return None
        index = tail & (self.capacity - 1)
        first = min(take, self.capacity - index)
        if take > first:
            rest = take - first
            lo = np.concatenate([self._lo[index:], self._lo[:rest]])
            hi = np.concatenate([self._hi[index:], self._hi[:rest]])
            sizes = np.concatenate([self._sizes[index:], self._sizes[:rest]])
            ts = np.concatenate([self._ts[index:], self._ts[:rest]])
        else:
            lo = self._lo[index : index + take].copy()
            hi = self._hi[index : index + take].copy()
            sizes = self._sizes[index : index + take].copy()
            ts = self._ts[index : index + take].copy()
        self._header[_TAIL] = tail + take
        return lo, hi, sizes, ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PacketRing({self.name!r}, {self.capacity} slots, "
            f"{self.occupancy()} occupied)"
        )
