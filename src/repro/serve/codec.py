"""Vectorized NetFlow v5 ↔ packet-array codec for the live daemon.

The UDP listener's hot path cannot afford a Python object per record:
a datagram carries up to 30 records, and the daemon must turn each one
into the arrays the shared-memory rings speak — ``(lo, hi)`` 64-bit
key halves, per-packet byte sizes, per-packet timestamps.  This module
decodes a whole datagram's record payload in one numpy pass over a
big-endian structured view (no per-record ``struct.unpack``, no
``NetFlowV5Record`` objects, no Python-int keys), and encodes whole
traces the same way for the paced replayer.

Field mapping (the packed 104-bit key is
``src<<72 | dst<<40 | sport<<24 | dport<<8 | proto``, split into
``lo = key & 2^64-1`` and ``hi = key >> 64``)::

    lo = (dst & 0xFFFFFF) << 40 | sport << 24 | dport << 8 | proto
    hi = src << 8 | dst >> 24

Both directions are exact inverses of the scalar
:mod:`repro.export.netflow_v5` pack/parse (tested bit for bit), and
``first``/``last`` SysUptime milliseconds round-trip to seconds as
``ms / 1000.0``.
"""

from __future__ import annotations

import numpy as np

from repro.export.netflow_v5 import (
    MAX_RECORDS_PER_DATAGRAM,
    RECORD_BYTES,
    encode_header,
    split_datagram,
)

#: The 48-byte v5 record as a big-endian numpy structured dtype —
#: field-for-field the ``!IIIHHIIIIHHBBBBHHBBH`` struct layout.
RECORD_DTYPE = np.dtype(
    [
        ("src_ip", ">u4"),
        ("dst_ip", ">u4"),
        ("nexthop", ">u4"),
        ("input_if", ">u2"),
        ("output_if", ">u2"),
        ("packets", ">u4"),
        ("octets", ">u4"),
        ("first_ms", ">u4"),
        ("last_ms", ">u4"),
        ("src_port", ">u2"),
        ("dst_port", ">u2"),
        ("pad1", "u1"),
        ("tcp_flags", "u1"),
        ("proto", "u1"),
        ("tos", "u1"),
        ("src_as", ">u2"),
        ("dst_as", ">u2"),
        ("src_mask", "u1"),
        ("dst_mask", "u1"),
        ("pad2", ">u2"),
    ]
)
assert RECORD_DTYPE.itemsize == RECORD_BYTES


def decode_datagram(data: bytes):
    """One v5 datagram → per-packet ring arrays.

    Tolerant like :func:`repro.export.netflow_v5.parse_datagram_partial`:
    a non-v5 or header-short datagram yields None, a truncated trailing
    record is simply not decoded.  A record with ``dPkts > 1`` (an
    upstream exporter aggregating) is expanded back into ``dPkts``
    packets of ``dOctets // dPkts`` bytes each, all carrying the
    record's ``first_ms`` timestamp — so ring occupancy counts packets,
    not records.

    Returns:
        ``(lo, hi, sizes, timestamps)`` arrays (``uint64`` /
        ``uint64`` / ``int64`` / ``float64``), or None for a datagram
        that is not NetFlow v5.
    """
    split = split_datagram(data)
    if split is None:
        return None
    _, payload = split
    fields = np.frombuffer(payload, dtype=RECORD_DTYPE)
    src = fields["src_ip"].astype(np.uint64)
    dst = fields["dst_ip"].astype(np.uint64)
    lo = (
        ((dst & np.uint64(0xFFFFFF)) << np.uint64(40))
        | (fields["src_port"].astype(np.uint64) << np.uint64(24))
        | (fields["dst_port"].astype(np.uint64) << np.uint64(8))
        | fields["proto"].astype(np.uint64)
    )
    hi = (src << np.uint64(8)) | (dst >> np.uint64(24))
    packets = fields["packets"].astype(np.int64)
    octets = fields["octets"].astype(np.int64)
    timestamps = fields["first_ms"].astype(np.float64) / 1000.0
    if (packets > 1).any():
        # Expand aggregated records back into per-packet entries.
        counts = np.maximum(packets, 1)
        sizes = octets // counts
        lo = np.repeat(lo, counts)
        hi = np.repeat(hi, counts)
        sizes = np.repeat(sizes, counts)
        timestamps = np.repeat(timestamps, counts)
        return lo, hi, sizes, timestamps
    return lo, hi, octets, timestamps


def keys_from_halves(lo: np.ndarray, hi: np.ndarray) -> list[int]:
    """Rebuild Python-int packed keys from their 64-bit halves."""
    return [
        (h << 64) | l for l, h in zip(lo.tolist(), hi.tolist())
    ]


def encode_datagrams(
    lo: np.ndarray,
    hi: np.ndarray,
    sizes: np.ndarray,
    times_ms: np.ndarray,
    flow_sequence: int = 0,
    engine_id: int = 0,
) -> list[bytes]:
    """Per-packet arrays → v5 datagrams, one record per packet.

    The replayer's encoder: packet ``i`` becomes a record with
    ``dPkts = 1``, ``dOctets = sizes[i]`` and ``first = last =
    times_ms[i]``, preserving stream order; every 30 consecutive
    records share a datagram.  ``flow_sequence`` counts records across
    the whole call, as the protocol requires.

    Returns:
        Encoded datagrams in stream order.
    """
    n = len(lo)
    fields = np.zeros(n, dtype=RECORD_DTYPE)
    lo = np.asarray(lo, dtype=np.uint64)
    hi = np.asarray(hi, dtype=np.uint64)
    fields["src_ip"] = (hi >> np.uint64(8)).astype(np.uint32)
    fields["dst_ip"] = (
        ((hi & np.uint64(0xFF)) << np.uint64(24)) | (lo >> np.uint64(40))
    ).astype(np.uint32)
    fields["src_port"] = ((lo >> np.uint64(24)) & np.uint64(0xFFFF)).astype(
        np.uint16
    )
    fields["dst_port"] = ((lo >> np.uint64(8)) & np.uint64(0xFFFF)).astype(
        np.uint16
    )
    fields["proto"] = (lo & np.uint64(0xFF)).astype(np.uint8)
    fields["packets"] = 1
    fields["octets"] = np.asarray(sizes, dtype=np.int64).astype(np.uint32)
    ms = np.asarray(times_ms, dtype=np.int64).astype(np.uint32)
    fields["first_ms"] = ms
    fields["last_ms"] = ms
    body = fields.tobytes()
    datagrams = []
    for start in range(0, n, MAX_RECORDS_PER_DATAGRAM):
        count = min(MAX_RECORDS_PER_DATAGRAM, n - start)
        header = encode_header(
            count,
            sys_uptime_ms=int(ms[start + count - 1]) if count else 0,
            flow_sequence=flow_sequence,
            engine_id=engine_id,
        )
        datagrams.append(
            header
            + body[start * RECORD_BYTES : (start + count) * RECORD_BYTES]
        )
        flow_sequence += count
    return datagrams
