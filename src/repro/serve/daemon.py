"""The live collection daemon: UDP ingest → rings → workers → sinks.

:class:`ServeDaemon` runs a :class:`~repro.serve.spec.ServeSpec` as a
long-lived multi-process service:

* the **parent** owns the UDP socket and the sinks.  It decodes each
  NetFlow v5 datagram into packet arrays (:mod:`repro.serve.codec`),
  routes them to a worker (for several workers: by the sharded
  collector's own owner hash, so every flow key has exactly one home
  process), and pushes them into that worker's
  :class:`~repro.serve.ring.PacketRing` under the spec's back-pressure
  policy;
* each **worker** process pops batches from its ring and drives the
  exact offline loop — a :class:`~repro.stream.pipeline.StreamFeeder`
  over the spec's collector and rotation policy — sending every export
  back over a pipe for the parent to fan out to the sinks.

Determinism contract (tested): a daemon fed a finite trace as v5
datagrams exports *bit-identical* records to the offline
``Pipeline.run`` over the same spec — exactly, in order, for one
worker; as the same merged record set for several workers under
interval rotation (whose absolute window grid is worker-independent).

Lifecycle: ``run`` returns after ``duration`` seconds, or after
:meth:`ServeDaemon.request_stop` (the CLI wires SIGTERM/SIGINT to it).
Shutdown always drains: the socket stops, every ring gets its stop
flag, workers consume what remains, run their final rotation, and
report; only then are sinks closed and the rings unlinked.  Ring
segments come from :mod:`repro.shm.segments`, so even a ``kill -9``
leaves no ``/dev/shm`` litter behind.
"""

from __future__ import annotations

import errno as _errno
import multiprocessing as mp
import os
import select
import signal
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro import faults as _faults
from repro.faults import FaultPlan
from repro.flow.batch import KeyBatch
from repro.hashing.families import HashFunction
from repro.serve.codec import decode_datagram, keys_from_halves
from repro.serve.ring import PacketRing
from repro.serve.spec import ServeSpec
from repro.serve.supervisor import Supervisor
from repro.sketches.base import FlowCollector
from repro.specs import CollectorSpec, build as build_collector
from repro.stream.pipeline import StreamFeeder
from repro.stream.records import FlowRecord, merge_flow_records
from repro.stream.rotation import build_rotation
from repro.stream.sinks import build_sink
from repro.stream.spec import PipelineSpec

#: Receive-buffer request for the listen socket: the kernel-side slack
#: that absorbs ingest stalls under ``block`` back-pressure.
RECV_BUFFER_BYTES = 1 << 22

#: Datagrams drained from the socket per parent loop iteration before
#: pipe messages and stats get a turn.
_SOCKET_BURST = 512

#: Worker idle poll (seconds) while its ring is empty.
_IDLE_POLL_S = 0.0005

#: How long shutdown waits for workers to drain before giving up.
DRAIN_TIMEOUT_S = 60.0


def _mp_context():
    """Fork where available (cheap, inherits numpy); spawn elsewhere."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return mp.get_context("spawn")


class _HalfBatch:
    """Just enough of a KeyBatch for the vectorized owner hash:
    :func:`~repro.hashing.mixers.split_keys` only asks for halves."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def halves(self):
        return self.lo, self.hi


class _ShardSubset(FlowCollector):
    """A worker's slice of a sharded collector: only its owned shards.

    Worker ``w`` of ``W`` builds shard ``s`` iff ``s % W == w``, with
    the same derived seed the full :class:`~repro.netwide.sharding.
    ShardedCollector` would use (``spec.reseed(s)``) — so the union of
    every worker's records is bit-identical to one process running the
    full collector, at ``1/W`` of the table memory per process.  The
    parent only routes a worker packets whose owner shard it holds.
    """

    name = "ShardSubset"

    def __init__(self, params: Mapping[str, Any], worker: int, workers: int):
        super().__init__()
        shard_spec = CollectorSpec.from_dict(params["collector"])
        self.n_shards = int(params["n_shards"])
        self.seed = int(params.get("seed", 0))
        self._shard_hash = HashFunction(self.seed ^ 0x5AAD)
        self.shards = {
            s: build_collector(shard_spec.reseed(s))
            for s in range(self.n_shards)
            if s % workers == worker
        }

    def shard_of(self, key: int) -> int:
        return self._shard_hash.bucket(key, self.n_shards)

    def process(self, key: int) -> None:
        self.meter.packets += 1
        self.meter.hashes += 1
        self.shards[self.shard_of(key)].process(key)

    def process_batch(self, keys) -> None:
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if not n:
            return
        owners = self._shard_hash.buckets_batch(batch, self.n_shards)
        self.meter.add(packets=n, hashes=n)
        lo, hi = batch.halves()
        sizes = batch.sizes
        keys_list = batch.keys
        for s, shard in self.shards.items():
            members = np.nonzero(owners == np.uint64(s))[0]
            if not len(members):
                continue
            sub = KeyBatch(
                [keys_list[i] for i in members.tolist()],
                lo[members],
                hi[members],
                None if sizes is None else sizes[members],
            )
            shard.process_batch(sub)

    def records(self) -> dict[int, int]:
        merged: dict[int, int] = {}
        for shard in self.shards.values():
            merged.update(shard.records())
        return merged

    def query(self, key: int) -> int:
        shard = self.shards.get(self.shard_of(key))
        return 0 if shard is None else shard.query(key)

    def evict(self, key: int) -> None:
        shard = self.shards.get(self.shard_of(key))
        if shard is not None:
            shard.evict(key)

    def shard_loads(self) -> dict[int, int]:
        """Packets processed per owned shard (stats-line currency)."""
        return {s: shard.meter.packets for s, shard in self.shards.items()}

    def reset(self) -> None:
        for shard in self.shards.values():
            shard.reset()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        return sum(shard.memory_bits for shard in self.shards.values())


def _worker_meters(feeder: StreamFeeder, collector) -> dict[str, Any]:
    """One worker's stats snapshot, JSON-native."""
    meters = {
        "packets": feeder.packets,
        "exported": feeder.exported,
        "rotations": feeder.rotations,
        "hashes": collector.meter.hashes,
        "accesses": collector.meter.memory_accesses,
    }
    shard_loads = getattr(collector, "shard_loads", None)
    if shard_loads is not None:
        loads = shard_loads()
        if isinstance(loads, dict):
            meters["shards"] = {str(s): n for s, n in loads.items()}
        else:
            meters["shards"] = {str(s): n for s, n in enumerate(loads)}
    return meters


def _worker_main(
    worker_index: int,
    workers: int,
    ring_name: str,
    pipeline: dict,
    stats_interval: float,
    conn,
    incarnation: int = 0,
    fault_entries: tuple = (),
) -> None:
    """Worker process: pop the ring, drive the offline feed loop.

    Messages to the parent: ``("export", worker, rotation_index, now,
    records)`` for every rotation (the parent emits them to the sinks),
    ``("stats", worker, meters)`` every ``stats_interval`` seconds, and
    a final ``("done", worker, meters)`` after the end-of-stream drain.

    ``incarnation`` counts respawns of this worker slot (the
    supervisor's currency for rotation-index mapping and for scoping
    ``fault_entries`` — a ``kill_worker`` fault aimed at incarnation 0
    must not re-trip the moment the respawn's packet counter passes
    the same threshold).
    """
    ring = PacketRing.attach(ring_name)
    spec = PipelineSpec.from_dict(pipeline)
    if workers > 1:
        collector = _ShardSubset(spec.collector["params"], worker_index, workers)
    else:
        collector = build_collector(spec.collector)
    rotation = build_rotation(spec.rotation)
    track_bytes = getattr(collector, "track_bytes", False)
    plan = FaultPlan(fault_entries) if fault_entries else None

    def emit(records, rotation_index, now):
        conn.send(("export", worker_index, rotation_index, now, records))

    feeder = StreamFeeder(collector, rotation, emit, chunk_size=spec.chunk_size)

    def maybe_fault() -> None:
        stall = plan.stall_due(worker_index, incarnation, feeder.packets)
        if stall > 0:
            time.sleep(stall)
        if plan.kill_due(worker_index, incarnation, feeder.packets):
            os.kill(os.getpid(), signal.SIGKILL)

    next_stats = time.monotonic() + stats_interval
    try:
        while True:
            item = ring.pop(spec.chunk_size)
            if item is None:
                if ring.stopped():
                    break
                if plan is not None:
                    maybe_fault()
                time.sleep(_IDLE_POLL_S)
            else:
                lo, hi, sizes, timestamps = item
                feeder.feed(
                    keys_from_halves(lo, hi),
                    lo,
                    hi,
                    sizes if track_bytes else None,
                    timestamps,
                )
                if plan is not None:
                    maybe_fault()
            if time.monotonic() >= next_stats:
                conn.send(("stats", worker_index, _worker_meters(feeder, collector)))
                next_stats = time.monotonic() + stats_interval
        feeder.finish()
        conn.send(("done", worker_index, _worker_meters(feeder, collector)))
    finally:
        conn.close()


@dataclass
class ServeResult:
    """What one daemon run collected.

    Attributes:
        packets: packets decoded from the wire (before any ring drop).
        datagrams: datagrams received (v5 or not).
        drops: packets shed at full rings (``drop`` back-pressure).
        rotations: rotation sweeps across workers (final drain excluded).
        exported: flow records emitted to the sinks.
        records: merged ``{key: packets}`` across every export.
        sinks: summaries per sink, keyed like
            :class:`~repro.stream.pipeline.PipelineResult`.
        meters: final per-worker meters (as the workers reported them;
            after a restart, the live incarnation's view).
        elapsed: wall-clock seconds from bind to drain.
        fed: packets consumed by worker feeders across every
            incarnation (exact, from ring tail deltas).
        lost: packets discarded from dead workers' rings
            (``on_worker_loss="drop"``) — zero in replay mode.
        restarts: one record per worker respawn (worker, incarnation,
            exitcode, resident, disposition, backoff_s, recovery_ms).
        recv_errors: UDP receive errors by errno name.
        degraded: global rotation indices whose content a worker loss
            made incomplete (also flagged in sink metadata).
        rotation_records: merged ``{key: packets}`` per global
            rotation index (supervision tests compare the non-degraded
            ones against an offline run).
    """

    packets: int
    datagrams: int
    drops: int
    rotations: int
    exported: int
    records: dict[int, int]
    sinks: dict[str, dict]
    meters: dict[int, dict]
    elapsed: float
    fed: int = 0
    lost: int = 0
    restarts: list = field(default_factory=list)
    recv_errors: dict = field(default_factory=dict)
    degraded: list = field(default_factory=list)
    rotation_records: dict = field(default_factory=dict)

    @property
    def accounting_exact(self) -> bool:
        """The supervision identity: ``fed + drops + lost == packets``.

        Holds exactly through any number of worker restarts — a
        violation means packets were silently created or destroyed.
        """
        return self.fed + self.drops + self.lost == self.packets

    def summary(self) -> dict[str, Any]:
        """One flat JSON-native result row."""
        return {
            "packets": self.packets,
            "datagrams": self.datagrams,
            "drops": self.drops,
            "rotations": self.rotations,
            "exported": self.exported,
            "flows": len(self.records),
            "records": dict(self.records),
            "sinks": {k: dict(v) for k, v in self.sinks.items()},
            "meters": {str(w): dict(m) for w, m in self.meters.items()},
            "elapsed": self.elapsed,
            "fed": self.fed,
            "lost": self.lost,
            "restarts": [dict(r) for r in self.restarts],
            "recv_errors": dict(self.recv_errors),
            "degraded": list(self.degraded),
            "accounting_exact": self.accounting_exact,
        }


class ServeDaemon:
    """A runnable live-collection daemon (see the module docstring).

    Args:
        spec: the :class:`~repro.serve.spec.ServeSpec` (or its dict).
        listen: optional ``(host, port)`` override of the spec's
            udp-source address (port 0 binds an ephemeral port;
            :attr:`address` reports the real one after :meth:`bind`).
        quiet: suppress the listening banner and periodic stats lines.
    """

    def __init__(
        self,
        spec: ServeSpec | Mapping[str, Any],
        listen: tuple[str, int] | None = None,
        quiet: bool = False,
    ):
        if not isinstance(spec, ServeSpec):
            spec = ServeSpec.from_dict(spec)
        if listen is not None:
            spec = spec.with_listen(listen[0], listen[1])
        self.spec = spec
        self.quiet = bool(quiet)
        self.address: tuple[str, int] | None = None
        #: Live monitoring counters, updated by the run loop (read-only
        #: for other threads — e.g. a replayer waiting for its packets
        #: to be ingested before requesting a drain).
        self.packets_received = 0
        self.datagrams_received = 0
        #: The merged fault-injection plan: the spec's baked-in faults
        #: plus anything ``REPRO_FAULTS`` names (None when both empty).
        self.fault_plan = FaultPlan.merged(spec.faults, FaultPlan.from_env())
        self._sock: socket.socket | None = None
        self._stop = False

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask a running :meth:`run` to drain and return (signal-safe)."""
        self._stop = True

    def bind(self) -> tuple[str, int]:
        """Bind the listen socket; returns the real bound address.

        Idempotent; callable before :meth:`run` so a test (or a
        supervisor health check) can learn an ephemeral port while the
        daemon starts in another thread.
        """
        if self._sock is None:
            host, port = self.spec.listen
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, RECV_BUFFER_BYTES)
            except OSError:  # pragma: no cover - tiny rmem_max
                pass
            sock.bind((host, port))
            sock.setblocking(False)
            self._sock = sock
            self.address = sock.getsockname()[:2]
            self._say(f"serve: listening on {self.address[0]}:{self.address[1]}")
        return self.address

    def _say(self, line: str) -> None:
        if not self.quiet:
            print(line, file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self, duration: float | None = None) -> ServeResult:
        """Serve until ``duration`` elapses or :meth:`request_stop`.

        Returns:
            A :class:`ServeResult`; every worker has drained, every
            sink is closed, and the ring segments are unlinked.

        Raises:
            RuntimeError: if a worker process dies with no restart
                budget left — ``max_restarts=0``, the default, makes
                any death a hard fault (rings and sinks are still
                cleaned up first; sinks via their abort path).
        """
        spec = self.spec
        self.bind()
        sock = self._sock
        pipeline = spec.pipeline_spec
        ctx = _mp_context()

        workers = spec.workers
        route_hash = None
        n_shards = 0
        if workers > 1:
            params = pipeline.collector["params"]
            n_shards = int(params["n_shards"])
            route_hash = HashFunction(int(params.get("seed", 0)) ^ 0x5AAD)

        sinks = tuple(build_sink(s) for s in pipeline.sinks)

        # Run-level accounting (parent view).
        packets = 0
        datagrams = 0
        export_events = 0
        exported_all: list[FlowRecord] = []
        rotation_records: dict[int, list[FlowRecord]] = {}
        recv_errors: dict[str, int] = {}
        sinks_settled = False
        start = time.monotonic()

        def on_export(worker, rotation, now, records) -> None:
            nonlocal export_events
            for sink in sinks:
                sink.emit(records, rotation, now)
            exported_all.extend(records)
            if records:
                rotation_records.setdefault(rotation, []).extend(records)
            export_events += 1

        def on_degraded(rotation) -> None:
            for sink in sinks:
                sink.flag_degraded(rotation)

        supervisor = Supervisor(
            spec,
            ctx,
            worker_faults=self.fault_plan.entries if self.fault_plan else (),
            on_export=on_export,
            on_degraded=on_degraded,
            say=self._say,
        )

        def push(ring: PacketRing, lo, hi, sizes, timestamps) -> None:
            if spec.backpressure == "drop":
                accepted = ring.try_push(lo, hi, sizes, timestamps)
                if accepted < len(lo):
                    ring.add_drops(len(lo) - accepted)
                return
            # block: wait for ring space, but keep the supervisor
            # turning meanwhile — a worker blocked on a full export
            # pipe while the parent blocks on its full ring would
            # deadlock otherwise, and a pending respawn must still be
            # progressed or a dead worker's full ring never empties.
            def stalled() -> bool:
                supervisor.check()
                return False

            ring.push(lo, hi, sizes, timestamps, should_abort=stalled)

        if self.fault_plan:
            _faults.activate(self.fault_plan)
        try:
            supervisor.start()
            rings = supervisor.rings

            deadline = None if duration is None else start + duration
            next_stats = start + spec.stats_interval
            stats_packets = 0
            stats_at = start

            while not self._stop:
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    break
                burst = 0
                while burst < _SOCKET_BURST:
                    try:
                        data = sock.recv(65535)
                    except BlockingIOError:
                        break
                    except OSError as exc:
                        # Count and surface rather than silently
                        # swallow: one log line per error class, a
                        # counter per errno in the daemon stats.
                        name = _errno.errorcode.get(
                            exc.errno, f"errno {exc.errno}"
                        )
                        if name not in recv_errors:
                            self._say(
                                f"serve: recv error {name}: {exc} "
                                "(counting further occurrences silently)"
                            )
                        recv_errors[name] = recv_errors.get(name, 0) + 1
                        break
                    burst += 1
                    datagrams += 1
                    decoded = decode_datagram(data)
                    if decoded is None:
                        continue
                    lo, hi, sizes, timestamps = decoded
                    packets += len(lo)
                    if workers == 1:
                        push(rings[0], lo, hi, sizes, timestamps)
                    else:
                        owners = route_hash.values_batch(
                            _HalfBatch(lo, hi)
                        ) % np.uint64(n_shards)
                        homes = owners % np.uint64(workers)
                        for w in range(workers):
                            members = np.nonzero(homes == np.uint64(w))[0]
                            if len(members):
                                push(
                                    rings[w],
                                    lo[members],
                                    hi[members],
                                    sizes[members],
                                    timestamps[members],
                                )
                self.packets_received = packets
                self.datagrams_received = datagrams
                supervisor.check()
                now = time.monotonic()
                if now >= next_stats:
                    elapsed = now - stats_at
                    pps = (packets - stats_packets) / elapsed if elapsed > 0 else 0.0
                    occupancy = "/".join(str(r.occupancy()) for r in rings)
                    drops = sum(r.drops for r in rings)
                    per_worker = " ".join(
                        f"w{w}:{m.get('packets', 0)}p/{m.get('rotations', 0)}r"
                        for w, m in sorted(supervisor.meters.items())
                    )
                    self._say(
                        f"serve: t={now - start:7.1f}s pps={pps:9.0f} "
                        f"packets={packets} datagrams={datagrams} "
                        f"occ={occupancy} drops={drops} "
                        f"exports={export_events} {per_worker}".rstrip()
                    )
                    stats_packets = packets
                    stats_at = now
                    next_stats = now + spec.stats_interval
                if burst == 0:
                    # Idle: sleep until traffic or a worker message.
                    select.select([sock] + supervisor.conns, [], [], 0.01)

            # ----------------------------------------------------------
            # Graceful drain: stop ingest, let workers finish the rings,
            # run their final rotation, and report.  The stop flag
            # lives in the ring segment, so it survives a respawn: a
            # worker that dies mid-drain is respawned, consumes what
            # remains, and finishes the drain itself.
            # ----------------------------------------------------------
            supervisor.request_stop()
            drain_deadline = time.monotonic() + DRAIN_TIMEOUT_S
            while not supervisor.all_done():
                supervisor.check()
                if time.monotonic() >= drain_deadline:
                    busy = sum(1 for s in supervisor.slots if not s.done)
                    raise RuntimeError(
                        f"serve drain timed out after {DRAIN_TIMEOUT_S}s "
                        f"({busy} workers still busy)"
                    )
                conns = supervisor.conns
                if conns:
                    select.select(conns, [], [], 0.05)
                else:  # every live pipe closed (respawn pending)
                    time.sleep(0.01)
            for slot in supervisor.slots:
                slot.proc.join(timeout=10.0)
            supervisor.pump()

            drops = sum(ring.drops for ring in rings)
            for rotation in sorted(supervisor.degraded):
                self._say(f"serve: rotation {rotation} flagged degraded")
            for sink in sinks:
                sink.close()
            sinks_settled = True
            names: dict[str, int] = {}
            summaries: dict[str, dict] = {}
            for sink in sinks:
                count = names.get(sink.kind, 0)
                names[sink.kind] = count + 1
                label = sink.kind if count == 0 else f"{sink.kind}#{count}"
                summaries[label] = sink.summary()
            return ServeResult(
                packets=packets,
                datagrams=datagrams,
                drops=drops,
                rotations=supervisor.rotation_total(),
                exported=len(exported_all),
                records=merge_flow_records(exported_all),
                sinks=summaries,
                meters=dict(sorted(supervisor.meters.items())),
                elapsed=time.monotonic() - start,
                fed=supervisor.fed,
                lost=supervisor.lost,
                restarts=list(supervisor.restarts),
                recv_errors=dict(recv_errors),
                degraded=sorted(supervisor.degraded),
                rotation_records={
                    r: merge_flow_records(records)
                    for r, records in sorted(rotation_records.items())
                },
            )
        finally:
            supervisor.shutdown()
            sock.close()
            self._sock = None
            if self.fault_plan:
                _faults.deactivate()
            if not sinks_settled:
                # The run died: settle sinks through their abort path
                # so a crashed rotation never leaves a half-written
                # archive (abort and close are both idempotent, so
                # this is safe whatever state the failure left).
                for sink in sinks:
                    try:
                        sink.abort()
                    except Exception:  # pragma: no cover - best effort
                        pass
