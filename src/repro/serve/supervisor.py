"""Worker supervision for the serve daemon (DESIGN §11).

The original daemon treated any worker death as a hard fault: tear the
whole service down, lose everything in flight.  A long-lived collector
(SENSOR runs for months) needs crash *containment* instead — this
module wraps the daemon's worker fleet in a :class:`Supervisor` that:

* **detects** a dead worker through the same pump-then-liveness guard
  the fail-fast path used (a clean exit can race the pipe drain, so
  one more pump decides);
* **quarantines** the dead worker's ring: the parent pops everything
  the dead incarnation left unconsumed, so no packet is ever silently
  stranded in shared memory;
* **accounts exactly**: the ring tail only moves after a payload is
  copied out, so ``tail_at_death - tail_base`` is the dead
  incarnation's precise *fed* count, and the drained residue is either
  replayed to the respawn (``on_worker_loss="replay"``: lossless) or
  counted as ``lost`` (``"drop"``: bounded latency) — the identity
  ``fed + drops + lost == received`` stays exact through any number of
  restarts;
* **flags degradation**: the window a worker died inside loses that
  worker's un-exported collector state, so its global rotation index
  is flagged *degraded* in every sink's metadata rather than being
  silently incomplete (drop mode also flags the windows the lost
  residue would have landed in, conservatively);
* **respawns** with capped exponential backoff under a sliding-window
  restart budget (``max_restarts`` within ``restart_window`` seconds,
  per worker); budget exhaustion — and the default budget of zero —
  reproduces the original hard-fault behavior exactly, message
  included.

Rotation indices are made global here: each worker incarnation's
feeder numbers its exports from zero, so the supervisor offsets them
by the incarnation's ``base_rotations`` (the exports its predecessors
already produced).  Under interval rotation the window grid is
absolute, so a respawned worker re-enters the same grid and the global
indices of fault-free windows line up with the offline run's.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

import numpy as np

from repro.serve.ring import PacketRing
from repro.serve.spec import ServeSpec

#: First respawn backoff; doubles per restart inside the window.
RESPAWN_BACKOFF_S = 0.05

#: Ceiling on the exponential respawn backoff.
RESPAWN_BACKOFF_CAP_S = 2.0

#: Chunk size for draining a dead worker's ring.
_DRAIN_CHUNK = 65_536


class WorkerSlot:
    """One worker position: its ring, its live incarnation, and the
    accounting state that survives incarnations."""

    __slots__ = (
        "index", "ring", "proc", "conn", "incarnation", "done",
        "tail_base", "base_rotations", "exports_current", "fed_prior",
        "restart_times", "respawn_at", "death_at", "restart_entry",
        "meters",
    )

    def __init__(self, index: int, ring: PacketRing):
        self.index = index
        self.ring = ring
        self.proc = None
        self.conn = None
        self.incarnation = 0
        self.done = False
        #: Ring tail at this incarnation's start — its fed count is
        #: the tail's advance past this.
        self.tail_base = 0
        #: Global rotation index of this incarnation's export 0.
        self.base_rotations = 0
        #: Exports seen from the current incarnation so far.
        self.exports_current = 0
        #: Exact fed total of every previous incarnation.
        self.fed_prior = 0
        self.restart_times: list[float] = []
        self.respawn_at: float | None = None
        self.death_at: float | None = None
        self.restart_entry: dict[str, Any] | None = None
        self.meters: dict[str, Any] = {}

    @property
    def fed(self) -> int:
        """Packets fed across every incarnation of this worker, exact."""
        return self.fed_prior + (self.ring.consumed - self.tail_base)


class Supervisor:
    """The daemon's worker fleet: spawn, watch, respawn, account.

    Args:
        spec: the frozen :class:`~repro.serve.spec.ServeSpec` — worker
            respawns rebuild their pipeline from it, never from live
            state.
        ctx: the multiprocessing context (fork where available).
        worker_faults: canonical fault entries forwarded to every
            worker (:mod:`repro.faults` kill/stall hooks).
        on_export: ``(worker, global_rotation, now, records)`` — the
            daemon fans each export out to its sinks.
        on_degraded: ``(global_rotation)`` — the daemon flags the
            rotation in every sink's metadata.
        say: the daemon's stderr line printer.
    """

    def __init__(
        self,
        spec: ServeSpec,
        ctx,
        worker_faults: tuple = (),
        on_export: Callable[[int, int, float, list], None] = lambda *a: None,
        on_degraded: Callable[[int], None] = lambda r: None,
        say: Callable[[str], None] = lambda line: None,
    ):
        self.spec = spec
        self.ctx = ctx
        self.worker_faults = tuple(worker_faults)
        self.on_export = on_export
        self.on_degraded = on_degraded
        self.say = say
        self._pipeline = spec.pipeline_spec.to_dict()
        rotation = self._pipeline["rotation"]
        self._window = (
            float(rotation["params"]["window"])
            if rotation["kind"] == "interval"
            else None
        )
        self.slots: list[WorkerSlot] = []
        #: Packets discarded from dead rings (``on_worker_loss="drop"``).
        self.lost = 0
        #: One record per respawn (worker, incarnation, exitcode,
        #: resident, disposition, backoff_s, recovery_ms).
        self.restarts: list[dict[str, Any]] = []
        #: Global rotation indices whose content a worker loss degraded.
        self.degraded: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Create every ring, then spawn every worker."""
        spec = self.spec
        for w in range(spec.workers):
            ring = PacketRing.create(spec.ring_slots, label=f"serve-w{w}")
            self.slots.append(WorkerSlot(w, ring))
        for slot in self.slots:
            self._spawn(slot)

    def _spawn(self, slot: WorkerSlot) -> None:
        from repro.serve.daemon import _worker_main

        parent_conn, child_conn = self.ctx.Pipe(duplex=False)
        name = f"serve-worker-{slot.index}"
        if slot.incarnation:
            name = f"{name}-r{slot.incarnation}"
        proc = self.ctx.Process(
            target=_worker_main,
            args=(
                slot.index,
                self.spec.workers,
                slot.ring.name,
                self._pipeline,
                self.spec.stats_interval,
                child_conn,
                slot.incarnation,
                self.worker_faults,
            ),
            name=name,
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc = proc
        slot.conn = parent_conn

    @property
    def rings(self) -> list[PacketRing]:
        return [slot.ring for slot in self.slots]

    @property
    def conns(self) -> list:
        """Live parent-side pipe ends (for the daemon's idle select)."""
        return [slot.conn for slot in self.slots if slot.conn is not None]

    def all_done(self) -> bool:
        return all(slot.done for slot in self.slots)

    @property
    def fed(self) -> int:
        """Packets fed across every worker and incarnation, exact."""
        return sum(slot.fed for slot in self.slots)

    @property
    def meters(self) -> dict[int, dict]:
        return {slot.index: slot.meters for slot in self.slots}

    def rotation_total(self) -> int:
        """Rotation sweeps across workers and incarnations.

        A dead incarnation's sweeps are its export count (each export
        is one sweep); the live incarnation reports through its meters.
        """
        return sum(
            slot.base_rotations + slot.meters.get("rotations", 0)
            for slot in self.slots
        )

    # ------------------------------------------------------------------
    # Message pump
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Drain pending worker messages (never blocks)."""
        for slot in self.slots:
            self._pump_slot(slot)

    def _pump_slot(self, slot: WorkerSlot) -> None:
        conn = slot.conn
        if conn is None:
            return
        while True:
            try:
                if not conn.poll():
                    break
                message = conn.recv()
            except (EOFError, OSError):
                break  # liveness is checked against the process
            kind = message[0]
            if kind == "export":
                _, _, rotation_index, now, records = message
                if rotation_index + 1 > slot.exports_current:
                    slot.exports_current = rotation_index + 1
                self.on_export(
                    slot.index,
                    slot.base_rotations + rotation_index,
                    now,
                    records,
                )
            elif kind == "stats":
                slot.meters = message[2]
            elif kind == "done":
                slot.meters = message[2]
                slot.done = True

    # ------------------------------------------------------------------
    # Death detection and recovery
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Pump, detect deaths, progress pending respawns.

        Raises:
            RuntimeError: a worker died with no restart budget left
                (the original hard fault, message included).
        """
        self.pump()
        now = time.monotonic()
        for slot in self.slots:
            if slot.respawn_at is not None:
                if now >= slot.respawn_at:
                    slot.respawn_at = None
                    self._spawn(slot)
                    self.say(
                        f"serve: worker {slot.index} respawned "
                        f"(incarnation {slot.incarnation})"
                    )
                continue
            if slot.death_at is not None and slot.proc is not None:
                # Recovery point: the respawn consumed its first packet
                # (or finished a drain with nothing left to consume).
                if slot.ring.consumed > slot.tail_base or slot.done:
                    slot.restart_entry["recovery_ms"] = (
                        (now - slot.death_at) * 1000.0
                    )
                    slot.death_at = None
            if slot.done or slot.proc is None or slot.proc.is_alive():
                continue
            # A clean exit can land between the pump above and the
            # liveness check; once the process is observed dead its
            # messages are all in the pipe, so one more drain decides.
            self._pump_slot(slot)
            if slot.done:
                continue
            self._on_death(slot)

    def _on_death(self, slot: WorkerSlot) -> None:
        now = time.monotonic()
        exitcode = slot.proc.exitcode
        spec = self.spec
        slot.restart_times = [
            t for t in slot.restart_times if t >= now - spec.restart_window
        ]
        if len(slot.restart_times) >= spec.max_restarts:
            suffix = ""
            if spec.max_restarts:
                suffix = (
                    f" (restart budget exhausted: {len(slot.restart_times)} "
                    f"restarts in {spec.restart_window:g}s)"
                )
            raise RuntimeError(
                f"serve worker {slot.index} died (exit code {exitcode}) "
                f"before draining its ring{suffix}"
            )
        slot.restart_times.append(now)
        slot.death_at = now
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - best effort
            pass
        slot.conn = None
        # Exact fed for the dead incarnation: the tail only moves after
        # a payload is copied out — capture it BEFORE the drain below
        # advances it further.
        tail_at_death = slot.ring.consumed
        slot.fed_prior += tail_at_death - slot.tail_base
        # Quarantine the ring: pop everything the dead incarnation
        # left resident, so nothing is stranded in shared memory.
        resident = self._drain_ring(slot.ring)
        n_resident = 0 if resident is None else len(resident[0])
        slot.tail_base = slot.ring.consumed
        # The in-progress window's un-exported collector state died
        # with the worker: its global index is degraded.
        in_progress = slot.base_rotations + slot.exports_current
        self._flag(in_progress)
        slot.base_rotations = in_progress
        slot.exports_current = 0
        disposition = spec.on_worker_loss
        if n_resident:
            if disposition == "replay":
                # The ring was just emptied, so the residue always
                # fits; tail_base already points past the drain, so
                # replayed packets count toward the respawn's fed
                # exactly once.
                lo, hi, sizes, ts = resident
                slot.ring.try_push(lo, hi, sizes, ts)
            else:
                self.lost += n_resident
                self._flag_lost_windows(slot, resident[3])
        delay = min(
            RESPAWN_BACKOFF_S * (2 ** (len(slot.restart_times) - 1)),
            RESPAWN_BACKOFF_CAP_S,
        )
        slot.incarnation += 1
        slot.done = False
        slot.respawn_at = now + delay
        slot.restart_entry = {
            "worker": slot.index,
            "incarnation": slot.incarnation,
            "exitcode": exitcode,
            "resident": n_resident,
            "disposition": disposition,
            "backoff_s": delay,
            "recovery_ms": None,
        }
        self.restarts.append(slot.restart_entry)
        self.say(
            f"serve: worker {slot.index} died (exit code {exitcode}); "
            f"{n_resident} ring-resident packets "
            f"{'replayed' if disposition == 'replay' else 'dropped as lost'}, "
            f"rotation {in_progress} degraded, respawning in {delay:.2f}s"
        )

    @staticmethod
    def _drain_ring(ring: PacketRing):
        """Pop everything published-but-unconsumed; None when empty."""
        parts = []
        while True:
            item = ring.pop(_DRAIN_CHUNK)
            if item is None:
                break
            parts.append(item)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return tuple(
            np.concatenate([part[i] for part in parts]) for i in range(4)
        )

    def _flag(self, rotation: int) -> None:
        if rotation not in self.degraded:
            self.degraded.add(rotation)
            self.on_degraded(rotation)

    def _flag_lost_windows(self, slot: WorkerSlot, timestamps) -> None:
        """Drop mode under interval rotation: the discarded residue
        spans wall-clock windows whose future exports will be missing
        those packets — flag each (conservatively: empty windows are
        skipped by the feeder, so indices may over-flag, never under
        by more than the skip)."""
        if self._window is None or not len(timestamps):
            self._flag(slot.base_rotations)
            return
        windows = {int(ts // self._window) for ts in timestamps.tolist()}
        for i in range(len(windows)):
            self._flag(slot.base_rotations + i)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Raise every ring's stop flag (persists across respawns)."""
        for slot in self.slots:
            slot.ring.request_stop()

    def shutdown(self) -> None:
        """Best-effort teardown: kill processes, close pipes, unlink
        ring segments (the daemon's ``finally`` path)."""
        for slot in self.slots:
            proc = slot.proc
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for slot in self.slots:
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:  # pragma: no cover
                    pass
                slot.conn = None
        for slot in self.slots:
            slot.ring.unlink()


__all__ = ["Supervisor", "WorkerSlot", "RESPAWN_BACKOFF_S", "RESPAWN_BACKOFF_CAP_S"]
