"""Declarative serve-daemon descriptions.

A :class:`ServeSpec` is to the live daemon what
:class:`~repro.stream.spec.PipelineSpec` is to an offline run: a
frozen, JSON-round-trippable value naming everything the daemon needs —
the nested pipeline (whose source must be the live ``udp`` kind), the
worker count, the per-worker ring geometry, the back-pressure policy at
the ring door, and the stats cadence.  Runtime knobs that do not change
*what* is collected (``--duration``, a ``--listen`` override) stay out
of the spec on purpose: the same spec file describes the same daemon
whether it runs for ten seconds under CI or indefinitely under systemd.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.serve.ring import DEFAULT_RING_SLOTS
from repro.specs import SpecError
from repro.stream.spec import PipelineSpec

#: Allowed back-pressure policies at the ring door (DESIGN §10).
BACKPRESSURE_MODES = ("block", "drop")

#: Worker-loss dispositions for ring-resident packets (DESIGN §11):
#: ``auto`` resolves by back-pressure mode (block → replay, drop →
#: drop), ``replay`` re-feeds drained packets to the respawned worker,
#: ``drop`` counts them as ``lost``.
WORKER_LOSS_MODES = ("auto", "replay", "drop")

#: Environment defaults for specs *composed* by the CLI (spec files
#: are taken verbatim; explicit flags override both).
RING_SLOTS_ENV = "REPRO_SERVE_RING_SLOTS"
BACKPRESSURE_ENV = "REPRO_SERVE_BACKPRESSURE"
STATS_INTERVAL_ENV = "REPRO_SERVE_STATS_INTERVAL"

_FIELDS = {
    "pipeline",
    "workers",
    "ring_slots",
    "backpressure",
    "stats_interval",
    "max_restarts",
    "restart_window",
    "on_worker_loss",
    "faults",
}


def env_serve_defaults() -> dict[str, Any]:
    """ServeSpec field defaults from ``REPRO_SERVE_*`` (unset → empty).

    Used by ``repro-experiments serve`` when composing a spec from
    flags, so a deployment can pin its ring geometry / back-pressure /
    stats cadence machine-wide without editing every invocation.
    """
    defaults: dict[str, Any] = {}
    raw = os.environ.get(RING_SLOTS_ENV, "").strip()
    if raw:
        defaults["ring_slots"] = int(raw)
    raw = os.environ.get(BACKPRESSURE_ENV, "").strip()
    if raw:
        defaults["backpressure"] = raw
    raw = os.environ.get(STATS_INTERVAL_ENV, "").strip()
    if raw:
        defaults["stats_interval"] = float(raw)
    return defaults


@dataclass(frozen=True, eq=False)
class ServeSpec:
    """A frozen, JSON-round-trippable serve-daemon description.

    Attributes:
        pipeline: nested :class:`~repro.stream.spec.PipelineSpec` dict;
            its source stage must be the live ``udp`` kind.
        workers: collector worker processes.  With more than one
            worker the collector must be the ``sharded`` kind with at
            least one shard per worker — each worker owns the shards
            ``s % workers == worker`` so any flow key has exactly one
            home process and merged exports stay exact.
        ring_slots: packet slots per worker ring (power of two).
        backpressure: what the listener does when a worker's ring is
            full — ``"block"`` (lossless, UDP socket buffer absorbs
            the stall) or ``"drop"`` (shed at the ring door, counted
            in the ring's drop counter and the stats line).
        stats_interval: seconds between periodic stats lines.
        max_restarts: worker respawns allowed within
            ``restart_window`` before a death becomes a hard fault.
            The default 0 preserves the original fail-fast behavior:
            any worker death tears the daemon down.
        restart_window: sliding window (seconds) the restart budget
            counts over.
        on_worker_loss: disposition of packets resident in a dead
            worker's ring — ``"replay"`` (drain and re-feed to the
            respawn: lossless), ``"drop"`` (count as ``lost``:
            bounded-latency), or ``"auto"`` (resolve by back-pressure
            mode: block → replay, drop → drop; stored resolved).
        faults: deterministic fault-injection plan entries
            (:mod:`repro.faults` dicts) baked into the spec — merged
            with any ``REPRO_FAULTS`` environment plan at run time.
    """

    pipeline: Mapping[str, Any]
    workers: int = 1
    ring_slots: int = DEFAULT_RING_SLOTS
    backpressure: str = "block"
    stats_interval: float = 5.0
    max_restarts: int = 0
    restart_window: float = 30.0
    on_worker_loss: str = "auto"
    faults: tuple = ()

    def __post_init__(self):
        # Nested validation (and error messages) are PipelineSpec's own.
        pipeline = PipelineSpec.from_dict(self.pipeline)
        if pipeline.source["kind"] != "udp":
            raise SpecError(
                "a serve spec needs a live source: pipeline.source.kind "
                f"must be 'udp', got {pipeline.source['kind']!r} "
                "(offline sources run via Pipeline.run)"
            )
        object.__setattr__(self, "pipeline", pipeline.to_dict())
        workers = int(self.workers)
        if workers < 1:
            raise SpecError(f"workers must be >= 1, got {workers}")
        if workers > 1:
            collector = pipeline.collector
            if collector["kind"] != "sharded":
                raise SpecError(
                    f"{workers} workers need a 'sharded' collector so each "
                    f"flow key has one home process, got kind "
                    f"{collector['kind']!r}"
                )
            n_shards = int(collector["params"]["n_shards"])
            if n_shards < workers:
                raise SpecError(
                    f"{workers} workers need at least that many shards, "
                    f"got n_shards={n_shards}"
                )
        object.__setattr__(self, "workers", workers)
        ring_slots = int(self.ring_slots)
        if ring_slots < 2 or ring_slots & (ring_slots - 1):
            raise SpecError(
                f"ring_slots must be a power of two >= 2, got {ring_slots}"
            )
        object.__setattr__(self, "ring_slots", ring_slots)
        if self.backpressure not in BACKPRESSURE_MODES:
            raise SpecError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.backpressure!r}"
            )
        if not self.stats_interval > 0:
            raise SpecError(
                f"stats_interval must be positive, got {self.stats_interval}"
            )
        object.__setattr__(self, "stats_interval", float(self.stats_interval))
        max_restarts = int(self.max_restarts)
        if max_restarts < 0:
            raise SpecError(f"max_restarts must be >= 0, got {max_restarts}")
        object.__setattr__(self, "max_restarts", max_restarts)
        if not self.restart_window > 0:
            raise SpecError(
                f"restart_window must be positive, got {self.restart_window}"
            )
        object.__setattr__(self, "restart_window", float(self.restart_window))
        if self.on_worker_loss not in WORKER_LOSS_MODES:
            raise SpecError(
                f"on_worker_loss must be one of {WORKER_LOSS_MODES}, "
                f"got {self.on_worker_loss!r}"
            )
        if self.on_worker_loss == "auto":
            resolved = "replay" if self.backpressure == "block" else "drop"
            object.__setattr__(self, "on_worker_loss", resolved)
        from repro.faults import FaultSpecError, _validated

        try:
            faults = tuple(_validated(entry) for entry in self.faults)
        except FaultSpecError as exc:
            raise SpecError(f"invalid serve spec faults: {exc}") from exc
        object.__setattr__(self, "faults", faults)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServeSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def __repr__(self) -> str:
        return (
            f"ServeSpec({self.pipeline_spec!r}, workers={self.workers}, "
            f"ring_slots={self.ring_slots}, backpressure={self.backpressure!r})"
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pipeline_spec(self) -> PipelineSpec:
        """The nested pipeline as a :class:`PipelineSpec` value."""
        return PipelineSpec.from_dict(self.pipeline)

    @property
    def listen(self) -> tuple[str, int]:
        """The ``(host, port)`` the udp source asks to bind."""
        params = self.pipeline["source"]["params"]
        return str(params.get("host", "127.0.0.1")), int(params.get("port", 2055))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, JSON-native throughout."""
        return {
            "pipeline": dict(self.pipeline),
            "workers": self.workers,
            "ring_slots": self.ring_slots,
            "backpressure": self.backpressure,
            "stats_interval": self.stats_interval,
            "max_restarts": self.max_restarts,
            "restart_window": self.restart_window,
            "on_worker_loss": self.on_worker_loss,
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeSpec":
        """Inverse of :meth:`to_dict`.

        Raises:
            SpecError: if the mapping is not of the canonical shape.
        """
        if not isinstance(data, Mapping) or "pipeline" not in data:
            raise SpecError(f"not a serve spec mapping: {data!r}")
        extra = set(data) - _FIELDS
        if extra:
            raise SpecError(f"unknown serve spec fields {sorted(extra)} in {data!r}")
        return cls(**{k: data[k] for k in _FIELDS & set(data)})

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServeSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid serve spec JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation / construction
    # ------------------------------------------------------------------
    def with_listen(self, host: str, port: int) -> "ServeSpec":
        """A new spec bound to a different listen address."""
        pipeline = self.pipeline_spec
        source = {
            "kind": "udp",
            "params": {**pipeline.source["params"], "host": host, "port": int(port)},
        }
        return replace(self, pipeline=pipeline.with_stages(source=source).to_dict())

    def build(self):
        """Build a runnable :class:`~repro.serve.daemon.ServeDaemon`."""
        from repro.serve.daemon import ServeDaemon

        return ServeDaemon(self)


def load_serve_spec(path) -> ServeSpec:
    """Load a :class:`ServeSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ServeSpec.from_json(fh.read())


def save_serve_spec(spec: ServeSpec, path) -> None:
    """Write a :class:`ServeSpec` to a JSON file (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json(indent=2) + "\n")
