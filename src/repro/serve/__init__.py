"""Live collection as a service: the long-running ingest daemon.

Everything else in the repo measures *finite* traces; this package is
the operational embodiment the paper's introduction assumes — a
standing collector that NetFlow v5 exporters stream datagrams at, with
rotation and export happening *while* traffic arrives:

* :mod:`repro.serve.codec` — vectorized v5 ↔ packet-array codec;
* :mod:`repro.serve.ring` — lock-minimal shared-memory SPSC packet
  rings (one per worker, on :mod:`repro.shm.segments`);
* :mod:`repro.serve.spec` — :class:`ServeSpec`, the frozen
  JSON-round-trippable daemon description nesting a
  :class:`~repro.stream.spec.PipelineSpec`;
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, the UDP listener +
  worker processes + graceful-drain lifecycle;
* :mod:`repro.serve.supervisor` — worker-death detection, ring
  quarantine, respawn-with-backoff, exact loss accounting (DESIGN §11);
* :mod:`repro.serve.replay` — paced v5 trace replay, the soak rig.

Quickstart (see also ``repro-experiments serve``)::

    from repro.serve import ServeDaemon, ServeSpec, replay_trace

    spec = ServeSpec(pipeline={
        "source": {"kind": "udp", "params": {"port": 0}},
        "collector": {"kind": "hashflow", "params": {"main_cells": 4096}},
        "rotation": {"kind": "interval", "params": {"window": 5.0}},
        "sinks": [{"kind": "archive"}],
    })
    daemon = ServeDaemon(spec)
    address = daemon.bind()          # learn the ephemeral port
    # ... replay_trace(trace, address) from another thread/process ...
    result = daemon.run(duration=10.0)

The determinism contract is the package's backbone: a finite trace
replayed into the daemon exports records bit-identical to the offline
``Pipeline.run`` of the same spec (exactly for one worker; as the
merged record set for several workers under interval rotation).
"""

from repro.serve.codec import decode_datagram, encode_datagrams, keys_from_halves
from repro.serve.daemon import ServeDaemon, ServeResult
from repro.serve.replay import replay_datagrams, replay_trace, trace_datagrams
from repro.serve.ring import DEFAULT_RING_SLOTS, PacketRing
from repro.serve.spec import (
    BACKPRESSURE_MODES,
    WORKER_LOSS_MODES,
    ServeSpec,
    env_serve_defaults,
    load_serve_spec,
    save_serve_spec,
)
from repro.serve.supervisor import Supervisor

__all__ = [
    "BACKPRESSURE_MODES",
    "DEFAULT_RING_SLOTS",
    "PacketRing",
    "ServeDaemon",
    "ServeResult",
    "ServeSpec",
    "Supervisor",
    "WORKER_LOSS_MODES",
    "decode_datagram",
    "encode_datagrams",
    "env_serve_defaults",
    "keys_from_halves",
    "load_serve_spec",
    "replay_datagrams",
    "replay_trace",
    "save_serve_spec",
    "trace_datagrams",
]
