"""Paced NetFlow v5 trace replay over UDP — the daemon's soak rig.

Turns a :class:`~repro.traces.trace.Trace` into the datagrams a real
v5 exporter would emit (one record per packet, 30 records per
datagram, via :func:`repro.serve.codec.encode_datagrams`) and sends
them to a listening daemon, optionally paced to a target packet rate.

Timestamp identity with the offline pipeline is deliberate: when the
trace carries no timestamps, record ``i`` gets ``first = last =
round(i / packet_rate * 1000)`` SysUptime milliseconds, and the
daemon's decode divides by 1000 — for a ``packet_rate`` whose period
is a whole number of milliseconds (500 pps → 2 ms) that reproduces the
offline synthetic clock ``np.arange(n) / packet_rate`` bit for bit, so
live and offline runs rotate on identical packet boundaries.
"""

from __future__ import annotations

import socket
import time
from typing import Iterable, Sequence

import numpy as np

from repro.export.netflow_v5 import HEADER_BYTES, RECORD_BYTES
from repro.serve.codec import encode_datagrams
from repro.stream.spec import DEFAULT_PACKET_RATE


def trace_datagrams(
    trace,
    packet_rate: float = DEFAULT_PACKET_RATE,
    packet_bytes: int | None = None,
) -> list[bytes]:
    """Encode a trace as the v5 datagrams a live exporter would send.

    Args:
        trace: the :class:`~repro.traces.trace.Trace` to replay.
        packet_rate: synthetic clock rate applied when the trace has no
            timestamps (must match the pipeline spec's ``packet_rate``
            for live/offline identity).
        packet_bytes: per-packet byte size; defaults to the trace's own
            sizes when present, else the spec-level constant is the
            caller's job (the daemon applies its own default on decode
            of zero-octet records — so pass the pipeline's value here).

    Returns:
        Datagrams in stream order.
    """
    batch = trace.key_batch()
    lo, hi = batch.halves()
    n = len(lo)
    timestamps = getattr(trace, "timestamps", None)
    if timestamps is not None:
        times_ms = np.rint(np.asarray(timestamps, dtype=np.float64) * 1000.0)
    else:
        times_ms = np.rint(np.arange(n, dtype=np.float64) / packet_rate * 1000.0)
    sizes = batch.sizes
    if sizes is None:
        if packet_bytes is None:
            from repro.flow.packet import DEFAULT_PACKET_BYTES

            packet_bytes = DEFAULT_PACKET_BYTES
        sizes = np.full(n, int(packet_bytes), dtype=np.int64)
    return encode_datagrams(lo, hi, sizes, times_ms)


def replay_datagrams(
    datagrams: Sequence[bytes] | Iterable[bytes],
    address: tuple[str, int],
    pps: float | None = None,
    sock: socket.socket | None = None,
    faults=None,
) -> int:
    """Send datagrams to ``address``, optionally paced.

    Args:
        datagrams: encoded datagrams, in order.
        address: the daemon's ``(host, port)``.
        pps: target *packet* rate; None sends as fast as the socket
            accepts (soak / bench mode).  Pacing is absolute-deadline
            (each datagram waits for ``records_sent / pps`` since
            start), so short sleeps don't accumulate drift.
        sock: socket to send on (one is created and closed otherwise).
        faults: optional :class:`~repro.faults.FaultPlan` whose
            ``datagram_chaos`` entries mutate the wire stream
            deterministically (drop / duplicate / truncate) before
            sending — a lossy network in a test harness.

    Returns:
        Records (= packets) sent (counted on the post-chaos stream).
    """
    if faults is not None and faults:
        datagrams = faults.mutate_datagrams(list(datagrams))
    own = sock is None
    if own:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sent = 0
    try:
        start = time.monotonic()
        for datagram in datagrams:
            if pps:
                deadline = start + sent / pps
                delay = deadline - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            sock.sendto(datagram, address)
            sent += max(0, (len(datagram) - HEADER_BYTES) // RECORD_BYTES)
    finally:
        if own:
            sock.close()
    return sent


def replay_trace(
    trace,
    address: tuple[str, int],
    packet_rate: float = DEFAULT_PACKET_RATE,
    packet_bytes: int | None = None,
    pps: float | None = None,
    faults=None,
) -> int:
    """Encode ``trace`` and replay it to a listening daemon.

    Returns:
        Packets sent (after any ``faults`` datagram chaos).
    """
    return replay_datagrams(
        trace_datagrams(trace, packet_rate=packet_rate, packet_bytes=packet_bytes),
        address,
        pps=pps,
        faults=faults,
    )
