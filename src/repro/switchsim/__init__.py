"""P4-style software-switch simulator (the bmv2 substitute for Fig. 11)."""

from repro.switchsim.codegen import generate_p4
from repro.switchsim.costs import BMV2_BASELINE_KPPS, CostModel
from repro.switchsim.pipeline import (
    DROP_PORT,
    AclStage,
    L3ForwardStage,
    MeasurementStage,
    PacketContext,
    ParserStage,
    Pipeline,
    Stage,
)
from repro.switchsim.programs import (
    RegisterHashFlowFullStage,
    RegisterHashFlowStage,
    measurement_switch,
)
from repro.switchsim.registers import RegisterArray
from repro.switchsim.switch import SoftwareSwitch, SwitchRunReport

__all__ = [
    "BMV2_BASELINE_KPPS",
    "DROP_PORT",
    "AclStage",
    "CostModel",
    "L3ForwardStage",
    "MeasurementStage",
    "PacketContext",
    "ParserStage",
    "Pipeline",
    "RegisterArray",
    "RegisterHashFlowFullStage",
    "RegisterHashFlowStage",
    "SoftwareSwitch",
    "SwitchRunReport",
    "Stage",
    "generate_p4",
    "measurement_switch",
]
