"""A minimal P4-style packet-processing pipeline.

Models the dataplane shape of a bmv2 program: a parser producing header
fields, a sequence of match-action stages operating on a per-packet
context, and a deparser decision (output port or drop).  The
measurement algorithms plug in as stages, so "loading an algorithm onto
the switch" is literally adding a stage to the pipeline — mirroring how
the paper implements HashFlow and its competitors in bmv2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.flow.key import unpack_key
from repro.flow.packet import Packet
from repro.sketches.base import FlowCollector

DROP_PORT = -1


@dataclass(slots=True)
class PacketContext:
    """Mutable per-packet pipeline state (PHV analogue).

    Attributes:
        packet: the packet being processed.
        fields: parsed header fields.
        egress_port: forwarding decision — ``None`` while no stage has
            decided yet, :data:`DROP_PORT` for an explicit drop.
        metadata: scratch space stages may use to communicate.
    """

    packet: Packet
    fields: dict[str, int] = field(default_factory=dict)
    egress_port: int | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def dropped(self) -> bool:
        """Whether a stage has explicitly marked the packet for drop."""
        return self.egress_port == DROP_PORT


class Stage(ABC):
    """One pipeline stage."""

    name = "stage"

    @abstractmethod
    def apply(self, ctx: PacketContext) -> None:
        """Process one packet context in place."""


class ParserStage(Stage):
    """Parses the 5-tuple out of the packet key into header fields."""

    name = "parser"

    def apply(self, ctx: PacketContext) -> None:
        src_ip, dst_ip, src_port, dst_port, proto = unpack_key(ctx.packet.key)
        ctx.fields.update(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            proto=proto,
        )


class L3ForwardStage(Stage):
    """Destination-based forwarding via an exact-match table.

    Args:
        table: ``{dst_ip: egress port}`` entries.
        default_port: port used on a table miss (:data:`DROP_PORT`
            drops misses).
    """

    name = "l3_forward"

    def __init__(self, table: dict[int, int] | None = None, default_port: int = 0):
        self.table = dict(table or {})
        self.default_port = default_port

    def apply(self, ctx: PacketContext) -> None:
        if ctx.dropped:
            return  # an earlier stage (ACL) already dropped the packet
        dst = ctx.fields.get("dst_ip")
        ctx.egress_port = self.table.get(dst, self.default_port)


class AclStage(Stage):
    """A drop ACL keyed on protocol and/or destination port."""

    name = "acl"

    def __init__(
        self,
        blocked_protos: set[int] | None = None,
        blocked_dst_ports: set[int] | None = None,
    ):
        self.blocked_protos = set(blocked_protos or ())
        self.blocked_dst_ports = set(blocked_dst_ports or ())

    def apply(self, ctx: PacketContext) -> None:
        if ctx.fields.get("proto") in self.blocked_protos:
            ctx.egress_port = DROP_PORT
        elif ctx.fields.get("dst_port") in self.blocked_dst_ports:
            ctx.egress_port = DROP_PORT


class MeasurementStage(Stage):
    """Feeds each (non-dropped) packet into a flow collector.

    This is where HashFlow / HashPipe / ElasticSketch / FlowRadar sit in
    the bmv2 programs the paper evaluates.
    """

    name = "measurement"

    def __init__(self, collector: FlowCollector, measure_dropped: bool = False):
        self.collector = collector
        self.measure_dropped = measure_dropped

    def apply(self, ctx: PacketContext) -> None:
        if self.measure_dropped or not ctx.dropped:
            self.collector.process(ctx.packet.key)


class Pipeline:
    """An ordered list of stages applied to each packet."""

    def __init__(self, stages: list[Stage]):
        self.stages = list(stages)

    def process(self, packet: Packet) -> PacketContext:
        """Run one packet through all stages and return its final context."""
        ctx = PacketContext(packet=packet)
        for stage in self.stages:
            stage.apply(ctx)
        return ctx

    def stage_names(self) -> list[str]:
        """Names of the stages in order (program introspection)."""
        return [stage.name for stage in self.stages]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({' -> '.join(self.stage_names())})"
