"""Per-packet cost model calibrated to bmv2 (paper Section IV-D).

The paper measures throughput on bmv2, "which achieves around 20 Kpps
forwarding speed" unloaded, and reports the loaded throughput together
with the average number of hash operations and memory accesses per
packet (Fig. 11a-c).  We reproduce 11b/11c by *counting* the operations
our implementations actually perform, and 11a by charging each
operation a fixed cost on top of the baseline forwarding cost:

    t_packet = t_base + hashes * t_hash + accesses * t_access
    throughput = 1 / t_packet

``t_base`` is calibrated so an empty pipeline forwards at 20 Kpps; the
per-operation costs are chosen so the loaded throughputs land in the
few-Kpps band the paper shows, with the ranking determined entirely by
the measured operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sketches.base import CostMeter

#: bmv2 unloaded forwarding rate reported in the paper.
BMV2_BASELINE_KPPS = 20.0


@dataclass(frozen=True, slots=True)
class CostModel:
    """Additive per-packet processing-cost model.

    Attributes:
        base_us: fixed forwarding cost per packet (microseconds).
        hash_us: cost per hash computation.
        access_us: cost per register/memory access.
    """

    base_us: float = 1e3 / BMV2_BASELINE_KPPS  # 50 us -> 20 Kpps
    hash_us: float = 25.0
    access_us: float = 12.0

    def packet_cost_us(self, hashes: float, accesses: float) -> float:
        """Cost of one packet performing the given operation counts."""
        return self.base_us + hashes * self.hash_us + accesses * self.access_us

    def throughput_kpps(self, hashes_per_packet: float, accesses_per_packet: float) -> float:
        """Predicted throughput (Kpps) for the given per-packet averages."""
        return 1e3 / self.packet_cost_us(hashes_per_packet, accesses_per_packet)

    def throughput_from_meter(self, meter: CostMeter) -> float:
        """Predicted throughput for a collector's measured cost profile.

        A never-fed meter has no per-packet rates (``per_packet`` is
        all-NaN); an idle collector is predicted at the unloaded
        baseline rather than NaN.
        """
        if meter.packets == 0:
            return self.throughput_kpps(0.0, 0.0)
        per_packet = meter.per_packet()
        return self.throughput_kpps(per_packet["hashes"], per_packet["accesses"])
