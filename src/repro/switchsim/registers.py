"""P4-style stateful register arrays with access accounting.

On a programmable switch, algorithm state lives in register arrays read
and written by the match-action pipeline; each access costs memory
bandwidth.  :class:`RegisterArray` models one such array and charges
every access to a shared :class:`~repro.sketches.base.CostMeter`, so a
program built from registers gets the same accounting the paper's
Fig. 11(c) reports.
"""

from __future__ import annotations

from repro.sketches.base import CostMeter


class RegisterArray:
    """A bounded array of integer registers.

    Args:
        name: register name (for debugging / program introspection).
        size: number of registers.
        width_bits: register width; values are masked to this width on
            write, mirroring hardware truncation.
        meter: shared cost meter charged one read or write per access.
    """

    def __init__(self, name: str, size: int, width_bits: int, meter: CostMeter | None = None):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if width_bits <= 0:
            raise ValueError(f"width_bits must be positive, got {width_bits}")
        self.name = name
        self.size = size
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self.meter = meter if meter is not None else CostMeter()
        self._values = [0] * size

    def read(self, index: int) -> int:
        """Read one register (1 metered read)."""
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")
        self.meter.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write one register, masking to the register width (1 metered write)."""
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}[{index}] out of range (size {self.size})")
        self.meter.writes += 1
        self._values[index] = value & self._mask

    def read_modify_write(self, index: int, delta: int) -> int:
        """Atomic increment, the common switch ALU op (1 read + 1 write).

        Returns the post-increment value (masked).
        """
        value = (self.read(index) + delta) & self._mask
        self.write(index, value)
        return value

    def reset(self) -> None:
        """Zero all registers (not metered: control-plane operation)."""
        self._values = [0] * self.size

    def snapshot(self) -> list[int]:
        """Control-plane readout of all registers (not metered)."""
        return list(self._values)

    @property
    def memory_bits(self) -> int:
        """Array footprint in bits."""
        return self.size * self.width_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterArray({self.name!r}, size={self.size}, width={self.width_bits})"
