"""Prebuilt switch programs (the bmv2 P4 programs of the evaluation).

Builders assembling the standard pipelines used by the experiments:
parser -> (optional ACL) -> measurement -> forwarding.  A register-level
re-implementation of the HashFlow multi-hash update is also provided to
demonstrate that Algorithm 1 maps onto plain register arrays — i.e.
that it is implementable in a dataplane, which is the paper's P4 claim.
"""

from __future__ import annotations

from repro.hashing.families import HashFamily
from repro.sketches.base import CostMeter, FlowCollector
from repro.switchsim.costs import CostModel
from repro.switchsim.pipeline import (
    AclStage,
    L3ForwardStage,
    MeasurementStage,
    ParserStage,
    Pipeline,
    Stage,
)
from repro.switchsim.registers import RegisterArray
from repro.switchsim.switch import SoftwareSwitch


def measurement_switch(
    collector: FlowCollector,
    cost_model: CostModel | None = None,
    forwarding_table: dict[int, int] | None = None,
    acl: AclStage | None = None,
) -> SoftwareSwitch:
    """Build the evaluation switch: parser -> [acl] -> measurement -> L3.

    Args:
        collector: the measurement algorithm to load.
        cost_model: per-operation cost model (default: bmv2-calibrated).
        forwarding_table: optional ``{dst_ip: port}`` entries.
        acl: optional ACL stage inserted before measurement.

    Returns:
        A ready-to-run :class:`~repro.switchsim.switch.SoftwareSwitch`.
    """
    stages: list[Stage] = [ParserStage()]
    if acl is not None:
        stages.append(acl)
    stages.append(MeasurementStage(collector))
    stages.append(L3ForwardStage(forwarding_table, default_port=0))
    return SoftwareSwitch(Pipeline(stages), cost_model)


class RegisterHashFlowStage(Stage):
    """HashFlow's multi-hash main table expressed purely over registers.

    Three register arrays per bucket range — key-high, key-low and
    count — updated with the exact Algorithm 1 collision-resolution
    logic.  This is the dataplane-shaped rendering of the algorithm: no
    dicts, no unbounded state, a fixed probe budget of ``d`` per packet,
    and every state touch is a metered register access.

    (The full HashFlow, with ancillary table and promotion, is exercised
    through :class:`~repro.switchsim.pipeline.MeasurementStage`; this
    stage exists to validate register-level implementability and is used
    by tests and the switch example.)
    """

    name = "hashflow_registers"

    def __init__(self, n_cells: int, depth: int = 3, seed: int = 0):
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.meter = CostMeter()
        self.n_cells = n_cells
        self.depth = depth
        self._hashes = HashFamily(depth, master_seed=seed)
        self.key_hi = RegisterArray("key_hi", n_cells, 64, self.meter)
        self.key_lo = RegisterArray("key_lo", n_cells, 64, self.meter)
        self.count = RegisterArray("count", n_cells, 32, self.meter)

    def apply(self, ctx) -> None:
        self.update(ctx.packet.key)

    def update(self, key: int) -> bool:
        """Algorithm 1 lines 3-13 over registers; True if absorbed."""
        self.meter.packets += 1
        hi = key >> 64
        lo = key & 0xFFFFFFFFFFFFFFFF
        for h in self._hashes:
            idx = h.bucket(key, self.n_cells)
            self.meter.hashes += 1
            current = self.count.read(idx)
            if current == 0:
                self.key_hi.write(idx, hi)
                self.key_lo.write(idx, lo)
                self.count.write(idx, 1)
                return True
            if self.key_hi.read(idx) == hi and self.key_lo.read(idx) == lo:
                self.count.write(idx, current + 1)
                return True
        return False

    def records(self) -> dict[int, int]:
        """Control-plane readout of the register state as flow records."""
        hi = self.key_hi.snapshot()
        lo = self.key_lo.snapshot()
        counts = self.count.snapshot()
        return {
            (h << 64) | l: c
            for h, l, c in zip(hi, lo, counts)
            if c > 0
        }


class RegisterHashFlowFullStage(Stage):
    """The *complete* HashFlow — Algorithm 1 with ancillary table and
    record promotion — expressed purely over register arrays.

    Uses the same hash-family construction as
    :class:`repro.core.hashflow.HashFlow` with ``variant="multihash"``,
    so for identical ``(n_cells, depth, seed)`` the register program and
    the object-level collector produce *identical* table states — the
    equivalence the tests verify.  This substantiates the paper's claim
    that HashFlow fits a P4 dataplane: fixed probe budget, no pointers,
    every state touch a register access.
    """

    name = "hashflow_full_registers"

    def __init__(
        self,
        n_cells: int,
        depth: int = 3,
        seed: int = 0,
        digest_bits: int = 8,
        counter_bits: int = 8,
    ):
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.meter = CostMeter()
        self.n_cells = n_cells
        self.depth = depth
        self.digest_mask = (1 << digest_bits) - 1
        self.counter_max = (1 << counter_bits) - 1
        self._hashes = HashFamily(depth, master_seed=seed)
        aux = HashFamily(2, master_seed=seed ^ 0xA5C1_11A7)
        self._g1 = aux[0]
        self._digest_hash = aux[1]
        self.key_hi = RegisterArray("m_key_hi", n_cells, 64, self.meter)
        self.key_lo = RegisterArray("m_key_lo", n_cells, 64, self.meter)
        self.count = RegisterArray("m_count", n_cells, 32, self.meter)
        self.a_digest = RegisterArray("a_digest", n_cells, digest_bits, self.meter)
        self.a_count = RegisterArray("a_count", n_cells, counter_bits, self.meter)
        self.promotions = 0

    def apply(self, ctx) -> None:
        self.update(ctx.packet.key)

    def update(self, key: int) -> None:
        """Algorithm 1, lines 1-24, over registers."""
        self.meter.packets += 1
        hi = key >> 64
        lo = key & 0xFFFFFFFFFFFFFFFF
        min_count = -1
        pos = -1
        # Collision resolution over the main-table registers.
        for h in self._hashes:
            idx = h.bucket(key, self.n_cells)
            self.meter.hashes += 1
            current = self.count.read(idx)
            if current == 0:
                self.key_hi.write(idx, hi)
                self.key_lo.write(idx, lo)
                self.count.write(idx, 1)
                return
            if self.key_hi.read(idx) == hi and self.key_lo.read(idx) == lo:
                self.count.write(idx, current + 1)
                return
            if min_count < 0 or current < min_count:
                min_count = current
                pos = idx
        # Ancillary table with digest keys.
        a_idx = self._g1.bucket(key, self.n_cells)
        digest = self._digest_hash(key) & self.digest_mask
        self.meter.hashes += 2
        a_count = self.a_count.read(a_idx)
        if a_count == 0 or self.a_digest.read(a_idx) != digest:
            self.a_digest.write(a_idx, digest)
            self.a_count.write(a_idx, 1)
            return
        if a_count < min_count:
            if a_count < self.counter_max:
                self.a_count.write(a_idx, a_count + 1)
            else:
                self.a_count.write(a_idx, a_count)  # saturating write
            return
        # Record promotion into the sentinel bucket.
        self.key_hi.write(pos, hi)
        self.key_lo.write(pos, lo)
        self.count.write(pos, a_count + 1)
        self.promotions += 1

    def records(self) -> dict[int, int]:
        """Control-plane readout of the main-table registers."""
        hi = self.key_hi.snapshot()
        lo = self.key_lo.snapshot()
        counts = self.count.snapshot()
        return {
            (h << 64) | l: c
            for h, l, c in zip(hi, lo, counts)
            if c > 0
        }
