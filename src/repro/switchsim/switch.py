"""Software switch: a pipeline plus ports, counters and a run report.

The simulated analogue of the paper's bmv2 setup (Section IV-D): load a
measurement program, replay a trace through it, and report forwarding
statistics together with the modelled throughput derived from the
measurement stage's cost meter.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.flow.packet import Packet
from repro.sketches.base import CostMeter
from repro.switchsim.costs import CostModel
from repro.switchsim.pipeline import MeasurementStage, Pipeline
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class SwitchRunReport:
    """Result of replaying a trace through a switch.

    Attributes:
        packets: packets offered.
        forwarded: packets that left on some port.
        dropped: packets dropped by the pipeline.
        port_counts: per-egress-port packet counts.
        hashes_per_packet: measured average hash operations.
        accesses_per_packet: measured average memory accesses.
        throughput_kpps: modelled loaded throughput (Fig. 11a analogue).
    """

    packets: int
    forwarded: int
    dropped: int
    port_counts: dict[int, int]
    hashes_per_packet: float
    accesses_per_packet: float
    throughput_kpps: float


class SoftwareSwitch:
    """A P4-style software switch.

    Args:
        pipeline: the packet program.
        cost_model: per-operation cost model used to derive throughput.
    """

    def __init__(self, pipeline: Pipeline, cost_model: CostModel | None = None):
        self.pipeline = pipeline
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.port_counts: Counter[int] = Counter()
        self.packets = 0
        self.dropped = 0

    def _measurement_meter(self) -> CostMeter | None:
        """The cost meter of the first measurement stage, if any."""
        for stage in self.pipeline.stages:
            if isinstance(stage, MeasurementStage):
                return stage.collector.meter
        return None

    def inject(self, packet: Packet) -> int:
        """Process one packet; returns its egress port (-1 = dropped).

        A packet that leaves the pipeline without any forwarding
        decision is dropped, as on a real switch.
        """
        ctx = self.pipeline.process(packet)
        self.packets += 1
        if ctx.egress_port is None or ctx.dropped:
            self.dropped += 1
            return -1
        self.port_counts[ctx.egress_port] += 1
        return ctx.egress_port

    def run_trace(self, trace: Trace) -> SwitchRunReport:
        """Replay a trace and produce a :class:`SwitchRunReport`."""
        for packet in trace.packets():
            self.inject(packet)
        return self.report()

    def report(self) -> SwitchRunReport:
        """Summarize everything processed so far."""
        meter = self._measurement_meter()
        if meter is not None and meter.packets:
            per_packet = meter.per_packet()
            hashes = per_packet["hashes"]
            accesses = per_packet["accesses"]
        else:
            hashes = 0.0
            accesses = 0.0
        return SwitchRunReport(
            packets=self.packets,
            forwarded=self.packets - self.dropped,
            dropped=self.dropped,
            port_counts=dict(self.port_counts),
            hashes_per_packet=hashes,
            accesses_per_packet=accesses,
            throughput_kpps=self.cost_model.throughput_kpps(hashes, accesses),
        )

    def reset_counters(self) -> None:
        """Clear forwarding counters (pipeline state is untouched)."""
        self.port_counts.clear()
        self.packets = 0
        self.dropped = 0
