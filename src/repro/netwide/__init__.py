"""Network-wide measurement (extension of the paper's future work)."""

from repro.netwide.collector import CentralCollector, ExporterState
from repro.netwide.deployment import DeploymentReport, NetworkDeployment
from repro.netwide.merge import merge_max, merge_sum
from repro.netwide.sharding import ShardedCollector
from repro.netwide.topology import FlowRouter, fat_tree_core, linear_chain

__all__ = [
    "CentralCollector",
    "DeploymentReport",
    "ExporterState",
    "FlowRouter",
    "NetworkDeployment",
    "ShardedCollector",
    "fat_tree_core",
    "linear_chain",
    "merge_max",
    "merge_sum",
]
