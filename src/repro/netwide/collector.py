"""Central flow collector: the off-switch half of the system.

Switches export their records as NetFlow v5 datagrams
(:mod:`repro.export.netflow_v5`); the central collector ingests
datagrams from many exporters, deduplicates multi-switch observations
of the same flow (max-merge, see :mod:`repro.netwide.merge`), tracks
per-exporter sequence numbers to detect datagram loss, and answers the
same queries a :class:`~repro.sketches.base.FlowCollector` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.export.netflow_v5 import parse_datagram
from repro.sketches.base import gather_estimates


@dataclass
class ExporterState:
    """Bookkeeping for one exporter (switch).

    Attributes:
        datagrams: datagrams received.
        records: flow records received (before dedup).
        expected_sequence: next expected flow_sequence value.
        lost_flows: flows inferred lost from sequence gaps.
    """

    datagrams: int = 0
    records: int = 0
    expected_sequence: int | None = None
    lost_flows: int = 0
    flows: dict[int, int] = field(default_factory=dict)


class CentralCollector:
    """Aggregates NetFlow v5 exports from many switches.

    Per-flow counts are merged with ``max`` across exporters (every
    switch on a flow's path sees all of its packets, so the largest
    report is the most complete one — the HashFlow network-wide model).
    """

    def __init__(self):
        self.exporters: dict[str, ExporterState] = {}

    def ingest(self, exporter: str, datagram: bytes) -> int:
        """Ingest one datagram from a named exporter.

        Returns:
            The number of records in the datagram.

        Raises:
            ValueError: if the datagram is malformed (propagated from
                the parser; the exporter's state is not modified).
        """
        header, records = parse_datagram(datagram)
        state = self.exporters.setdefault(exporter, ExporterState())
        sequence = header["flow_sequence"]
        if state.expected_sequence is not None and sequence != state.expected_sequence:
            gap = sequence - state.expected_sequence
            if gap > 0:
                state.lost_flows += gap
        state.expected_sequence = sequence + header["count"]
        state.datagrams += 1
        state.records += len(records)
        for record in records:
            current = state.flows.get(record.key, 0)
            if record.packets > current:
                state.flows[record.key] = record.packets
        return len(records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> dict[int, int]:
        """Network-wide merged records (max across exporters)."""
        merged: dict[int, int] = {}
        for state in self.exporters.values():
            for key, count in state.flows.items():
                if count > merged.get(key, 0):
                    merged[key] = count
        return merged

    def query(self, key: int) -> int:
        """Best known packet count for ``key`` (0 if never exported)."""
        best = 0
        for state in self.exporters.values():
            count = state.flows.get(key, 0)
            if count > best:
                best = count
        return best

    def query_batch(self, keys) -> np.ndarray:
        """Batched queries: merge the exporters once, then dict-gather.

        The scalar query maxes over every exporter *per key*; here the
        max-merge happens once per batch (:meth:`records`) and each key
        is a single dict lookup — same answers, one pass.
        """
        return gather_estimates(self.records(), keys)

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Merged flows with more than ``threshold`` packets."""
        return {k: v for k, v in self.records().items() if v > threshold}

    def cardinality(self) -> int:
        """Distinct flows seen network-wide."""
        keys: set[int] = set()
        for state in self.exporters.values():
            keys.update(state.flows)
        return len(keys)

    def loss_report(self) -> dict[str, int]:
        """Flows inferred lost per exporter (sequence-number gaps)."""
        return {name: state.lost_flows for name, state in self.exporters.items()}

    def observation_counts(self) -> dict[int, int]:
        """How many exporters observed each flow (path-length proxy)."""
        counts: dict[int, int] = {}
        for state in self.exporters.values():
            for key in state.flows:
                counts[key] = counts.get(key, 0) + 1
        return counts
