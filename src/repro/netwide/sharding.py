"""Hash-sharded measurement: scale capacity across cooperating switches.

Network-wide measurement can do more than merge redundant observations
(:mod:`repro.netwide.deployment`): if a coordinator assigns each flow
to exactly one *owner* switch (by hashing its ID — the standard
DHT/ECMP-style partition), the deployment's capacity becomes the *sum*
of the switches' tables, with no duplicate records to reconcile.  This
module implements that sharding layer over any collector type and lets
its capacity-scaling claim be tested directly.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from repro.flow.batch import KeyBatch
from repro.hashing.families import HashFunction
from repro.sketches.base import FlowCollector
from repro.specs import CollectorSpec, as_spec, build, register


@register("sharded")
class ShardedCollector(FlowCollector):
    """A collector façade that hash-partitions flows over shards.

    Args:
        collector: what each shard runs — a :class:`CollectorSpec`
            (or spec dict / kind name / prototype collector), from
            which shard ``i``'s instance is built with a
            deterministically derived seed (``spec.reseed(i)``); or a
            legacy ``factory(shard_index)`` callable.
        n_shards: number of shards (owner switches).
        seed: seed of the shard-assignment hash (independent of every
            collector-internal hash).
    """

    name = "ShardedCollector"

    def __init__(
        self,
        collector: (
            CollectorSpec | FlowCollector | Mapping | str | Callable[[int], FlowCollector]
        ),
        n_shards: int,
        seed: int = 0,
    ):
        super().__init__()
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        self._shard_hash = HashFunction(seed ^ 0x5AAD)
        self._shard_spec: CollectorSpec | None = None
        if callable(collector) and not isinstance(collector, (FlowCollector, type)):
            # Legacy ad-hoc factory: not spec-describable.
            self.shards = [collector(i) for i in range(n_shards)]
        else:
            self._shard_spec = as_spec(collector)
            self.shards = [
                build(self._shard_spec.reseed(i)) for i in range(n_shards)
            ]

    def spec_params(self) -> dict:
        """Nested spec: the per-shard prototype, shard count, and the
        shard-assignment hash seed.

        Raises:
            SpecError: for instances built from a legacy callable.
        """
        if self._shard_spec is None:
            from repro.specs import SpecError

            raise SpecError(
                "ShardedCollector built from an ad-hoc factory callable "
                "cannot be described by a spec; pass a CollectorSpec instead"
            )
        return {
            "collector": self._shard_spec.to_dict(),
            "n_shards": self.n_shards,
            "seed": self.seed,
        }

    def shard_of(self, key: int) -> int:
        """The owner shard of a flow."""
        return self._shard_hash.bucket(key, self.n_shards)

    def process(self, key: int) -> None:
        """Route the packet to its owner shard."""
        self.meter.packets += 1
        self.meter.hashes += 1  # the coordinator's shard hash
        self.shards[self.shard_of(key)].process(key)

    def process_batch(self, keys) -> None:
        """Batched updates routed per owner shard.

        The update-side mirror of :meth:`query_batch`: shard owners for
        the whole batch come from one vectorized pass of the
        coordinator hash, and each shard ingests its own sub-batch
        (halves and sizes sliced, not re-split) through the inner
        collector's batched update path.  Shards partition the flow
        space, so per-shard arrival order — which the index slicing
        preserves — is the only ordering that affects table state;
        records, query answers and meter totals are bit-identical to
        the scalar per-packet routing.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if not n:
            return
        owners = self._shard_hash.buckets_batch(batch, self.n_shards)
        self.meter.add(packets=n, hashes=n)  # one coordinator hash each
        lo, hi = batch.halves()
        keys_list = batch.keys
        sizes = batch.sizes
        for s, shard in enumerate(self.shards):
            members = np.nonzero(owners == np.uint64(s))[0]
            if not len(members):
                continue
            sub = KeyBatch(
                [keys_list[i] for i in members.tolist()],
                lo[members],
                hi[members],
                None if sizes is None else sizes[members],
            )
            shard.process_batch(sub)

    def records(self) -> dict[int, int]:
        """Union of the shards' records (disjoint by construction)."""
        merged: dict[int, int] = {}
        for shard in self.shards:
            merged.update(shard.records())
        return merged

    def query(self, key: int) -> int:
        """Query the owner shard only."""
        return self.shards[self.shard_of(key)].query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched queries routed per owner shard.

        Shard assignments for the whole batch come from one vectorized
        pass of the coordinator hash; each shard then answers its own
        sub-batch (halves sliced, not re-split) through its collector's
        batched query, and the results scatter back into key order.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        out = np.zeros(n, dtype=np.int64)
        if not n:
            return out
        owners = self._shard_hash.buckets_batch(batch, self.n_shards)
        lo, hi = batch.halves()
        keys_list = batch.keys
        for s, shard in enumerate(self.shards):
            members = np.nonzero(owners == np.uint64(s))[0]
            if not len(members):
                continue
            sub = KeyBatch(
                [keys_list[i] for i in members.tolist()], lo[members], hi[members]
            )
            out[members] = shard.query_batch(sub)
        return out

    def estimate_cardinality(self) -> float:
        """Sum of the shards' estimates (flow spaces are disjoint)."""
        return sum(shard.estimate_cardinality() for shard in self.shards)

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Union of the shards' heavy hitters."""
        merged: dict[int, int] = {}
        for shard in self.shards:
            merged.update(shard.heavy_hitters(threshold))
        return merged

    def shard_loads(self) -> list[int]:
        """Packets processed per shard (balance diagnostic)."""
        return [shard.meter.packets for shard in self.shards]

    def reset(self) -> None:
        """Reset every shard and the façade meter."""
        for shard in self.shards:
            shard.reset()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Total memory across shards."""
        return sum(shard.memory_bits for shard in self.shards)
