"""Hash-sharded measurement: scale capacity across cooperating switches.

Network-wide measurement can do more than merge redundant observations
(:mod:`repro.netwide.deployment`): if a coordinator assigns each flow
to exactly one *owner* switch (by hashing its ID — the standard
DHT/ECMP-style partition), the deployment's capacity becomes the *sum*
of the switches' tables, with no duplicate records to reconcile.  This
module implements that sharding layer over any collector type and lets
its capacity-scaling claim be tested directly.
"""

from __future__ import annotations

import multiprocessing as mp
import warnings
from collections.abc import Callable, Mapping

import numpy as np

from repro.flow.batch import KeyBatch
from repro.hashing.families import HashFunction
from repro.sketches.base import FlowCollector
from repro.specs import CollectorSpec, as_spec, build, register


@register("sharded")
class ShardedCollector(FlowCollector):
    """A collector façade that hash-partitions flows over shards.

    Args:
        collector: what each shard runs — a :class:`CollectorSpec`
            (or spec dict / kind name / prototype collector), from
            which shard ``i``'s instance is built with a
            deterministically derived seed (``spec.reseed(i)``); or a
            legacy ``factory(shard_index)`` callable.
        n_shards: number of shards (owner switches).
        seed: seed of the shard-assignment hash (independent of every
            collector-internal hash).
        jobs: ingest worker processes.  ``None`` (default) follows the
            ``REPRO_SHARD_JOBS`` environment variable; 1 means serial;
            ``> 1`` turns on shared-memory shard-parallel ingest
            (:mod:`repro.shm`): shard tables live in one shared
            segment, batches are owner-partitioned once and ingested
            in place by a worker pool, with records, query answers and
            merged meters bit-identical to serial.  Requires a
            spec-described collector of a shareable kind
            (:data:`repro.shm.SHARED_PLANE_KINDS`).  An explicit value
            is recorded in the spec; the env-resolved default keeps
            specs portable across machines (the modes are
            bit-identical anyway).
    """

    name = "ShardedCollector"

    def __init__(
        self,
        collector: (
            CollectorSpec | FlowCollector | Mapping | str | Callable[[int], FlowCollector]
        ),
        n_shards: int,
        seed: int = 0,
        jobs: int | None = None,
    ):
        super().__init__()
        from repro.shm import resolve_shard_jobs

        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.seed = seed
        self._jobs_param = None if jobs is None else int(jobs)
        self._shard_hash = HashFunction(seed ^ 0x5AAD)
        self._shard_spec: CollectorSpec | None = None
        self._engine = None
        legacy = callable(collector) and not isinstance(
            collector, (FlowCollector, type)
        )
        if legacy:
            if jobs is not None and resolve_shard_jobs(jobs) > 1:
                from repro.specs import SpecError

                raise SpecError(
                    "ShardedCollector(jobs>1) needs to rebuild each shard "
                    "from its spec inside worker processes, so it cannot "
                    "accept an ad-hoc factory callable; pass a "
                    "CollectorSpec (or spec dict / kind name / prototype "
                    "collector) instead"
                )
            # Legacy ad-hoc factory: not spec-describable.  The env
            # default is deliberately ignored (a global REPRO_SHARD_JOBS
            # must not break existing factory users); ingest stays
            # serial.
            self.jobs = 1
            self.shards = [collector(i) for i in range(n_shards)]
            return
        self._shard_spec = as_spec(collector)
        self.jobs = self._resolve_jobs(resolve_shard_jobs(jobs))
        if self.jobs > 1:
            self._check_shareable()
            # reseed() first so shard i's derived seeds match the
            # serial build; storage="soa" only swaps the table layout
            # (bit-identical), making the planes shareable on any
            # kernel tier.
            self.shards = [
                build(self._shard_spec.reseed(i).with_params(storage="soa"))
                for i in range(n_shards)
            ]
            from repro.shm import ShardIngestEngine

            self._engine = ShardIngestEngine(
                self.shards,
                [shard.spec.to_dict() for shard in self.shards],
                self.jobs,
            )
        else:
            self.shards = [
                build(self._shard_spec.reseed(i)) for i in range(n_shards)
            ]

    def _resolve_jobs(self, jobs: int) -> int:
        """Clamp the resolved worker count to what can actually help."""
        if jobs > self.n_shards:
            # A worker without shards to own would idle: spans are
            # per-shard, so parallelism is capped by the shard count.
            jobs = self.n_shards
        if jobs > 1 and mp.current_process().daemon:
            # Daemonic processes (e.g. the parallel sweep engine's own
            # workers) cannot fork children; degrade to serial ingest
            # rather than crash — the modes are bit-identical.
            warnings.warn(
                "ShardedCollector: shard-parallel ingest needs child "
                "processes, which daemonic workers cannot spawn; "
                "falling back to jobs=1",
                RuntimeWarning,
                stacklevel=3,
            )
            jobs = 1
        return jobs

    def _check_shareable(self) -> None:
        """Raise unless the shard spec's planes can live in shared memory."""
        from repro.shm import SHARED_PLANE_KINDS

        if self._shard_spec.kind not in SHARED_PLANE_KINDS:
            from repro.specs import SpecError

            raise SpecError(
                f"ShardedCollector(jobs>1) requires a shard collector "
                f"whose state is shareable as SoA planes; kind "
                f"{self._shard_spec.kind!r} is not "
                f"(supported: {sorted(SHARED_PLANE_KINDS)})"
            )

    def spec_params(self) -> dict:
        """Nested spec: the per-shard prototype, shard count, and the
        shard-assignment hash seed.

        Raises:
            SpecError: for instances built from a legacy callable.
        """
        if self._shard_spec is None:
            from repro.specs import SpecError

            raise SpecError(
                "ShardedCollector built from an ad-hoc factory callable "
                "cannot be described by a spec; pass a CollectorSpec instead"
            )
        params = {
            "collector": self._shard_spec.to_dict(),
            "n_shards": self.n_shards,
            "seed": self.seed,
        }
        if self._jobs_param is not None:
            params["jobs"] = self._jobs_param
        return params

    def warm(self) -> None:
        """Pre-start the parallel-ingest worker pool (serial: no-op).

        Useful before timed regions: pool startup is a one-off cost
        otherwise paid by the first ``process_batch``.
        """
        if self._engine is not None:
            self._engine.warm()

    def close(self) -> None:
        """Release the parallel-ingest pool and shared segments.

        Idempotent; a no-op in serial mode.  The collector stays fully
        queryable afterwards (the parent's plane mappings survive the
        unlink), but further ``process*`` calls in parallel mode are
        rejected by the engine.
        """
        if self._engine is not None:
            self._engine.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def shard_of(self, key: int) -> int:
        """The owner shard of a flow."""
        return self._shard_hash.bucket(key, self.n_shards)

    def process(self, key: int) -> None:
        """Route the packet to its owner shard."""
        self.meter.packets += 1
        self.meter.hashes += 1  # the coordinator's shard hash
        self.shards[self.shard_of(key)].process(key)

    def process_batch(self, keys) -> None:
        """Batched updates routed per owner shard.

        The update-side mirror of :meth:`query_batch`: shard owners for
        the whole batch come from one vectorized pass of the
        coordinator hash, and each shard ingests its own sub-batch
        (halves and sizes sliced, not re-split) through the inner
        collector's batched update path.  Shards partition the flow
        space, so per-shard arrival order — which the index slicing
        preserves — is the only ordering that affects table state;
        records, query answers and meter totals are bit-identical to
        the scalar per-packet routing.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if not n:
            return
        owners = self._shard_hash.buckets_batch(batch, self.n_shards)
        self.meter.add(packets=n, hashes=n)  # one coordinator hash each
        lo, hi = batch.halves()
        sizes = batch.sizes
        if self._engine is not None:
            # Shard-parallel ingest: one stable partition of the SoA
            # planes, fanned out to the worker pool (repro.shm.ingest).
            self._engine.ingest(owners, lo, hi, sizes)
            return
        keys_list = batch.keys
        for s, shard in enumerate(self.shards):
            members = np.nonzero(owners == np.uint64(s))[0]
            if not len(members):
                continue
            sub = KeyBatch(
                [keys_list[i] for i in members.tolist()],
                lo[members],
                hi[members],
                None if sizes is None else sizes[members],
            )
            shard.process_batch(sub)

    def records(self) -> dict[int, int]:
        """Union of the shards' records (disjoint by construction)."""
        merged: dict[int, int] = {}
        for shard in self.shards:
            merged.update(shard.records())
        return merged

    def query(self, key: int) -> int:
        """Query the owner shard only."""
        return self.shards[self.shard_of(key)].query(key)

    def query_batch(self, keys) -> np.ndarray:
        """Batched queries routed per owner shard.

        Shard assignments for the whole batch come from one vectorized
        pass of the coordinator hash; each shard then answers its own
        sub-batch (halves sliced, not re-split) through its collector's
        batched query, and the results scatter back into key order.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        out = np.zeros(n, dtype=np.int64)
        if not n:
            return out
        owners = self._shard_hash.buckets_batch(batch, self.n_shards)
        lo, hi = batch.halves()
        keys_list = batch.keys
        for s, shard in enumerate(self.shards):
            members = np.nonzero(owners == np.uint64(s))[0]
            if not len(members):
                continue
            sub = KeyBatch(
                [keys_list[i] for i in members.tolist()], lo[members], hi[members]
            )
            out[members] = shard.query_batch(sub)
        return out

    def estimate_cardinality(self) -> float:
        """Sum of the shards' estimates (flow spaces are disjoint)."""
        return sum(shard.estimate_cardinality() for shard in self.shards)

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Union of the shards' heavy hitters."""
        merged: dict[int, int] = {}
        for shard in self.shards:
            merged.update(shard.heavy_hitters(threshold))
        return merged

    def shard_loads(self) -> list[int]:
        """Packets processed per shard (balance diagnostic)."""
        return [shard.meter.packets for shard in self.shards]

    def reset(self) -> None:
        """Reset every shard and the façade meter."""
        for shard in self.shards:
            shard.reset()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Total memory across shards."""
        return sum(shard.memory_bits for shard in self.shards)
