"""Merging flow records collected at multiple observation points.

A flow traverses several switches; each switch reports an (accurate or
partial) count.  Since every switch on the path sees *all* packets of
the flow, the best unbiased merge for counts is the maximum (a switch
that evicted the flow undercounts; none overcounts in HashFlow's
design).  ``merge_sum`` is provided for sampled observation points
where counts are disjoint shares rather than duplicates.
"""

from __future__ import annotations

from collections.abc import Iterable


def merge_max(record_sets: Iterable[dict[int, int]]) -> dict[int, int]:
    """Merge per-switch records, keeping the maximum count per flow."""
    merged: dict[int, int] = {}
    for records in record_sets:
        for key, count in records.items():
            if count > merged.get(key, 0):
                merged[key] = count
    return merged


def merge_sum(record_sets: Iterable[dict[int, int]]) -> dict[int, int]:
    """Merge records by summing counts (disjoint observation shares)."""
    merged: dict[int, int] = {}
    for records in record_sets:
        for key, count in records.items():
            merged[key] = merged.get(key, 0) + count
    return merged
