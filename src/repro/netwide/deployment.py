"""Network-wide measurement deployment.

Places a flow collector on every switch of a topology, replays a trace
through the routed per-switch streams, and merges the per-switch record
sets into a network-wide view.  Demonstrates the coverage gain of
network-wide collection: a flow missed by one overloaded switch is
often caught by another on its path.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.netwide.merge import merge_max
from repro.netwide.topology import FlowRouter
from repro.sketches.base import FlowCollector
from repro.specs import CollectorSpec, as_spec, build
from repro.traces.trace import Trace


@dataclass
class DeploymentReport:
    """Result of one network-wide run.

    Attributes:
        per_switch_records: each switch's reported records.
        merged_records: the network-wide merged record set.
        per_switch_packets: packets each switch processed.
    """

    per_switch_records: dict[str, dict[int, int]]
    merged_records: dict[int, int]
    per_switch_packets: dict[str, int]

    def coverage(self, true_flows: set[int]) -> float:
        """Network-wide FSC of the merged record set."""
        if not true_flows:
            return 1.0
        return len(true_flows.intersection(self.merged_records)) / len(true_flows)


class NetworkDeployment:
    """Collectors deployed across a routed topology.

    Args:
        router: flow router over the topology.
        collector: what every switch runs — a
            :class:`~repro.specs.CollectorSpec` (or spec dict / kind
            name / prototype collector), from which each switch's
            instance is built with a seed derived deterministically
            from the switch *name* (stable across processes, unlike
            ``hash(name)``); or a legacy ``factory(switch_name)``
            callable.
    """

    def __init__(
        self,
        router: FlowRouter,
        collector: (
            CollectorSpec | FlowCollector | Mapping | str | Callable[[str], FlowCollector]
        ),
    ):
        self.router = router
        self.spec: CollectorSpec | None = None
        if callable(collector) and not isinstance(collector, (FlowCollector, type)):
            self.collectors: dict[str, FlowCollector] = {
                name: collector(name) for name in router.graph.nodes
            }
        else:
            self.spec = as_spec(collector)
            self.collectors = {
                name: build(self.spec.reseed(name)) for name in router.graph.nodes
            }

    def run(self, trace: Trace) -> DeploymentReport:
        """Replay a trace network-wide and merge the records."""
        streams = self.router.split_trace(trace)
        per_switch_packets: dict[str, int] = {}
        for switch, keys in streams.items():
            per_switch_packets[switch] = self.collectors[switch].process_all(keys)
        per_switch_records = {
            switch: collector.records()
            for switch, collector in self.collectors.items()
        }
        merged = merge_max(per_switch_records.values())
        return DeploymentReport(
            per_switch_records=per_switch_records,
            merged_records=merged,
            per_switch_packets=per_switch_packets,
        )
