"""Network topologies for network-wide measurement (paper future work).

Builds small switch topologies (networkx graphs) and routes flows over
them with shortest paths, producing the per-switch packet streams a
network-wide deployment observes.  Section V of the paper lists
"network wide measurement" as planned work; this package supplies the
substrate for it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.traces.trace import Trace


def fat_tree_core(k_edge: int = 4, k_core: int = 2) -> nx.Graph:
    """A two-layer leaf/spine style topology.

    Args:
        k_edge: number of edge switches (each homes a share of hosts).
        k_core: number of core switches (each connects to every edge).

    Returns:
        A networkx graph whose nodes are switch names (``edge0``,
        ``core1``, ...).
    """
    if k_edge < 1 or k_core < 1:
        raise ValueError("k_edge and k_core must be >= 1")
    graph = nx.Graph()
    edges = [f"edge{i}" for i in range(k_edge)]
    cores = [f"core{i}" for i in range(k_core)]
    graph.add_nodes_from(edges, role="edge")
    graph.add_nodes_from(cores, role="core")
    for e in edges:
        for c in cores:
            graph.add_edge(e, c)
    return graph


def linear_chain(length: int = 3) -> nx.Graph:
    """A chain of switches (``sw0 - sw1 - ... - sw{length-1}``)."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    graph = nx.path_graph(length)
    return nx.relabel_nodes(graph, {i: f"sw{i}" for i in range(length)})


class FlowRouter:
    """Assigns each flow an ingress/egress switch pair and a path.

    Flows are pinned to edge switches by hashing their keys (stable
    across runs); paths are networkx shortest paths.

    Args:
        graph: switch topology.
        seed: salt for the ingress/egress assignment.
    """

    def __init__(self, graph: nx.Graph, seed: int = 0):
        self.graph = graph
        self.seed = seed
        self._edge_switches = sorted(
            n for n, data in graph.nodes(data=True) if data.get("role", "edge") == "edge"
        )
        if not self._edge_switches:
            self._edge_switches = sorted(graph.nodes)
        self._path_cache: dict[tuple[str, str], list[str]] = {}

    def endpoints(self, key: int) -> tuple[str, str]:
        """Deterministic (ingress, egress) switches for a flow."""
        n = len(self._edge_switches)
        rng = np.random.default_rng((key ^ self.seed) & 0xFFFFFFFF)
        src = self._edge_switches[int(rng.integers(0, n))]
        dst = self._edge_switches[int(rng.integers(0, n))]
        return src, dst

    def path(self, key: int) -> list[str]:
        """The switch path a flow's packets traverse."""
        src, dst = self.endpoints(key)
        if src == dst:
            return [src]
        cached = self._path_cache.get((src, dst))
        if cached is None:
            cached = nx.shortest_path(self.graph, src, dst)
            self._path_cache[(src, dst)] = cached
        return cached

    def split_trace(self, trace: Trace) -> dict[str, list[int]]:
        """Per-switch packet key streams for a trace.

        Every packet of a flow appears at every switch on the flow's
        path, in global arrival order (the view each switch's collector
        sees).
        """
        flow_paths = [self.path(key) for key in trace.flow_keys]
        streams: dict[str, list[int]] = {n: [] for n in self.graph.nodes}
        flow_keys = trace.flow_keys
        for idx in trace.order:
            key = flow_keys[idx]
            for switch in flow_paths[idx]:
                streams[switch].append(key)
        return streams

    def vantage_stream(self, trace: Trace) -> list[int]:
        """The multi-vantage observation stream of a routed trace.

        Concatenates the per-switch streams of :meth:`split_trace` in
        sorted switch order: a flow traversing three switches
        contributes its packets three times — the aggregate a
        network-wide collection point ingests (the
        :class:`~repro.stream.sources.NetwideSource` feed).
        """
        streams = self.split_trace(trace)
        merged: list[int] = []
        for switch in sorted(streams):
            merged.extend(streams[switch])
        return merged
