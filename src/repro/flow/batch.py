"""Key batches: the unit of work of the batch-update engine.

Flow keys are packed 104-bit integers (see :mod:`repro.flow.key`), so a
packet stream cannot live in a single ``np.uint64`` array.  A
:class:`KeyBatch` therefore carries the stream twice:

* ``keys`` — the Python-int sequence, used by table code (bucket
  contents are compared and stored as exact Python ints);
* ``lo`` / ``hi`` — the 64-bit halves of every key as ``np.uint64``
  arrays, the representation the vectorized mixers in
  :mod:`repro.hashing.mixers` consume.

The halves are built lazily: collectors without a vectorized update
path never pay for them.  :func:`iter_key_chunks` is the engine's
front door — it slices any key source (list, tuple, ``np.ndarray``,
prebuilt :class:`KeyBatch`, or arbitrary iterable) into bounded
chunks, converting numpy scalars to Python ints exactly once per
chunk (iterating an ``np.ndarray`` directly would yield ``np.int64``
objects whose arbitrary-precision arithmetic is several times slower
than built-in ints inside the mixers).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import islice

import numpy as np

from repro.hashing.mixers import split_keys

#: Default packets per chunk fed to ``FlowCollector.process_batch``.
#: Large enough to amortize numpy call overhead over the whole chunk,
#: small enough that the per-chunk index matrices stay cache-friendly.
DEFAULT_CHUNK_SIZE = 4096


class KeyBatch:
    """A batch of packed flow keys with lazily-split 64-bit halves.

    Args:
        keys: per-packet flow keys in arrival order (Python ints).
        lo: optional precomputed low halves (``np.uint64``, same length).
        hi: optional precomputed high halves (``np.uint64``, same length).
        sizes: optional per-packet byte sizes (``np.int64``, same
            length).  Collectors that track byte volumes (HashFlow's
            ``track_bytes``) read them from their batched update path;
            key-only consumers ignore them.
    """

    __slots__ = ("keys", "sizes", "_lo", "_hi")

    def __init__(
        self,
        keys: Sequence[int],
        lo: np.ndarray | None = None,
        hi: np.ndarray | None = None,
        sizes: np.ndarray | None = None,
    ):
        if (lo is None) != (hi is None):
            raise ValueError("lo and hi must be provided together")
        if lo is not None and (len(lo) != len(keys) or len(hi) != len(keys)):
            raise ValueError(
                f"halves length ({len(lo)}, {len(hi)}) != keys length {len(keys)}"
            )
        if sizes is not None:
            sizes = np.asarray(sizes, dtype=np.int64)
            if len(sizes) != len(keys):
                raise ValueError(
                    f"sizes length {len(sizes)} != keys length {len(keys)}"
                )
        self.keys = keys
        self.sizes = sizes
        self._lo = lo
        self._hi = hi

    @classmethod
    def coerce(cls, keys) -> KeyBatch:
        """Wrap any key source in a :class:`KeyBatch` (no-op if already one)."""
        if isinstance(keys, cls):
            return keys
        if isinstance(keys, np.ndarray):
            return cls(keys.tolist())
        if isinstance(keys, (list, tuple)):
            return cls(keys)
        return cls(list(keys))

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self) -> Iterator[int]:
        return iter(self.keys)

    def _split(self) -> None:
        # split_keys sees a plain sequence (not self), so it builds the
        # arrays rather than recursing into halves().
        self._lo, self._hi = split_keys(self.keys)

    @property
    def lo(self) -> np.ndarray:
        """Low 64 bits of every key (``np.uint64``)."""
        if self._lo is None:
            self._split()
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        """High bits (bit 64 and up) of every key (``np.uint64``)."""
        if self._hi is None:
            self._split()
        return self._hi

    def halves(self) -> tuple[np.ndarray, np.ndarray]:
        """Both 64-bit half arrays, building them on first use."""
        if self._lo is None:
            self._split()
        return self._lo, self._hi

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[KeyBatch]:
        """Yield consecutive sub-batches of at most ``chunk_size`` keys.

        Materialized halves (and sizes) are sliced (cheap numpy views),
        not rebuilt.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        n = len(self.keys)
        if n <= chunk_size:
            if n:
                yield self
            return
        lo, hi = self._lo, self._hi
        sizes = self.sizes
        for start in range(0, n, chunk_size):
            stop = start + chunk_size
            yield KeyBatch(
                self.keys[start:stop],
                None if lo is None else lo[start:stop],
                None if hi is None else hi[start:stop],
                None if sizes is None else sizes[start:stop],
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        split = "split" if self._lo is not None else "lazy"
        return f"KeyBatch(len={len(self.keys)}, {split})"


def iter_key_chunks(
    keys: Iterable[int], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[KeyBatch]:
    """Slice any packet-key source into :class:`KeyBatch` chunks.

    Accepts a prebuilt :class:`KeyBatch`, a ``np.ndarray`` (converted to
    Python ints once per chunk), a list/tuple (sliced, no copy of the
    whole stream), or any other iterable (drained through ``islice``).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(keys, KeyBatch):
        yield from keys.chunks(chunk_size)
        return
    if isinstance(keys, np.ndarray):
        for start in range(0, len(keys), chunk_size):
            yield KeyBatch(keys[start : start + chunk_size].tolist())
        return
    if isinstance(keys, (list, tuple)):
        n = len(keys)
        if n <= chunk_size:
            if n:
                yield KeyBatch(keys)
            return
        for start in range(0, n, chunk_size):
            yield KeyBatch(keys[start : start + chunk_size])
        return
    it = iter(keys)
    while True:
        chunk = list(islice(it, chunk_size))
        if not chunk:
            return
        yield KeyBatch(chunk)
