"""Flow identifiers: 104-bit packed 5-tuples.

The paper (Section IV-A) uses a 104-bit flow ID: source IPv4 address (32),
destination IPv4 address (32), source port (16), destination port (16) and
IP protocol (8).  Algorithms in this package operate on the packed integer
form for speed; :class:`FlowKey` provides the human-facing structured view
with parsing and formatting.

Layout (most-significant first)::

    [src_ip:32][dst_ip:32][src_port:16][dst_port:16][proto:8]
"""

from __future__ import annotations

from dataclasses import dataclass

FLOW_KEY_BITS = 104
FLOW_KEY_MASK = (1 << FLOW_KEY_BITS) - 1

_PROTO_NAMES = {1: "icmp", 6: "tcp", 17: "udp"}


def pack_key(src_ip: int, dst_ip: int, src_port: int, dst_port: int, proto: int) -> int:
    """Pack 5-tuple fields into a 104-bit integer flow key.

    Args:
        src_ip: source IPv4 address as a 32-bit integer.
        dst_ip: destination IPv4 address as a 32-bit integer.
        src_port: source transport port (16 bits).
        dst_port: destination transport port (16 bits).
        proto: IP protocol number (8 bits).

    Returns:
        The packed 104-bit key.

    Raises:
        ValueError: if any field is out of range.
    """
    if not 0 <= src_ip <= 0xFFFFFFFF:
        raise ValueError(f"src_ip out of range: {src_ip}")
    if not 0 <= dst_ip <= 0xFFFFFFFF:
        raise ValueError(f"dst_ip out of range: {dst_ip}")
    if not 0 <= src_port <= 0xFFFF:
        raise ValueError(f"src_port out of range: {src_port}")
    if not 0 <= dst_port <= 0xFFFF:
        raise ValueError(f"dst_port out of range: {dst_port}")
    if not 0 <= proto <= 0xFF:
        raise ValueError(f"proto out of range: {proto}")
    return (
        (src_ip << 72) | (dst_ip << 40) | (src_port << 24) | (dst_port << 8) | proto
    )


def unpack_key(key: int) -> tuple[int, int, int, int, int]:
    """Unpack a 104-bit key into ``(src_ip, dst_ip, src_port, dst_port, proto)``.

    Raises:
        ValueError: if ``key`` does not fit in 104 bits or is negative.
    """
    if not 0 <= key <= FLOW_KEY_MASK:
        raise ValueError(f"key out of range for 104-bit flow ID: {key}")
    proto = key & 0xFF
    dst_port = (key >> 8) & 0xFFFF
    src_port = (key >> 24) & 0xFFFF
    dst_ip = (key >> 40) & 0xFFFFFFFF
    src_ip = (key >> 72) & 0xFFFFFFFF
    return src_ip, dst_ip, src_port, dst_port, proto


def format_ip(addr: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 text."""
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer.

    Raises:
        ValueError: on malformed input.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    addr = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        addr = (addr << 8) | octet
    return addr


@dataclass(frozen=True, slots=True)
class FlowKey:
    """Structured view of a 5-tuple flow identifier.

    Attributes:
        src_ip: source IPv4 address (32-bit int).
        dst_ip: destination IPv4 address (32-bit int).
        src_port: source port.
        dst_port: destination port.
        proto: IP protocol number.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    def pack(self) -> int:
        """Return the packed 104-bit integer form of this key."""
        return pack_key(self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)

    @classmethod
    def unpack(cls, key: int) -> FlowKey:
        """Build a :class:`FlowKey` from its packed integer form."""
        return cls(*unpack_key(key))

    @classmethod
    def from_text(
        cls, src: str, dst: str, src_port: int, dst_port: int, proto: int
    ) -> FlowKey:
        """Build a key from dotted-quad addresses and numeric ports."""
        return cls(parse_ip(src), parse_ip(dst), src_port, dst_port, proto)

    def __str__(self) -> str:
        proto_name = _PROTO_NAMES.get(self.proto, str(self.proto))
        return (
            f"{format_ip(self.src_ip)}:{self.src_port} -> "
            f"{format_ip(self.dst_ip)}:{self.dst_port} ({proto_name})"
        )
