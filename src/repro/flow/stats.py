"""Flow-level statistics over packet streams.

Implements the statistics the paper reports about its traces: Table I
(max / mean flow size) and Fig. 3 (cumulative flow-size distribution),
plus the skewness observation from Section II ("7.7% of the flows
contribute more than 85% of the packets" in the campus trace).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass


def flow_sizes(keys: Iterable[int]) -> dict[int, int]:
    """Count packets per flow from a stream of packed flow keys.

    Args:
        keys: iterable of packed flow identifiers, one per packet.

    Returns:
        Mapping from flow key to its packet count (the ground-truth flow
        records an exact NetFlow would produce).
    """
    return dict(Counter(keys))


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Aggregate flow statistics of a trace (the paper's Table I row).

    Attributes:
        flows: number of distinct flows.
        packets: total number of packets.
        max_flow_size: packet count of the largest flow.
        mean_flow_size: average packets per flow.
    """

    flows: int
    packets: int
    max_flow_size: int
    mean_flow_size: float

    @classmethod
    def from_sizes(cls, sizes: dict[int, int]) -> TraceStats:
        """Compute stats from a ``{flow: packet count}`` mapping."""
        if not sizes:
            return cls(flows=0, packets=0, max_flow_size=0, mean_flow_size=0.0)
        packets = sum(sizes.values())
        return cls(
            flows=len(sizes),
            packets=packets,
            max_flow_size=max(sizes.values()),
            mean_flow_size=packets / len(sizes),
        )


def size_cdf(sizes: dict[int, int]) -> list[tuple[int, float]]:
    """Cumulative distribution of flow sizes (paper Fig. 3).

    Args:
        sizes: ``{flow: packet count}`` mapping.

    Returns:
        Sorted ``(size, fraction_of_flows_with_size <= size)`` points.
    """
    if not sizes:
        return []
    counts = Counter(sizes.values())
    total = len(sizes)
    points = []
    cumulative = 0
    for size in sorted(counts):
        cumulative += counts[size]
        points.append((size, cumulative / total))
    return points


def cdf_at(cdf: list[tuple[int, float]], size: int) -> float:
    """Evaluate a :func:`size_cdf` result at ``size`` (step function)."""
    value = 0.0
    for s, frac in cdf:
        if s > size:
            break
        value = frac
    return value


def top_fraction_share(sizes: dict[int, int], flow_fraction: float) -> float:
    """Fraction of packets carried by the largest ``flow_fraction`` of flows.

    Quantifies traffic skewness; the paper's campus trace has
    ``top_fraction_share(sizes, 0.077) > 0.85``.

    Args:
        sizes: ``{flow: packet count}`` mapping.
        flow_fraction: fraction of flows to take from the top, in [0, 1].

    Returns:
        Packet share in [0, 1] of the top flows.
    """
    if not 0.0 <= flow_fraction <= 1.0:
        raise ValueError(f"flow_fraction must be in [0, 1], got {flow_fraction}")
    if not sizes:
        return 0.0
    ordered = sorted(sizes.values(), reverse=True)
    take = max(1, round(len(ordered) * flow_fraction)) if flow_fraction > 0 else 0
    total = sum(ordered)
    return sum(ordered[:take]) / total if total else 0.0


def heavy_hitters(sizes: dict[int, int], threshold: int) -> dict[int, int]:
    """Ground-truth heavy hitters: flows with more than ``threshold`` packets.

    The paper (Section IV-A) defines heavy hitters as "flows with more
    than T packets".
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    return {k: v for k, v in sizes.items() if v > threshold}
