"""Flow and packet model: 104-bit 5-tuple keys, packets, flow statistics."""

from repro.flow.batch import DEFAULT_CHUNK_SIZE, KeyBatch, iter_key_chunks
from repro.flow.key import (
    FLOW_KEY_BITS,
    FLOW_KEY_MASK,
    FlowKey,
    format_ip,
    pack_key,
    parse_ip,
    unpack_key,
)
from repro.flow.packet import DEFAULT_PACKET_BYTES, Packet
from repro.flow.stats import (
    TraceStats,
    cdf_at,
    flow_sizes,
    heavy_hitters,
    size_cdf,
    top_fraction_share,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_PACKET_BYTES",
    "FLOW_KEY_BITS",
    "FLOW_KEY_MASK",
    "FlowKey",
    "KeyBatch",
    "Packet",
    "iter_key_chunks",
    "TraceStats",
    "cdf_at",
    "flow_sizes",
    "format_ip",
    "heavy_hitters",
    "pack_key",
    "parse_ip",
    "size_cdf",
    "top_fraction_share",
    "unpack_key",
]
