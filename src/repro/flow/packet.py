"""Packet model.

A packet, for the purposes of flow-record collection, is a flow key plus a
timestamp and a size in bytes.  The measurement algorithms only consume
the key; timestamps order packets within a trace and byte sizes feed the
traffic-volume statistics in :mod:`repro.flow.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.key import FlowKey

DEFAULT_PACKET_BYTES = 700  # the paper's example average packet size (Section I)


@dataclass(frozen=True, slots=True)
class Packet:
    """A single packet observation.

    Attributes:
        key: packed 104-bit flow identifier (see :mod:`repro.flow.key`).
        timestamp: arrival time in seconds since the start of the trace.
        size: packet length in bytes.
    """

    key: int
    timestamp: float = 0.0
    size: int = DEFAULT_PACKET_BYTES

    @property
    def flow(self) -> FlowKey:
        """The structured 5-tuple view of this packet's flow ID."""
        return FlowKey.unpack(self.key)

    def __str__(self) -> str:
        return f"Packet(t={self.timestamp:.6f}, {self.flow}, {self.size}B)"
