"""Deterministic fault injection for the serving stack (DESIGN §11).

Proving the recovery paths of a long-lived collection service needs
faults that are *repeatable*: "kill worker 1 the moment it has fed
5 000 packets" must mean the same thing on every run, or a chaos test
is just a flake generator.  This module describes faults as JSON-native
dicts, parses them into a :class:`FaultPlan`, and exposes the hooks the
rest of the package calls at its injection points:

* ``kill_worker`` — a serve worker SIGKILLs itself once its feeder has
  consumed ``at_packets`` packets (:mod:`repro.serve.daemon` checks
  after every ring batch).  ``incarnation`` (default 0) scopes the
  fault to one worker lifetime, so a respawned worker does not
  immediately re-trip it.
* ``stall_worker`` — the worker sleeps ``seconds`` once at the same
  trigger point, simulating a wedged ring consumer.
* ``sink_write`` — the ``nth`` physical durable-sink write attempt
  (1-based, counted process-wide by :mod:`repro.stream.durable`)
  raises ``OSError(errno)``; ``times`` consecutive attempts fail.
* ``datagram_chaos`` — the loopback replayer
  (:func:`repro.serve.replay.replay_datagrams`) drops, duplicates, or
  truncates datagrams with the given probabilities, driven by a seeded
  RNG so the mutation sequence is a pure function of ``seed``.

Plans install two ways: the ``REPRO_FAULTS`` environment variable (a
JSON list, or ``@path`` naming a JSON file) or a ``ServeSpec``'s
``faults`` field; the daemon merges both (spec first, env appended).
An empty environment means no faults — production code pays one dict
lookup per injection point and nothing else.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import random
import threading
from typing import Any, Iterable, Mapping, Sequence

#: Environment variable carrying a fault plan (JSON text or ``@file``).
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault kinds and their parameter schema
#: (``name: (required, default)``; default None marks a required param).
FAULT_KINDS: dict[str, dict[str, Any]] = {
    "kill_worker": {"worker": 0, "at_packets": None, "incarnation": 0},
    "stall_worker": {
        "worker": 0,
        "at_packets": None,
        "seconds": None,
        "incarnation": 0,
    },
    "sink_write": {"nth": None, "times": 1, "errno": _errno.ENOSPC},
    "datagram_chaos": {"seed": 0, "drop": 0.0, "dup": 0.0, "truncate": 0.0},
}


class FaultSpecError(ValueError):
    """A fault description that does not parse or validate."""


def _validated(entry: Mapping[str, Any]) -> dict[str, Any]:
    """One canonical fault dict from a raw mapping.

    Raises:
        FaultSpecError: unknown kind, unknown/missing params, bad types.
    """
    if not isinstance(entry, Mapping) or "kind" not in entry:
        raise FaultSpecError(f"not a fault mapping (needs 'kind'): {entry!r}")
    kind = entry["kind"]
    schema = FAULT_KINDS.get(kind)
    if schema is None:
        raise FaultSpecError(
            f"unknown fault kind {kind!r}; available: "
            f"{', '.join(sorted(FAULT_KINDS))}"
        )
    extra = set(entry) - set(schema) - {"kind"}
    if extra:
        raise FaultSpecError(f"unknown {kind} fault params {sorted(extra)}")
    fault: dict[str, Any] = {"kind": kind}
    for name, default in schema.items():
        if name in entry:
            value = entry[name]
        elif default is None:
            raise FaultSpecError(f"{kind} fault needs {name!r}: {entry!r}")
        else:
            value = default
        if name in ("worker", "at_packets", "incarnation", "nth", "times",
                    "errno", "seed"):
            value = int(value)
            if name in ("at_packets", "worker", "incarnation", "seed") and value < 0:
                raise FaultSpecError(f"{kind}.{name} must be >= 0, got {value}")
            if name in ("nth", "times") and value < 1:
                raise FaultSpecError(f"{kind}.{name} must be >= 1, got {value}")
        else:
            value = float(value)
            if name in ("drop", "dup", "truncate") and not 0.0 <= value <= 1.0:
                raise FaultSpecError(
                    f"{kind}.{name} must be a probability in [0, 1], got {value}"
                )
            if name == "seconds" and value < 0:
                raise FaultSpecError(f"{kind}.seconds must be >= 0, got {value}")
        fault[name] = value
    return fault


class FaultPlan:
    """A validated, deterministic set of faults plus their trigger state.

    The fault *descriptions* are immutable (:attr:`entries` round-trips
    through JSON); trigger state (which one-shot faults already fired,
    the process-wide sink-write counter) lives on the instance, so a
    fresh plan means fresh triggers.
    """

    def __init__(self, entries: Iterable[Mapping[str, Any]] = ()):
        self._entries = tuple(_validated(e) for e in entries)
        self._lock = threading.Lock()
        self._sink_writes = 0
        self._fired: set[tuple[int, str]] = set()

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a JSON fault list (or a single fault dict)."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultSpecError(f"invalid fault plan JSON: {exc}") from exc
        if isinstance(data, Mapping):
            data = [data]
        if not isinstance(data, Sequence):
            raise FaultSpecError(f"fault plan must be a JSON list: {text!r}")
        return cls(data)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULTS``, or None when unset.

        A value starting with ``@`` names a JSON file (CI-friendly:
        no shell quoting of nested JSON).
        """
        raw = (environ if environ is not None else os.environ).get(
            FAULTS_ENV, ""
        ).strip()
        if not raw:
            return None
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as fh:
                raw = fh.read()
        return cls.parse(raw)

    @classmethod
    def merged(cls, *parts) -> "FaultPlan | None":
        """One plan from several sources (dict lists, plans, or None)."""
        entries: list[Mapping[str, Any]] = []
        for part in parts:
            if part is None:
                continue
            if isinstance(part, FaultPlan):
                entries.extend(part.entries)
            else:
                entries.extend(part)
        return cls(entries) if entries else None

    @property
    def entries(self) -> tuple[dict[str, Any], ...]:
        """The canonical fault dicts (JSON-native, validated)."""
        return self._entries

    def to_json(self) -> str:
        return json.dumps(list(self._entries), sort_keys=True)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(e["kind"] for e in self._entries)
        return f"FaultPlan([{kinds}])"

    # ------------------------------------------------------------------
    # Worker-side hooks (repro.serve.daemon)
    # ------------------------------------------------------------------
    def _worker_due(
        self, kind: str, worker: int, incarnation: int, packets: int
    ):
        for index, fault in enumerate(self._entries):
            if fault["kind"] != kind:
                continue
            if fault["worker"] != worker or fault["incarnation"] != incarnation:
                continue
            if packets < fault["at_packets"]:
                continue
            key = (index, f"w{worker}i{incarnation}")
            with self._lock:
                if key in self._fired:
                    continue
                self._fired.add(key)
            return fault
        return None

    def kill_due(self, worker: int, incarnation: int, packets: int) -> bool:
        """Whether a ``kill_worker`` fault fires at this point (one-shot)."""
        return self._worker_due("kill_worker", worker, incarnation, packets) is not None

    def stall_due(self, worker: int, incarnation: int, packets: int) -> float:
        """Seconds a due ``stall_worker`` fault asks to sleep (0 = none)."""
        fault = self._worker_due("stall_worker", worker, incarnation, packets)
        return 0.0 if fault is None else fault["seconds"]

    # ------------------------------------------------------------------
    # Sink-side hook (repro.stream.durable)
    # ------------------------------------------------------------------
    def sink_write_error(self) -> OSError | None:
        """Count one physical sink write; the injected error, if due.

        The counter is process-wide across every durable write this
        plan observes, so "the Mth sink write" means the Mth attempt
        anywhere in the process — which is what a chaos scenario
        scripts against.
        """
        with self._lock:
            self._sink_writes += 1
            ordinal = self._sink_writes
        for fault in self._entries:
            if fault["kind"] != "sink_write":
                continue
            if fault["nth"] <= ordinal < fault["nth"] + fault["times"]:
                code = fault["errno"]
                return OSError(code, f"injected sink fault: {os.strerror(code)}")
        return None

    @property
    def sink_writes(self) -> int:
        """Physical sink write attempts observed so far."""
        return self._sink_writes

    # ------------------------------------------------------------------
    # Replay-side hook (repro.serve.replay)
    # ------------------------------------------------------------------
    def mutate_datagrams(self, datagrams: Sequence[bytes]) -> list[bytes]:
        """Apply every ``datagram_chaos`` fault, deterministically.

        Each fault walks the stream with its own ``random.Random(seed)``
        so the mutation sequence is a pure function of (seed, input) —
        two runs of the same plan over the same datagrams produce the
        same wire stream.
        """
        out = list(datagrams)
        for fault in self._entries:
            if fault["kind"] != "datagram_chaos":
                continue
            rng = random.Random(fault["seed"])
            mutated: list[bytes] = []
            for datagram in out:
                if rng.random() < fault["drop"]:
                    continue
                if rng.random() < fault["truncate"]:
                    datagram = datagram[: rng.randrange(len(datagram) + 1)]
                mutated.append(datagram)
                if rng.random() < fault["dup"]:
                    mutated.append(datagram)
            out = mutated
        return out


# ----------------------------------------------------------------------
# Process-wide active plan (the durable-write layer's lookup point)
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str, FaultPlan | None] | None = None


def activate(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` as the process's active plan (None clears it)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def deactivate() -> None:
    """Clear any explicitly installed plan (env plans still apply)."""
    activate(None)


def active() -> FaultPlan | None:
    """The plan injection points consult: the installed one, else
    ``REPRO_FAULTS`` (parsed once per distinct env value so one-shot
    trigger state survives across calls)."""
    if _ACTIVE is not None:
        return _ACTIVE
    global _ENV_CACHE
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.from_env())
    return _ENV_CACHE[1]


__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpecError",
    "activate",
    "active",
    "deactivate",
]
