"""Experiment harness: memory budgeting, runners, figure regeneration."""

from repro.experiments.config import (
    DEFAULT_MEMORY_BYTES,
    build_all,
    build_elastic,
    build_flowradar,
    build_hashflow,
    build_hashpipe,
    resolve_scale,
)
from repro.experiments.ascii_plot import line_chart, plot_result
from repro.experiments.figures import EXPERIMENTS
from repro.experiments.report import pivot, render_table, save_result
from repro.experiments.runner import ExperimentResult, Workload, make_workload

__all__ = [
    "DEFAULT_MEMORY_BYTES",
    "EXPERIMENTS",
    "ExperimentResult",
    "Workload",
    "build_all",
    "build_elastic",
    "build_flowradar",
    "build_hashflow",
    "build_hashpipe",
    "line_chart",
    "make_workload",
    "pivot",
    "plot_result",
    "render_table",
    "resolve_scale",
    "save_result",
]
