"""Experiment harness: runners, figure regeneration, reporting.

Collector construction now goes through the spec registry
(:mod:`repro.specs`); the ``build_*`` names re-exported here are the
deprecated shims from :mod:`repro.experiments.config`.
"""

from repro.experiments.ascii_plot import line_chart, plot_result
from repro.experiments.config import (
    DEFAULT_MEMORY_BYTES,
    build_all,
    build_elastic,
    build_flowradar,
    build_hashflow,
    build_hashpipe,
    resolve_scale,
)
from repro.experiments.figures import EXPERIMENTS
from repro.experiments.report import pivot, render_table, save_result
from repro.experiments.runner import ExperimentResult, Workload, make_workload
from repro.specs import build, build_evaluated

__all__ = [
    "DEFAULT_MEMORY_BYTES",
    "EXPERIMENTS",
    "ExperimentResult",
    "Workload",
    "build",
    "build_all",
    "build_elastic",
    "build_evaluated",
    "build_flowradar",
    "build_hashflow",
    "build_hashpipe",
    "line_chart",
    "make_workload",
    "pivot",
    "plot_result",
    "render_table",
    "resolve_scale",
    "save_result",
]
