"""Generic experiment running: workloads, feeding, result containers.

An :class:`ExperimentResult` is the canonical output of every
table/figure regeneration: a set of named columns plus data rows, with
enough metadata to render an ASCII table and to record paper-vs-measured
comparisons in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import average_relative_error
from repro.flow.batch import KeyBatch
from repro.sketches.base import FlowCollector
from repro.traces.profiles import TraceProfile
from repro.traces.trace import Trace


@dataclass
class ExperimentResult:
    """Tabular result of one experiment.

    Attributes:
        experiment_id: e.g. ``"fig6"`` or ``"table1"``.
        title: human-readable description.
        columns: ordered column names.
        rows: data rows (one dict per row, keyed by column name).
        params: experiment parameters for the record.
        notes: free-form remarks (deviations, scale factors, ...).
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    params: dict = field(default_factory=dict)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append a row; unknown keys raise to catch typos early."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row keys {sorted(unknown)} not in columns {self.columns}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        """Extract one column across all rows (missing values -> None)."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def filter_rows(self, **conditions) -> list[dict]:
        """Rows matching all ``column == value`` conditions."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]


class Workload:
    """A prepared trial input: a trace plus its materialized key stream.

    Feeding the *same* packet stream to each algorithm (as the paper
    does) is the expensive part of every experiment; this class
    materializes it once and reuses it.  The stream is kept as a
    :class:`~repro.flow.batch.KeyBatch` whose pre-split 64-bit halves
    are shared by every collector fed through :meth:`feed`, so the
    vectorized update paths never re-split keys per algorithm.

    The evaluation side is materialized once too: ``truth_batch`` holds
    the distinct true flows (halves shared with the stream batch, so
    they are never re-split per metric) and ``truth_counts`` their
    ground-truth sizes as one ``np.int64`` vector — the inputs of the
    batch-query metrics path (:meth:`query_estimates` /
    :meth:`size_are`).
    """

    def __init__(self, trace: Trace):
        self.trace = trace
        self.batch = trace.key_batch()
        self.keys = self.batch.keys
        self.true_sizes = trace.true_sizes()
        counts = trace.flow_size_array()
        flow_lo, flow_hi = trace.flow_batch().halves()
        if counts.all():
            self.truth_batch = trace.flow_batch()
            self.truth_counts = counts.astype(np.int64)
        else:
            # Flows with zero packets (possible after subsetting) are
            # not part of the ground truth, exactly as in true_sizes().
            present = np.nonzero(counts)[0]
            self.truth_batch = KeyBatch(
                [trace.flow_keys[i] for i in present.tolist()],
                flow_lo[present],
                flow_hi[present],
            )
            self.truth_counts = counts[present].astype(np.int64)

    @property
    def num_flows(self) -> int:
        """Distinct flows in the workload."""
        return self.trace.num_flows

    @property
    def num_packets(self) -> int:
        """Packets in the workload."""
        return len(self.keys)

    def feed(self, collector: FlowCollector) -> FlowCollector:
        """Feed the full stream into a collector and return it."""
        collector.process_all(self.batch)
        return collector

    def query_estimates(self, collector: FlowCollector) -> np.ndarray:
        """Batched point queries for every true flow, in truth order.

        One ``query_batch`` call over the cached truth batch — the
        query-side twin of :meth:`feed` — aligned with
        ``truth_counts``.
        """
        return collector.query_batch(self.truth_batch)

    def size_are(self, collector: FlowCollector) -> float:
        """Size-estimation ARE of a fed collector over all true flows,
        computed through the batched query path."""
        return average_relative_error(
            self.query_estimates(collector), self.truth_counts
        )


def make_workload(
    profile: TraceProfile,
    n_flows: int,
    seed: int = 0,
    base_flows: int | None = None,
) -> Workload:
    """Generate a trial workload from a profile.

    The profile trace is generated at ``max(base_flows, n_flows)`` flows
    and the trial subset of ``n_flows`` flows is drawn from it, matching
    the paper's procedure of selecting a constant number of flows from a
    fixed trace.

    Args:
        profile: one of the four calibrated profiles.
        n_flows: flows in the trial.
        seed: generation + selection seed.
        base_flows: size of the base trace (default: exactly
            ``n_flows``, which skips the subsetting cost).
    """
    base = n_flows if base_flows is None else max(base_flows, n_flows)
    trace = profile.generate(n_flows=base, seed=seed)
    if base > n_flows:
        trace = trace.subset_flows(n_flows, seed=seed + 1)
    return Workload(trace)
