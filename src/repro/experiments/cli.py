"""Command-line entry point: experiments, figures, and spec-driven runs.

Examples::

    repro-experiments list
    repro-experiments run fig6 --scale 0.1 --plot
    repro-experiments run fig6 --jobs 4       # multi-core sweep execution
    repro-experiments run all --out results/
    repro-experiments sweep fig4 --seeds 0 1 2 --metric are
    repro-experiments collect --collector hashflow --memory 262144 --flows 20000
    repro-experiments collect --spec collector.json --trace campus
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.analysis.metrics import flow_set_coverage
from repro.analysis.significance import summarize
from repro.experiments.ascii_plot import PLOT_SPECS, plot_result
from repro.experiments.figures import EXPERIMENTS
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.specs import SpecError, available_kinds, build, load_spec, save_spec
from repro.traces.profiles import PROFILES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the HashFlow paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="list available experiments and registered collector kinds"
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (e.g. fig6) or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="size factor vs the paper (default: REPRO_SCALE env or 0.1; "
        "1.0 = paper scale)",
    )
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep-shaped experiments (default: "
        "REPRO_JOBS env or serial; 0 = one per CPU); results are "
        "bit-identical at any job count",
    )
    run.add_argument(
        "--out", default=None, help="directory to save rendered tables into"
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render the figure as ASCII charts (line figures only)",
    )

    sweep = sub.add_parser(
        "sweep", help="run one experiment across seeds and report mean/std"
    )
    sweep.add_argument("experiment", help="experiment id (e.g. fig4)")
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2], help="seeds to run"
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument(
        "--metric",
        default=None,
        help="numeric column to aggregate (default: last column)",
    )

    collect = sub.add_parser(
        "collect",
        help="build a collector from the registry, replay a trace, report metrics",
    )
    source = collect.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--collector",
        metavar="KIND",
        help=f"registered collector kind (one of: {', '.join(available_kinds())})",
    )
    source.add_argument(
        "--spec",
        metavar="FILE.json",
        help="build from a CollectorSpec JSON file instead of a kind name",
    )
    collect.add_argument(
        "--memory",
        type=int,
        default=None,
        help="memory budget in bytes (sized via the kind's registered rule)",
    )
    collect.add_argument("--seed", type=int, default=None, help="hash seed override")
    collect.add_argument(
        "--trace",
        default="caida",
        choices=sorted(PROFILES),
        help="synthetic trace profile to replay (default: caida)",
    )
    collect.add_argument(
        "--flows", type=int, default=20_000, help="flows in the replayed trace"
    )
    collect.add_argument(
        "--save-spec",
        metavar="FILE.json",
        default=None,
        help="write the built collector's spec to a JSON file",
    )
    return parser


def run_experiment(
    name: str,
    scale: float | None,
    seed: int,
    out: str | None,
    plot: bool = False,
    jobs: int | None = None,
) -> None:
    """Run one registered experiment, print it, optionally save/plot it."""
    func = EXPERIMENTS[name]
    kwargs = {"scale": scale, "seed": seed}
    if "jobs" in inspect.signature(func).parameters:
        # Sweep-shaped experiments execute their cell plan through
        # repro.parallel; model-only figures have no jobs parameter.
        kwargs["jobs"] = jobs
    start = time.perf_counter()
    result = func(**kwargs)
    elapsed = time.perf_counter() - start
    print(render_table(result))
    print(f"# elapsed: {elapsed:.1f}s\n")
    if plot:
        if name in PLOT_SPECS:
            print(plot_result(result))
            print()
        else:
            print(f"# (no chart layout for {name}; table only)\n")
    if out:
        path = save_result(result, out)
        print(f"# saved to {path}\n")


def run_sweep(
    name: str, seeds: list[int], scale: float | None, metric: str | None
) -> None:
    """Run an experiment per seed and summarize one numeric column.

    The metric is aggregated per (non-seed) row group; groups are keyed
    by every non-metric column so the output mirrors the single-run
    table with mean ± std cells.
    """
    func = EXPERIMENTS[name]
    results = [func(scale=scale, seed=seed) for seed in seeds]
    columns = results[0].columns
    metric = metric or columns[-1]
    if metric not in columns:
        raise SystemExit(f"metric {metric!r} not in columns {columns}")
    key_cols = [c for c in columns if c != metric]
    grouped: dict[tuple, list[float]] = {}
    for result in results:
        for row in result.rows:
            key = tuple(row.get(c) for c in key_cols)
            value = row.get(metric)
            if isinstance(value, (int, float)):
                grouped.setdefault(key, []).append(float(value))
    header = " | ".join([*key_cols, f"{metric} (mean ± std over {len(seeds)} seeds)"])
    print(f"# sweep {name}: seeds={seeds}")
    print(header)
    print("-" * len(header))
    for key, values in grouped.items():
        stats = summarize(values)
        cells = [str(k) for k in key]
        cells.append(f"{stats.mean:.4f} ± {stats.std:.4f}")
        print(" | ".join(cells))


def run_collect(args) -> int:
    """Build a collector (kind or spec file), replay a trace, report."""
    try:
        source = load_spec(args.spec) if args.spec else args.collector
        collector = build(source, memory_bytes=args.memory, seed=args.seed)
    except (SpecError, OSError, ValueError) as exc:
        # ValueError: constructor validation of sized params (e.g. a
        # budget too small to fit even one cell per table).
        print(f"cannot build collector: {exc}", file=sys.stderr)
        return 2
    print(f"# collector: {collector!r}")
    print(f"# spec: {collector.spec.to_json()}")
    workload = make_workload(PROFILES[args.trace], args.flows, seed=args.seed or 0)
    start = time.perf_counter()
    workload.feed(collector)
    elapsed = time.perf_counter() - start
    records = collector.records()
    result = ExperimentResult(
        experiment_id="collect",
        title=f"{collector.name} on {args.trace} ({args.flows} flows)",
        columns=["metric", "value"],
        params={"trace": args.trace, "flows": args.flows},
    )
    result.add_row(metric="packets", value=workload.num_packets)
    result.add_row(metric="records", value=len(records))
    result.add_row(
        metric="fsc", value=round(flow_set_coverage(records, workload.true_sizes), 4)
    )
    result.add_row(metric="size_are", value=round(workload.size_are(collector), 4))
    result.add_row(
        metric="cardinality_est", value=round(collector.estimate_cardinality(), 1)
    )
    result.add_row(metric="memory_bytes", value=int(collector.memory_bytes))
    print(render_table(result))
    print(f"# elapsed: {elapsed:.1f}s")
    if args.save_spec:
        save_spec(collector.spec, args.save_spec)
        print(f"# spec saved to {args.save_spec}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        print("# experiments")
        for name, func in EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        print("\n# collector kinds (repro.specs registry)")
        for kind in available_kinds():
            print(kind)
        return 0
    if args.command == "collect":
        return run_collect(args)
    if args.command == "sweep":
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
            return 2
        run_sweep(args.experiment, args.seeds, args.scale, args.metric)
        return 0
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        run_experiment(
            name, args.scale, args.seed, args.out, plot=args.plot, jobs=args.jobs
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
