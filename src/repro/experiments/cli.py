"""Command-line entry point: experiments, figures, and spec-driven runs.

Examples::

    repro-experiments list
    repro-experiments run fig6 --scale 0.1 --plot
    repro-experiments run fig6 --jobs 4       # multi-core sweep execution
    repro-experiments run all --out results/
    repro-experiments sweep fig4 --seeds 0 1 2 --metric are
    repro-experiments collect --collector hashflow --memory 262144 --flows 20000
    repro-experiments collect --spec collector.json --trace campus
    repro-experiments stream --trace caida --flows 20000 --rotate timeout \\
        --sink netflow --sink jsonl --save-spec pipeline.json
    repro-experiments stream --spec pipeline.json
    repro-experiments collect --collector hashflow --kernel native
    repro-experiments kernels
    repro-experiments serve --listen 2055 --rotate interval:10
    repro-experiments serve --replay caida:5000 --jobs 2 --save-spec serve.json
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.analysis.metrics import flow_set_coverage
from repro.analysis.significance import summarize
from repro.experiments.ascii_plot import PLOT_SPECS, plot_result
from repro.experiments.figures import EXPERIMENTS
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.native import KERNELS, kernel_info
from repro.specs import (
    SpecError,
    available_kinds,
    build,
    load_spec,
    resolve_scale,
    save_spec,
)
from repro.traces.profiles import PROFILES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the HashFlow paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "list", help="list available experiments and registered collector kinds"
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (e.g. fig6) or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="size factor vs the paper (default: REPRO_SCALE env or 0.1; "
        "1.0 = paper scale)",
    )
    run.add_argument("--seed", type=int, default=0, help="experiment seed")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep-shaped experiments (default: "
        "REPRO_JOBS env or serial; 0 = one per CPU); results are "
        "bit-identical at any job count",
    )
    run.add_argument(
        "--out", default=None, help="directory to save rendered tables into"
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render the figure as ASCII charts (line figures only)",
    )

    sweep = sub.add_parser(
        "sweep", help="run one experiment across seeds and report mean/std"
    )
    sweep.add_argument("experiment", help="experiment id (e.g. fig4)")
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2], help="seeds to run"
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument(
        "--metric",
        default=None,
        help="numeric column to aggregate (default: last column)",
    )

    collect = sub.add_parser(
        "collect",
        help="build a collector from the registry, replay a trace, report metrics",
    )
    source = collect.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--collector",
        metavar="KIND",
        help=f"registered collector kind (one of: {', '.join(available_kinds())})",
    )
    source.add_argument(
        "--spec",
        metavar="FILE.json",
        help="build from a CollectorSpec JSON file instead of a kind name",
    )
    collect.add_argument(
        "--memory",
        type=int,
        default=None,
        help="memory budget in bytes (sized via the kind's registered rule)",
    )
    collect.add_argument("--seed", type=int, default=None, help="hash seed override")
    collect.add_argument(
        "--trace",
        default="caida",
        choices=sorted(PROFILES),
        help="synthetic trace profile to replay (default: caida)",
    )
    collect.add_argument(
        "--flows", type=int, default=20_000, help="flows in the replayed trace"
    )
    collect.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="execution tier (native = compiled C kernels, bit-identical "
        "to numpy; default: REPRO_KERNEL env or numpy)",
    )
    collect.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard-parallel ingest workers for sharded collectors "
        "(default: REPRO_SHARD_JOBS env or serial; 0 = one per CPU); "
        "results are bit-identical at any job count",
    )
    collect.add_argument(
        "--save-spec",
        metavar="FILE.json",
        default=None,
        help="write the built collector's spec to a JSON file",
    )

    stream = sub.add_parser(
        "stream",
        help="run a streaming pipeline: source -> collector -> rotation -> sinks",
    )
    stream.add_argument(
        "--spec",
        metavar="FILE.json",
        default=None,
        help="run a PipelineSpec JSON file (other stage flags are ignored)",
    )
    stream.add_argument(
        "--trace",
        default="caida",
        choices=sorted(PROFILES),
        help="synthetic trace profile to stream (default: caida)",
    )
    stream.add_argument(
        "--flows", type=int, default=20_000, help="flows in the streamed trace"
    )
    stream.add_argument(
        "--collector",
        metavar="KIND",
        default="hashflow",
        help="registered collector kind (default: hashflow)",
    )
    stream.add_argument(
        "--memory",
        type=int,
        default=None,
        help="collector memory budget in bytes (default: the paper's 1 MB "
        "budget at the REPRO_SCALE factor)",
    )
    stream.add_argument(
        "--scale",
        type=float,
        default=None,
        help="size factor applied to the memory budget (default: REPRO_SCALE "
        "env or 0.1)",
    )
    stream.add_argument("--seed", type=int, default=0, help="hash / trace seed")
    stream.add_argument(
        "--rotate",
        metavar="POLICY",
        default="timeout",
        help="rotation policy: 'count:N' (N-packet epochs), 'interval:W' "
        "(W-second windows), 'timeout[:INACTIVE[,ACTIVE[,SWEEP]]]' (RFC "
        "3954 expiry; default), or 'none' (one end-of-stream export)",
    )
    stream.add_argument(
        "--sink",
        metavar="SINK",
        action="append",
        default=None,
        help="sink to attach (repeatable): netflow, jsonl[:PATH], csv[:PATH], "
        "archive, heavy_hitters:T, cardinality, anomaly[:MIN_FANOUT] "
        "(default: netflow + archive)",
    )
    stream.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="collector execution tier (native = compiled C kernels, "
        "bit-identical to numpy; default: REPRO_KERNEL env or numpy)",
    )
    stream.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard-parallel ingest workers for sharded collectors "
        "(default: REPRO_SHARD_JOBS env or serial; 0 = one per CPU); "
        "results are bit-identical at any job count",
    )
    stream.add_argument(
        "--save-spec",
        metavar="FILE.json",
        default=None,
        help="write the pipeline's spec to a JSON file",
    )

    serve = sub.add_parser(
        "serve",
        help="run the live collection daemon: UDP NetFlow v5 ingest over "
        "shared-memory rings, rotating under load",
    )
    serve.add_argument(
        "--spec",
        metavar="FILE.json",
        default=None,
        help="run a ServeSpec JSON file (stage flags are ignored; "
        "--listen/--jobs/--duration still apply)",
    )
    serve.add_argument(
        "--listen",
        metavar="[HOST:]PORT",
        default=None,
        help="listen address override (port 0 binds an ephemeral port and "
        "prints it; default: the spec's, else 127.0.0.1:2055)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds to serve before draining (default: until SIGTERM/SIGINT; "
        "with --replay and no duration, the daemon drains after the replay)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="collector worker processes (default: the spec's, else 1); more "
        "than one requires a sharded collector (composed specs are wrapped "
        "automatically)",
    )
    serve.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        help="seconds between stats lines (default: spec / "
        "REPRO_SERVE_STATS_INTERVAL / 5)",
    )
    serve.add_argument(
        "--ring-slots",
        type=int,
        default=None,
        help="packet slots per worker ring, a power of two (default: spec / "
        "REPRO_SERVE_RING_SLOTS / 65536)",
    )
    serve.add_argument(
        "--backpressure",
        choices=("block", "drop"),
        default=None,
        help="full-ring policy: block (lossless) or drop (shed + count; "
        "default: spec / REPRO_SERVE_BACKPRESSURE / block)",
    )
    serve.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        help="worker respawns allowed within --restart-window before a "
        "death is a hard fault (default: spec, else 0 = fail fast)",
    )
    serve.add_argument(
        "--restart-window",
        type=float,
        default=None,
        help="sliding window in seconds the restart budget counts over "
        "(default: spec, else 30)",
    )
    serve.add_argument(
        "--on-worker-loss",
        choices=("auto", "replay", "drop"),
        default=None,
        help="disposition of a dead worker's ring-resident packets: "
        "replay to the respawn (lossless) or drop as `lost` (default: "
        "auto — block back-pressure replays, drop back-pressure drops)",
    )
    serve.add_argument(
        "--replay",
        metavar="PROFILE:FLOWS[:PPS]",
        default=None,
        help="soak mode: replay a synthetic trace into the daemon over "
        "loopback UDP (unpaced unless PPS is given); REPRO_FAULTS "
        "datagram_chaos entries mutate the replayed stream",
    )
    serve.add_argument(
        "--collector",
        metavar="KIND",
        default="hashflow",
        help="registered collector kind for composed specs (default: hashflow)",
    )
    serve.add_argument(
        "--memory",
        type=int,
        default=None,
        help="collector memory budget in bytes (default: the paper's 1 MB "
        "budget at the REPRO_SCALE factor)",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=None,
        help="size factor applied to the memory budget (default: REPRO_SCALE "
        "env or 0.1)",
    )
    serve.add_argument("--seed", type=int, default=0, help="hash seed")
    serve.add_argument(
        "--rotate",
        metavar="POLICY",
        default="interval:10",
        help="rotation policy for composed specs (same grammar as stream; "
        "default: interval:10 — 10-second wall-clock windows)",
    )
    serve.add_argument(
        "--sink",
        metavar="SINK",
        action="append",
        default=None,
        help="sink to attach (repeatable, same grammar as stream; "
        "default: netflow + archive)",
    )
    serve.add_argument(
        "--save-spec",
        metavar="FILE.json",
        default=None,
        help="write the daemon's ServeSpec to a JSON file",
    )

    query = sub.add_parser(
        "query",
        help="query a flow store: ingest archives, merge the hierarchy, "
        "answer topk/lookup/cardinality from summaries",
    )
    query.add_argument(
        "action",
        choices=("ingest", "merge", "topk", "lookup", "cardinality", "ls"),
        help="what to do against the store",
    )
    query.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="flow store root directory (created on first ingest)",
    )
    query.add_argument(
        "--vantage",
        metavar="NAME",
        action="append",
        default=None,
        help="vantage to ingest into / query over (repeatable for "
        "queries; default: every vantage in the store)",
    )
    query.add_argument(
        "--archive",
        metavar="DIR",
        default=None,
        help="ingest: a durable rotation-archive directory (MANIFEST.json)",
    )
    query.add_argument(
        "--nfv5",
        metavar="FILE",
        default=None,
        help="ingest: a raw concatenated NetFlow v5 capture (one window)",
    )
    query.add_argument(
        "--append",
        action="store_true",
        help="ingest: place new windows after the vantage's existing ones",
    )
    query.add_argument(
        "-k", type=int, default=10, help="topk: result size (default 10)"
    )
    query.add_argument(
        "--key",
        metavar="KEY",
        default=None,
        help="lookup: packed flow key, or SRCIP:SPORT-DSTIP:DPORT/PROTO",
    )
    query.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="answer over each vantage's most recent N windows",
    )
    query.add_argument(
        "--start", type=int, default=None, help="lowest window index included"
    )
    query.add_argument(
        "--stop", type=int, default=None, help="highest window index, inclusive"
    )
    query.add_argument(
        "--merge",
        choices=("max", "sum"),
        default="max",
        help="cross-vantage merge: max (duplicate sightings, default) "
        "or sum (disjoint shares)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON result instead of a table",
    )

    sub.add_parser(
        "kernels",
        help="report kernel-tier availability: compiler, build cache, library",
    )
    return parser


def _parse_rotation(text: str) -> dict | None:
    """Parse a ``--rotate`` value into a rotation stage spec."""
    name, _, arg = text.partition(":")
    if name == "none":
        if arg:
            raise SystemExit(f"--rotate none takes no argument: {text!r}")
        return None
    if name == "count":
        if not arg:
            raise SystemExit("--rotate count needs a packet budget (count:N)")
        return {"kind": "count", "params": {"epoch_packets": int(arg)}}
    if name == "interval":
        if not arg:
            raise SystemExit("--rotate interval needs a window (interval:SECONDS)")
        return {"kind": "interval", "params": {"window": float(arg)}}
    if name == "timeout":
        params = {}
        if arg:
            values = [float(v) for v in arg.split(",")]
            keys = ("inactive_timeout", "active_timeout", "expiry_interval")
            if len(values) > len(keys):
                raise SystemExit(f"--rotate timeout takes at most 3 values: {text!r}")
            params = dict(zip(keys, values))
            if "expiry_interval" in params:
                params["expiry_interval"] = int(params["expiry_interval"])
        return {"kind": "timeout", "params": params}
    raise SystemExit(f"unknown rotation policy {text!r}")


def _parse_sink(text: str) -> dict:
    """Parse a ``--sink`` value into a sink stage spec."""
    name, _, arg = text.partition(":")
    if name in ("netflow", "netflow_v5", "archive", "cardinality"):
        if arg:
            raise SystemExit(f"--sink {name} takes no argument: {text!r}")
        return {"kind": "netflow_v5" if name == "netflow" else name}
    if name in ("jsonl", "csv"):
        return {"kind": name, "params": {"path": arg} if arg else {}}
    if name == "anomaly":
        # Optional fan-out threshold: anomaly:MIN_FANOUT.
        return {"kind": "anomaly",
                "params": {"min_fanout": int(arg)} if arg else {}}
    if name in ("heavy_hitters", "hh"):
        if not arg:
            raise SystemExit("--sink heavy_hitters needs a threshold (heavy_hitters:T)")
        return {"kind": "heavy_hitters", "params": {"threshold": int(arg)}}
    if name == "store":
        if not arg:
            raise SystemExit(
                "--sink store needs a root directory (store:DIR[,VANTAGE])"
            )
        root, _, vantage = arg.partition(",")
        params = {"root": root}
        if vantage:
            params["vantage"] = vantage
        return {"kind": "store", "params": params}
    raise SystemExit(f"unknown sink {text!r}")


def _parse_listen(text: str) -> tuple[str, int]:
    """Parse a ``--listen`` value (``[HOST:]PORT``) into an address."""
    host, _, port = text.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"bad --listen address {text!r} (expected [HOST:]PORT)")


def _parse_replay(text: str) -> tuple[str, int, float | None]:
    """Parse a ``--replay`` value (``PROFILE:FLOWS[:PPS]``)."""
    parts = text.split(":")
    if len(parts) not in (2, 3) or parts[0] not in PROFILES:
        raise SystemExit(
            f"bad --replay {text!r} (expected PROFILE:FLOWS[:PPS] with a "
            f"profile from: {', '.join(sorted(PROFILES))})"
        )
    try:
        flows = int(parts[1])
        pps = float(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise SystemExit(f"bad --replay {text!r} (FLOWS and PPS must be numbers)")
    return parts[0], flows, pps


def run_serve(args) -> int:
    """Build (or load) a serve spec and run the live collection daemon."""
    import signal
    import threading

    from repro.serve import (
        ServeDaemon,
        ServeSpec,
        env_serve_defaults,
        load_serve_spec,
        replay_trace,
        save_serve_spec,
    )

    replay = _parse_replay(args.replay) if args.replay else None
    try:
        overrides = {}
        if args.jobs is not None:
            overrides["workers"] = args.jobs
        if args.ring_slots is not None:
            overrides["ring_slots"] = args.ring_slots
        if args.backpressure is not None:
            overrides["backpressure"] = args.backpressure
        if args.stats_interval is not None:
            overrides["stats_interval"] = args.stats_interval
        if args.max_restarts is not None:
            overrides["max_restarts"] = args.max_restarts
        if args.restart_window is not None:
            overrides["restart_window"] = args.restart_window
        if args.on_worker_loss is not None:
            overrides["on_worker_loss"] = args.on_worker_loss
        if args.spec:
            spec = load_serve_spec(args.spec)
            if overrides:
                spec = ServeSpec.from_dict({**spec.to_dict(), **overrides})
        else:
            # Composed specs carry fully resolved collector params (as
            # in `stream`): budget and scale are applied once, here.
            scale = args.scale
            if args.memory is None and scale is None:
                scale = resolve_scale(None)
            collector = build(
                args.collector, memory_bytes=args.memory, scale=scale, seed=args.seed
            ).spec.to_dict()
            workers = overrides.get("workers", 1)
            if workers > 1 and collector["kind"] != "sharded":
                # Multi-worker serving needs a home shard per flow key;
                # wrap the composed collector one-shard-per-worker.
                collector = {
                    "kind": "sharded",
                    "params": {
                        "collector": collector,
                        "n_shards": workers,
                        "seed": args.seed,
                    },
                }
            pipeline = {
                "source": {"kind": "udp", "params": {"host": "127.0.0.1", "port": 2055}},
                "collector": collector,
                "rotation": _parse_rotation(args.rotate),
                "sinks": [_parse_sink(s) for s in (args.sink or ["netflow", "archive"])],
            }
            spec = ServeSpec(pipeline=pipeline, **{**env_serve_defaults(), **overrides})
        if args.listen:
            spec = spec.with_listen(*_parse_listen(args.listen))
        if args.save_spec:
            save_serve_spec(spec, args.save_spec)
            print(f"# serve spec saved to {args.save_spec}")
        daemon = ServeDaemon(spec)
    except (SpecError, OSError, ValueError) as exc:
        print(f"cannot build serve daemon: {exc}", file=sys.stderr)
        return 2

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: daemon.request_stop())

    try:
        address = daemon.bind()
    except OSError as exc:
        print(f"cannot bind {spec.listen[0]}:{spec.listen[1]}: {exc}", file=sys.stderr)
        return 2

    replayer = None
    replayed = {"packets": 0}
    if replay is not None:
        profile, flows, pps = replay
        trace = PROFILES[profile].generate(n_flows=flows, seed=args.seed)
        packet_rate = spec.pipeline_spec.packet_rate
        drain_after = args.duration is None

        def _replay() -> None:
            replayed["packets"] = replay_trace(
                trace,
                address,
                packet_rate=packet_rate,
                pps=pps,
                faults=daemon.fault_plan,
            )
            if drain_after:
                # Everything was sent over loopback; once the daemon has
                # pulled it all off the socket, ask for the drain.
                deadline = time.monotonic() + 30.0
                while (
                    daemon.packets_received < replayed["packets"]
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.02)
                daemon.request_stop()

        replayer = threading.Thread(target=_replay, name="serve-replay", daemon=True)
        replayer.start()

    try:
        result = daemon.run(duration=args.duration)
    except RuntimeError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    if replayer is not None:
        replayer.join(timeout=10.0)

    table = ExperimentResult(
        experiment_id="serve",
        title=f"serve daemon ({spec.workers} worker(s), "
        f"{spec.backpressure} back-pressure)",
        columns=["metric", "value"],
        params={"workers": spec.workers, "backpressure": spec.backpressure},
    )
    table.add_row(metric="datagrams", value=result.datagrams)
    table.add_row(metric="packets", value=result.packets)
    if replay is not None:
        table.add_row(metric="replayed_packets", value=replayed["packets"])
    table.add_row(metric="drops", value=result.drops)
    table.add_row(metric="fed", value=result.fed)
    table.add_row(metric="lost", value=result.lost)
    table.add_row(metric="restarts", value=len(result.restarts))
    table.add_row(
        metric="degraded_rotations",
        value=",".join(str(r) for r in result.degraded) or "none",
    )
    if result.recv_errors:
        table.add_row(
            metric="recv_errors",
            value=",".join(f"{k}:{v}" for k, v in sorted(result.recv_errors.items())),
        )
    table.add_row(
        metric="accounting",
        value="exact" if result.accounting_exact else "VIOLATED",
    )
    table.add_row(metric="rotations", value=result.rotations)
    table.add_row(metric="exported_records", value=result.exported)
    table.add_row(metric="flows", value=len(result.records))
    for label, summary in result.sinks.items():
        for key, value in summary.items():
            table.add_row(metric=f"{label}.{key}", value=value)
    print(render_table(table))
    print(f"# elapsed: {result.elapsed:.1f}s")
    if not result.accounting_exact:
        print(
            f"serve accounting violated: fed={result.fed} + drops={result.drops} "
            f"+ lost={result.lost} != received={result.packets}",
            file=sys.stderr,
        )
        return 1
    return 0


def run_stream(args) -> int:
    """Build (or load) a pipeline spec, run it, verify NetFlow parse-back."""
    from repro.stream import NetFlowV5Sink, Pipeline, load_pipeline_spec, save_pipeline_spec

    try:
        _apply_shard_jobs(args.jobs)
        if args.spec:
            pipeline_spec = load_pipeline_spec(args.spec)
        else:
            # Spec-driven pipelines carry fully resolved collector
            # params, so the memory budget and scale are applied here,
            # once, at composition time.  Without an explicit budget the
            # paper's 1 MB default is sized at REPRO_SCALE.
            scale = args.scale
            if args.memory is None and scale is None:
                scale = resolve_scale(None)
            overrides = {"kernel": args.kernel} if args.kernel else {}
            collector = build(
                args.collector,
                memory_bytes=args.memory,
                scale=scale,
                seed=args.seed,
                **overrides,
            )
            sinks = [_parse_sink(s) for s in (args.sink or ["netflow", "archive"])]
            pipeline = Pipeline(
                source={
                    "kind": "synthetic",
                    "params": {
                        "profile": args.trace,
                        "n_flows": args.flows,
                        "seed": args.seed,
                    },
                },
                collector=collector,
                rotation=_parse_rotation(args.rotate),
                sinks=sinks,
            )
            pipeline_spec = pipeline.spec
        if args.save_spec:
            save_pipeline_spec(pipeline_spec, args.save_spec)
            print(f"# pipeline spec saved to {args.save_spec}")
        pipeline = Pipeline.from_spec(pipeline_spec)
    except (SpecError, OSError, ValueError) as exc:
        print(f"cannot build pipeline: {exc}", file=sys.stderr)
        return 2

    print(f"# pipeline: {pipeline_spec!r}")
    start = time.perf_counter()
    result = pipeline.run()
    elapsed = time.perf_counter() - start
    table = ExperimentResult(
        experiment_id="stream",
        title=f"streaming pipeline ({pipeline_spec.source['kind']} -> "
        f"{pipeline_spec.collector['kind']})",
        columns=["metric", "value"],
        params={"source": pipeline_spec.source["kind"]},
    )
    table.add_row(metric="packets", value=result.packets)
    table.add_row(metric="rotations", value=result.rotations)
    table.add_row(metric="exported_records", value=result.exported)
    table.add_row(metric="flows", value=len(result.records))
    for label, summary in result.sinks.items():
        for key, value in summary.items():
            table.add_row(metric=f"{label}.{key}", value=value)
    print(render_table(table))
    print(f"# elapsed: {elapsed:.1f}s")

    # Every NetFlow sink must decode back to exactly the records the
    # pipeline reports — the wire format loses nothing.
    for sink in pipeline.sinks:
        if isinstance(sink, NetFlowV5Sink):
            ok = sink.parse_back() == result.records
            print(f"# netflow parse-back: {'OK' if ok else 'MISMATCH'}")
            if not ok:
                return 1
    getattr(pipeline.collector, "close", lambda: None)()
    return 0


def _parse_flow_key(text: str) -> int:
    """Parse a ``--key`` value: packed int or SRCIP:SPORT-DSTIP:DPORT/PROTO."""
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        endpoints, _, proto = text.rpartition("/")
        src, _, dst = endpoints.partition("-")
        src_ip, _, src_port = src.rpartition(":")
        dst_ip, _, dst_port = dst.rpartition(":")
        from repro.flow.key import FlowKey

        return FlowKey.from_text(
            src_ip, dst_ip, int(src_port), int(dst_port), int(proto)
        ).pack()
    except (ValueError, TypeError):
        raise SystemExit(
            f"bad --key {text!r} (expected a packed integer or "
            "SRCIP:SPORT-DSTIP:DPORT/PROTO)"
        )


def run_query(args) -> int:
    """Run one flow-store action: ingest/merge or a summary query."""
    import json as _json

    from repro.flowdb import FlowStore, QuerySpec, StoreError, execute
    from repro.stream.durable import ArchiveError

    try:
        store = FlowStore(args.store)
    except (SpecError, StoreError, OSError) as exc:
        print(f"cannot open store: {exc}", file=sys.stderr)
        return 2
    vantages = args.vantage or []

    try:
        if args.action == "ingest":
            if bool(args.archive) == bool(args.nfv5):
                raise SystemExit("ingest needs exactly one of --archive / --nfv5")
            vantage = vantages[0] if vantages else "default"
            if args.archive:
                windows = store.ingest_archive(vantage, args.archive, args.append)
            else:
                windows = store.ingest_netflow_file(vantage, args.nfv5, args.append)
            print(
                f"# ingested {len(windows)} windows into "
                f"{vantage!r}: {windows}"
            )
            return 0
        if args.action == "merge":
            for vantage in vantages or store.vantages():
                written = store.merge_up(vantage)
                levels = sorted({ref.level for ref in written})
                print(
                    f"# merged {vantage!r}: {len(written)} parent nodes "
                    f"at levels {levels or '(up to date)'}"
                )
            return 0
        if args.action == "ls":
            info = store.describe()
            if args.json:
                print(_json.dumps(info, sort_keys=True))
                return 0
            print(f"# store {info['root']} (fanout {info['fanout']})")
            for vantage, detail in info["vantages"].items():
                windows = detail["windows"]
                span = (
                    f"{windows[0]}..{windows[-1]}" if windows else "(empty)"
                )
                degraded = detail["degraded_windows"]
                print(
                    f"{vantage:16s} windows {span} ({len(windows)}), "
                    f"levels {sorted(detail['levels'])}"
                    + (f", degraded {degraded}" if degraded else "")
                )
            return 0

        spec = QuerySpec(
            op=args.action,
            k=args.k,
            key=None if args.key is None else _parse_flow_key(args.key),
            vantages=tuple(vantages),
            last=args.last,
            start=args.start,
            stop=args.stop,
            merge=args.merge,
        )
        answer = execute(store, spec)
    except (ArchiveError, StoreError, SpecError, OSError) as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(_json.dumps(answer, sort_keys=True))
        return 0
    covered = {v: p["windows"] for v, p in answer["vantages"].items()}
    print(f"# {spec.op} over {covered} (merge={spec.merge})")
    if answer["degraded"]:
        tainted = {
            v: p["degraded_windows"]
            for v, p in answer["vantages"].items()
            if p["degraded_windows"]
        }
        print(f"# WARNING degraded windows covered: {tainted}")
    table = ExperimentResult(
        experiment_id="query",
        title=f"flow store {spec.op}",
        columns=["metric", "value"],
        params={"store": args.store, "op": spec.op},
    )
    if spec.op == "topk":
        table.columns = ["rank", "flow", "packets"]
        for rank, row in enumerate(answer["results"], 1):
            table.add_row(rank=rank, flow=row["flow"], packets=row["packets"])
    elif spec.op == "lookup":
        table.add_row(metric="flow", value=answer["flow"])
        table.add_row(metric="found", value=answer["found"])
        table.add_row(metric="packets", value=answer["packets"])
        table.add_row(metric="octets", value=answer["octets"])
        for vantage, detail in answer["by_vantage"].items():
            table.add_row(metric=f"{vantage}.packets", value=detail["packets"])
            for point in detail["series"]:
                table.add_row(
                    metric=f"{vantage}.w{point['window']}",
                    value=point["packets"],
                )
    else:
        table.add_row(metric="flows", value=answer["flows"])
        for vantage, flows in answer["by_vantage"].items():
            table.add_row(metric=f"{vantage}.flows", value=flows)
    print(render_table(table))
    return 0


def run_experiment(
    name: str,
    scale: float | None,
    seed: int,
    out: str | None,
    plot: bool = False,
    jobs: int | None = None,
) -> None:
    """Run one registered experiment, print it, optionally save/plot it."""
    func = EXPERIMENTS[name]
    kwargs = {"scale": scale, "seed": seed}
    if "jobs" in inspect.signature(func).parameters:
        # Sweep-shaped experiments execute their cell plan through
        # repro.parallel; model-only figures have no jobs parameter.
        kwargs["jobs"] = jobs
    start = time.perf_counter()
    result = func(**kwargs)
    elapsed = time.perf_counter() - start
    print(render_table(result))
    print(f"# elapsed: {elapsed:.1f}s\n")
    if plot:
        if name in PLOT_SPECS:
            print(plot_result(result))
            print()
        else:
            print(f"# (no chart layout for {name}; table only)\n")
    if out:
        path = save_result(result, out)
        print(f"# saved to {path}\n")


def run_sweep(
    name: str, seeds: list[int], scale: float | None, metric: str | None
) -> None:
    """Run an experiment per seed and summarize one numeric column.

    The metric is aggregated per (non-seed) row group; groups are keyed
    by every non-metric column so the output mirrors the single-run
    table with mean ± std cells.
    """
    func = EXPERIMENTS[name]
    results = [func(scale=scale, seed=seed) for seed in seeds]
    columns = results[0].columns
    metric = metric or columns[-1]
    if metric not in columns:
        raise SystemExit(f"metric {metric!r} not in columns {columns}")
    key_cols = [c for c in columns if c != metric]
    grouped: dict[tuple, list[float]] = {}
    for result in results:
        for row in result.rows:
            key = tuple(row.get(c) for c in key_cols)
            value = row.get(metric)
            if isinstance(value, (int, float)):
                grouped.setdefault(key, []).append(float(value))
    header = " | ".join([*key_cols, f"{metric} (mean ± std over {len(seeds)} seeds)"])
    print(f"# sweep {name}: seeds={seeds}")
    print(header)
    print("-" * len(header))
    for key, values in grouped.items():
        stats = summarize(values)
        cells = [str(k) for k in key]
        cells.append(f"{stats.mean:.4f} ± {stats.std:.4f}")
        print(" | ".join(cells))


def _apply_shard_jobs(jobs: int | None) -> None:
    """Point ``REPRO_SHARD_JOBS`` at the CLI's ``--jobs`` value.

    The env route (rather than a constructor override) reaches sharded
    collectors nested anywhere in a spec file, and leaves the spec
    itself portable — an env-resolved job count is deliberately not
    recorded (the serial and parallel modes are bit-identical).
    """
    if jobs is not None:
        import os

        from repro.shm import SHARD_JOBS_ENV

        os.environ[SHARD_JOBS_ENV] = str(jobs)


def run_collect(args) -> int:
    """Build a collector (kind or spec file), replay a trace, report."""
    try:
        _apply_shard_jobs(args.jobs)
        source = load_spec(args.spec) if args.spec else args.collector
        overrides = {"kernel": args.kernel} if args.kernel else {}
        collector = build(
            source, memory_bytes=args.memory, seed=args.seed, **overrides
        )
    except (SpecError, OSError, ValueError) as exc:
        # ValueError: constructor validation of sized params (e.g. a
        # budget too small to fit even one cell per table).
        print(f"cannot build collector: {exc}", file=sys.stderr)
        return 2
    print(f"# collector: {collector!r}")
    print(f"# spec: {collector.spec.to_json()}")
    workload = make_workload(PROFILES[args.trace], args.flows, seed=args.seed or 0)
    start = time.perf_counter()
    workload.feed(collector)
    elapsed = time.perf_counter() - start
    records = collector.records()
    result = ExperimentResult(
        experiment_id="collect",
        title=f"{collector.name} on {args.trace} ({args.flows} flows)",
        columns=["metric", "value"],
        params={"trace": args.trace, "flows": args.flows},
    )
    result.add_row(metric="packets", value=workload.num_packets)
    result.add_row(metric="records", value=len(records))
    result.add_row(
        metric="fsc", value=round(flow_set_coverage(records, workload.true_sizes), 4)
    )
    result.add_row(metric="size_are", value=round(workload.size_are(collector), 4))
    result.add_row(
        metric="cardinality_est", value=round(collector.estimate_cardinality(), 1)
    )
    result.add_row(metric="memory_bytes", value=int(collector.memory_bytes))
    print(render_table(result))
    print(f"# elapsed: {elapsed:.1f}s")
    if args.save_spec:
        save_spec(collector.spec, args.save_spec)
        print(f"# spec saved to {args.save_spec}")
    # Release any shard-parallel ingest pool/segments promptly (a
    # no-op for ordinary collectors).
    getattr(collector, "close", lambda: None)()
    return 0


def run_kernels() -> int:
    """Report kernel-tier availability (the ``kernels`` subcommand)."""
    info = kernel_info()
    print("# kernel tiers")
    print(f"requested        : {info['requested']} "
          f"(--kernel / REPRO_KERNEL; default numpy)")
    print(f"native available : {'yes' if info['available'] else 'no'}")
    print(f"compiler         : {info['compiler'] or '(none found)'}")
    print(f"abi version      : {info['abi_version']}")
    print(f"source           : {info['source']}")
    print(f"build cache      : {info['cache_dir']} (REPRO_NATIVE_CACHE)")
    if info["library"]:
        print(f"library          : {info['library']}")
    if info["error"]:
        print(f"error            : {info['error']}")
    return 0 if info["available"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "kernels":
        return run_kernels()
    if args.command == "list":
        print("# experiments")
        for name, func in EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        print("\n# collector kinds (repro.specs registry)")
        for kind in available_kinds():
            print(kind)
        return 0
    if args.command == "collect":
        return run_collect(args)
    if args.command == "stream":
        return run_stream(args)
    if args.command == "serve":
        return run_serve(args)
    if args.command == "query":
        return run_query(args)
    if args.command == "sweep":
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
            return 2
        run_sweep(args.experiment, args.seeds, args.scale, args.metric)
        return 0
    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        run_experiment(
            name, args.scale, args.seed, args.out, plot=args.plot, jobs=args.jobs
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
