"""Memory budgeting: paper Section IV-A parameter rules.

All algorithms are given the *same amount of memory* in every
experiment.  A full flow record is a 104-bit flow ID plus a 32-bit
counter ("So 1 MB memory approximately corresponds to 60K flow
records").  Per-algorithm cell sizes:

* **HashFlow** — main cell 136 b; ancillary cell 16 b (8-bit digest +
  8-bit counter); same number of cells in the two tables; main table is
  3 pipelined sub-tables with α = 0.7.
* **HashPipe** — 4 equal sub-tables of 136 b cells.
* **ElasticSketch** (hardware) — heavy cell 169 b (key + vote+ + vote− +
  flag) across 3 sub-tables; light part one count-min array of 8-bit
  counters; the two parts use the same number of cells.
* **FlowRadar** — counting cell 168 b (FlowXOR + FlowCount +
  PacketCount); Bloom bits = 40 × counting cells; 4 Bloom hashes and 3
  counting hashes.
"""

from __future__ import annotations

import os

from repro.core.hashflow import HashFlow
from repro.flow.key import FLOW_KEY_BITS
from repro.sketches.base import FlowCollector
from repro.sketches.elastic import ElasticSketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashpipe import HashPipe

COUNTER_BITS = 32
RECORD_BITS = FLOW_KEY_BITS + COUNTER_BITS  # 136

HASHFLOW_ANCILLARY_CELL_BITS = 16  # 8-bit digest + 8-bit counter
ELASTIC_HEAVY_CELL_BITS = FLOW_KEY_BITS + 2 * COUNTER_BITS + 1  # 169
ELASTIC_LIGHT_CELL_BITS = 8
FLOWRADAR_CELL_BITS = FLOW_KEY_BITS + 2 * COUNTER_BITS  # 168
FLOWRADAR_BLOOM_RATIO = 40

DEFAULT_MEMORY_BYTES = 1 << 20  # 1 MB, the paper's default

#: Environment variable scaling experiment sizes (1.0 = paper scale).
SCALE_ENV = "REPRO_SCALE"
DEFAULT_SCALE = 0.1


def resolve_scale(scale: float | None = None) -> float:
    """Resolve the experiment scale factor.

    Args:
        scale: explicit factor; if None, read ``REPRO_SCALE`` from the
            environment (default 0.1 — a laptop-friendly scale that
            preserves every load ratio ``m/n`` because memory and flow
            counts shrink together).

    Returns:
        A positive scale factor.
    """
    if scale is None:
        scale = float(os.environ.get(SCALE_ENV, DEFAULT_SCALE))
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return scale


def build_hashflow(
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    depth: int = 3,
    variant: str = "pipelined",
    alpha: float = 0.7,
    seed: int = 0,
) -> HashFlow:
    """HashFlow sized to the memory budget (equal main/ancillary cells)."""
    bits = memory_bytes * 8
    cells = bits // (RECORD_BITS + HASHFLOW_ANCILLARY_CELL_BITS)
    return HashFlow(
        main_cells=int(cells),
        ancillary_cells=int(cells),
        depth=depth,
        variant=variant,
        alpha=alpha,
        seed=seed,
    )


def build_hashpipe(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, stages: int = 4, seed: int = 0
) -> HashPipe:
    """HashPipe sized to the memory budget (``stages`` equal tables)."""
    bits = memory_bytes * 8
    total_cells = bits // RECORD_BITS
    return HashPipe(
        cells_per_stage=int(total_cells // stages), stages=stages, seed=seed
    )


def build_elastic(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, stages: int = 3, seed: int = 0
) -> ElasticSketch:
    """ElasticSketch (hardware) sized to the memory budget."""
    bits = memory_bytes * 8
    pairs = bits // (ELASTIC_HEAVY_CELL_BITS + ELASTIC_LIGHT_CELL_BITS)
    heavy_per_stage = int(pairs // stages)
    return ElasticSketch(
        heavy_cells_per_stage=heavy_per_stage,
        light_cells=int(heavy_per_stage * stages),
        stages=stages,
        seed=seed,
    )


def build_flowradar(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, seed: int = 0
) -> FlowRadar:
    """FlowRadar sized to the memory budget (Bloom bits = 40 x cells)."""
    bits = memory_bytes * 8
    cells = bits // (FLOWRADAR_CELL_BITS + FLOWRADAR_BLOOM_RATIO)
    return FlowRadar(
        counting_cells=int(cells),
        bloom_bits=int(cells) * FLOWRADAR_BLOOM_RATIO,
        seed=seed,
    )


def build_all(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, seed: int = 0
) -> dict[str, FlowCollector]:
    """All four evaluated algorithms at the same memory budget.

    Returns them in the paper's plotting order:
    HashFlow, HashPipe, ElasticSketch, FlowRadar.
    """
    return {
        "HashFlow": build_hashflow(memory_bytes, seed=seed),
        "HashPipe": build_hashpipe(memory_bytes, seed=seed),
        "ElasticSketch": build_elastic(memory_bytes, seed=seed),
        "FlowRadar": build_flowradar(memory_bytes, seed=seed),
    }
