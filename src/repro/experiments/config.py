"""Deprecated memory-budget builders (use :mod:`repro.specs` instead).

The paper's Section IV-A sizing rules used to be hard-coded in this
module's ``build_*`` functions.  They now live in
:mod:`repro.specs.sizing` as *registered sizing rules*, and collectors
are constructed through the registry::

    from repro.specs import build, build_evaluated

    collector = build("hashflow", memory_bytes=1 << 20, seed=0)
    collectors = build_evaluated(1 << 20, seed=0)   # the paper's four

The ``build_*`` functions below are thin shims kept for backward
compatibility; each emits a :class:`DeprecationWarning` and forwards to
the registry, producing bit-identical collectors.  The budget constants
are re-exported from :mod:`repro.specs.sizing`, their new home.
"""

from __future__ import annotations

import warnings

from repro.core.hashflow import HashFlow
from repro.sketches.base import FlowCollector
from repro.sketches.elastic import ElasticSketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashpipe import HashPipe
from repro.specs import build, build_evaluated
from repro.specs.sizing import (  # noqa: F401  (re-exported for compat)
    COUNTER_BITS,
    DEFAULT_MEMORY_BYTES,
    DEFAULT_SCALE,
    ELASTIC_HEAVY_CELL_BITS,
    ELASTIC_LIGHT_CELL_BITS,
    FLOWRADAR_BLOOM_RATIO,
    FLOWRADAR_CELL_BITS,
    HASHFLOW_ANCILLARY_CELL_BITS,
    RECORD_BITS,
    SCALE_ENV,
    resolve_scale,
)


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.experiments.config.{name} is deprecated; "
        f"use repro.specs.build(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_hashflow(
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    depth: int = 3,
    variant: str = "pipelined",
    alpha: float = 0.7,
    seed: int = 0,
) -> HashFlow:
    """Deprecated: ``build("hashflow", memory_bytes=..., ...)``."""
    _deprecated("build_hashflow")
    return build(
        "hashflow",
        memory_bytes=memory_bytes,
        depth=depth,
        variant=variant,
        alpha=alpha,
        seed=seed,
    )


def build_hashpipe(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, stages: int = 4, seed: int = 0
) -> HashPipe:
    """Deprecated: ``build("hashpipe", memory_bytes=..., ...)``."""
    _deprecated("build_hashpipe")
    return build("hashpipe", memory_bytes=memory_bytes, stages=stages, seed=seed)


def build_elastic(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, stages: int = 3, seed: int = 0
) -> ElasticSketch:
    """Deprecated: ``build("elastic", memory_bytes=..., ...)``."""
    _deprecated("build_elastic")
    return build("elastic", memory_bytes=memory_bytes, stages=stages, seed=seed)


def build_flowradar(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, seed: int = 0
) -> FlowRadar:
    """Deprecated: ``build("flowradar", memory_bytes=..., ...)``."""
    _deprecated("build_flowradar")
    return build("flowradar", memory_bytes=memory_bytes, seed=seed)


def build_all(
    memory_bytes: int = DEFAULT_MEMORY_BYTES, seed: int = 0
) -> dict[str, FlowCollector]:
    """Deprecated: ``repro.specs.build_evaluated(memory_bytes, seed)``."""
    _deprecated("build_all")
    return build_evaluated(memory_bytes, seed=seed)
