"""Per-table and per-figure experiment definitions (paper Section IV).

Every table and figure in the paper's evaluation has a regeneration
function here returning an
:class:`~repro.experiments.runner.ExperimentResult` whose rows mirror
the series the paper plots.  All functions accept a ``scale`` factor
(default from ``REPRO_SCALE``, see
:func:`repro.specs.resolve_scale`) that shrinks memory
budgets and flow counts *together*, preserving every load ratio the
figures depend on; ``scale=1.0`` reproduces the paper's sizes.

The sweep-shaped regenerations (Table I, Figs. 4-10) build explicit
cell plans and execute them through :mod:`repro.parallel`; they accept
a ``jobs`` argument (default: the ``REPRO_JOBS`` environment variable,
else serial) and produce bit-identical rows at any job count.

Index:

======== ==========================================================
table1   trace statistics (max / mean flow size)
fig2a    multi-hash utilization: model vs simulation
fig2b    pipelined utilization, m/n = 1.0: model vs simulation
fig2c    pipelined utilization, m/n = 2.0: model vs simulation
fig2d    pipelined improvement over multi-hash at d = 3
fig3     flow-size CDFs of the four traces
fig4     size-estimation ARE vs main-table depth (1..4)
fig5a    FSC: multi-hash vs pipelined (α = 0.6 / 0.7 / 0.8), Campus
fig5b    ARE: same comparison
fig6     FSC for flow record report, 4 traces x 4 algorithms
fig7     RE for cardinality estimation
fig8     ARE for flow size estimation
fig9     F1 for heavy-hitter detection vs threshold
fig10    ARE of heavy-hitter size estimation vs threshold
fig11    throughput / hash ops / memory accesses per algorithm
======== ==========================================================
"""

from __future__ import annotations

import math

from repro.analysis.heavy_hitters import threshold_sweep
from repro.analysis.model import (
    multihash_utilization,
    pipelined_improvement,
    pipelined_utilization,
    simulate_multihash_utilization,
    simulate_pipelined_utilization,
)
from repro.experiments.runner import ExperimentResult, Workload, make_workload
from repro.flow.stats import cdf_at
from repro.parallel import SweepCell, WorkloadRef, run_plan
from repro.specs import (
    EVALUATED_KINDS,
    build_evaluated,
    display_name,
    resolve_scale,
    scaled_memory,
)
from repro.switchsim.costs import CostModel
from repro.switchsim.programs import measurement_switch
from repro.traces.profiles import PROFILES

#: Per-trace heavy-hitter threshold grids (x-axes of Figs. 9 and 10).
HH_THRESHOLDS = {
    "caida": [100, 200, 400, 600, 800],
    "campus": [10, 25, 50, 75, 100],
    "isp1": [25, 50, 100, 150, 200],
    "isp2": [1, 2, 3, 4, 5],
}

_TRACE_ORDER = ["caida", "campus", "isp1", "isp2"]


def _scaled_flows(base: int, scale: float, minimum: int = 500) -> int:
    """Scale a paper flow count, keeping it statistically meaningful."""
    return max(minimum, int(round(base * scale)))


def _scaled_memory(scale: float) -> int:
    """Scale the paper's 1 MB memory budget."""
    return scaled_memory(scale)


# ----------------------------------------------------------------------
# Table I and Fig. 3 — trace characteristics
# ----------------------------------------------------------------------
def table1(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """Regenerate Table I: per-trace max and mean flow size."""
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment_id="table1",
        title="Traces used for evaluation (paper Table I)",
        columns=[
            "trace",
            "date",
            "flows",
            "packets",
            "max_flow_size",
            "mean_flow_size",
            "paper_max",
            "paper_mean",
        ],
        params={"scale": scale, "seed": seed},
    )
    cells = [
        SweepCell(
            # Pinning the Table I max flow only makes sense at paper
            # scale; at reduced scale a forced quarter-million-packet
            # flow would dominate the mean.
            workload=WorkloadRef(
                profile=name,
                n_flows=_scaled_flows(PROFILES[name].default_flows, scale),
                seed=seed,
                force_max=scale >= 1.0,
            ),
            metrics=("stats",),
            label=name,
        )
        for name in _TRACE_ORDER
    ]
    for name, cell_result in zip(_TRACE_ORDER, run_plan(cells, jobs=jobs)):
        profile = PROFILES[name]
        stats = cell_result.rows[0]
        result.add_row(
            trace=name,
            date=profile.date,
            flows=stats["flows"],
            packets=stats["packets"],
            max_flow_size=stats["max_flow_size"],
            mean_flow_size=round(stats["mean_flow_size"], 2),
            paper_max=profile.max_size,
            paper_mean=profile.target_mean,
        )
    return result


def fig3(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 3: cumulative flow-size distributions."""
    scale = resolve_scale(scale)
    probe_sizes = [1, 2, 5, 10, 50, 100, 1000, 10_000, 100_000]
    result = ExperimentResult(
        experiment_id="fig3",
        title="Flow size distribution CDF (paper Fig. 3)",
        columns=["trace"] + [f"cdf@{s}" for s in probe_sizes],
        params={"scale": scale, "seed": seed, "probe_sizes": probe_sizes},
    )
    for name in _TRACE_ORDER:
        profile = PROFILES[name]
        n_flows = _scaled_flows(profile.default_flows, scale)
        trace = profile.generate(n_flows=n_flows, seed=seed)
        cdf = trace.cdf()
        row = {"trace": name}
        for s in probe_sizes:
            row[f"cdf@{s}"] = round(cdf_at(cdf, s), 4)
        result.add_row(**row)
    return result


# ----------------------------------------------------------------------
# Fig. 2 — occupancy model validation
# ----------------------------------------------------------------------
def fig2a(
    scale: float | None = None,
    loads: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0),
    max_depth: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Multi-hash utilization: Equation (1) model vs sequential simulation."""
    scale = resolve_scale(scale)
    n = max(2000, int(100_000 * scale))
    result = ExperimentResult(
        experiment_id="fig2a",
        title="Multi-hash table utilization, theory vs simulation (Fig. 2a)",
        columns=["load", "depth", "theory", "sim"],
        params={"n": n, "loads": loads, "max_depth": max_depth, "seed": seed},
    )
    for load in loads:
        m = int(round(load * n))
        for d in range(1, max_depth + 1):
            result.add_row(
                load=load,
                depth=d,
                theory=round(multihash_utilization(m, n, d), 4),
                sim=round(simulate_multihash_utilization(m, n, d, seed=seed), 4),
            )
    return result


def _fig2_pipelined(
    experiment_id: str,
    load: float,
    scale: float | None,
    alphas: tuple[float, ...],
    max_depth: int,
    seed: int,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    n = max(2000, int(100_000 * scale))
    m = int(round(load * n))
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"Pipelined tables utilization, m/n={load} (Fig. {experiment_id[-2:]})",
        columns=["alpha", "depth", "theory", "sim"],
        params={"n": n, "load": load, "alphas": alphas, "max_depth": max_depth},
    )
    for alpha in alphas:
        for d in range(1, max_depth + 1):
            result.add_row(
                alpha=alpha,
                depth=d,
                theory=round(pipelined_utilization(m, n, d, alpha), 4),
                sim=round(
                    simulate_pipelined_utilization(m, n, d, alpha, seed=seed), 4
                ),
            )
    return result


def fig2b(
    scale: float | None = None,
    alphas: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8),
    max_depth: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Pipelined utilization at m/n = 1.0: Equation (4)/(5) vs simulation."""
    return _fig2_pipelined("fig2b", 1.0, scale, alphas, max_depth, seed)


def fig2c(
    scale: float | None = None,
    alphas: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8),
    max_depth: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Pipelined utilization at m/n = 2.0: Equation (4)/(5) vs simulation."""
    return _fig2_pipelined("fig2c", 2.0, scale, alphas, max_depth, seed)


def fig2d(
    scale: float | None = None,
    loads: tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0),
    alphas: tuple[float, ...] = (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95),
    depth: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Pipelined improvement over multi-hash at d = 3 (model only, Fig. 2d).

    ``scale`` and ``seed`` are accepted for registry uniformity; the
    model is deterministic and scale-free in m/n.
    """
    result = ExperimentResult(
        experiment_id="fig2d",
        title="Utilization improvement of pipelined tables at d=3 (Fig. 2d)",
        columns=["load", "alpha", "improvement"],
        params={"loads": loads, "alphas": alphas, "depth": depth},
    )
    n = 100_000  # the model is scale-free in m/n; n only sets integer m
    for load in loads:
        m = int(round(load * n))
        for alpha in alphas:
            result.add_row(
                load=load,
                alpha=alpha,
                improvement=round(pipelined_improvement(m, n, depth, alpha), 4),
            )
    return result


# ----------------------------------------------------------------------
# Figs. 4 and 5 — main-table tuning
# ----------------------------------------------------------------------
def fig4(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """Size-estimation ARE vs pipeline depth (1..4) at 50K flows (Fig. 4)."""
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    n_flows = _scaled_flows(50_000, scale)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Flow size estimation ARE under different pipeline depth (Fig. 4)",
        columns=["trace", "depth", "are"],
        params={"memory_bytes": memory, "n_flows": n_flows, "seed": seed},
    )
    cells = [
        SweepCell(
            workload=WorkloadRef(profile=name, n_flows=n_flows, seed=seed),
            spec_or_kind={"kind": "hashflow", "params": {"depth": depth}},
            memory_bytes=memory,
            seed=seed,
            metrics=("size_are",),
            label=(name, depth),
        )
        for name in _TRACE_ORDER
        for depth in (1, 2, 3, 4)
    ]
    for cell, cell_result in zip(cells, run_plan(cells, jobs=jobs)):
        name, depth = cell.label
        result.add_row(
            trace=name, depth=depth, are=round(cell_result.rows[0]["size_are"], 4)
        )
    return result


def fig5(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """Multi-hash vs pipelined main table on Campus (Figs. 5a and 5b).

    Rows carry both the FSC (Fig. 5a) and the size-estimation ARE
    (Fig. 5b) for each configuration and flow count.
    """
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    flow_grid = [_scaled_flows(c, scale) for c in (10_000, 20_000, 30_000, 40_000, 50_000, 60_000)]
    configs = [
        ("multihash", None),
        ("pipelined", 0.6),
        ("pipelined", 0.7),
        ("pipelined", 0.8),
    ]
    result = ExperimentResult(
        experiment_id="fig5",
        title="Multi-hash vs pipelined main tables, Campus (Figs. 5a/5b)",
        columns=["config", "n_flows", "fsc", "are"],
        params={"memory_bytes": memory, "flow_grid": flow_grid, "seed": seed},
    )
    cells = [
        SweepCell(
            workload=WorkloadRef(profile="campus", n_flows=n_flows, seed=seed),
            spec_or_kind={
                "kind": "hashflow",
                "params": {
                    "variant": variant,
                    "alpha": alpha if alpha is not None else 0.7,
                },
            },
            memory_bytes=memory,
            seed=seed,
            metrics=("fsc", "size_are"),
            label=(
                "multihash" if alpha is None else f"alpha={alpha}",
                n_flows,
            ),
        )
        for n_flows in flow_grid
        for variant, alpha in configs
    ]
    for cell, cell_result in zip(cells, run_plan(cells, jobs=jobs)):
        label, n_flows = cell.label
        values = cell_result.rows[0]
        result.add_row(
            config=label,
            n_flows=n_flows,
            fsc=round(values["fsc"], 4),
            are=round(values["size_are"], 4),
        )
    return result


# ----------------------------------------------------------------------
# Figs. 6-8 — application sweeps over flow counts
# ----------------------------------------------------------------------
def _application_sweep(
    experiment_id: str,
    title: str,
    base_counts: tuple[int, ...],
    metrics: tuple[str, ...],
    scale: float | None,
    seed: int,
    jobs: int | None = None,
    traces: tuple[str, ...] = tuple(_TRACE_ORDER),
) -> ExperimentResult:
    """Shared sweep: feed each (trace, flow count) to all four algorithms.

    ``metrics`` selects which of fsc / cardinality_re / size_are are
    computed per run.  One plan cell per (trace, flow count, algorithm)
    triple; rows are assembled in plan order, so they match the
    pre-engine nested loops exactly.
    """
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    flow_grid = [_scaled_flows(c, scale) for c in base_counts]
    columns = ["trace", "n_flows", "algorithm", *metrics]
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=columns,
        params={
            "memory_bytes": memory,
            "flow_grid": flow_grid,
            "seed": seed,
            "scale": scale,
        },
    )
    cells = [
        SweepCell(
            workload=WorkloadRef(profile=name, n_flows=n_flows, seed=seed),
            spec_or_kind=kind,
            memory_bytes=memory,
            seed=seed,
            metrics=metrics,
            label=(name, n_flows, display_name(kind)),
        )
        for name in traces
        for n_flows in flow_grid
        for kind in EVALUATED_KINDS
    ]
    for cell, cell_result in zip(cells, run_plan(cells, jobs=jobs)):
        name, n_flows, algo_name = cell.label
        values = cell_result.rows[0]
        row = {"trace": name, "n_flows": n_flows, "algorithm": algo_name}
        if "fsc" in metrics:
            row["fsc"] = round(values["fsc"], 4)
        if "cardinality_re" in metrics:
            re = values["cardinality_re"]
            row["cardinality_re"] = round(re, 4) if math.isfinite(re) else math.inf
        if "size_are" in metrics:
            row["size_are"] = round(values["size_are"], 4)
        result.add_row(**row)
    return result


def fig6(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """FSC for flow record report, 4 traces x 4 algorithms (Fig. 6)."""
    return _application_sweep(
        "fig6",
        "Flow Set Coverage for flow record report (Fig. 6)",
        (50_000, 100_000, 150_000, 200_000, 250_000),
        ("fsc",),
        scale,
        seed,
        jobs,
    )


def fig7(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """RE for cardinality estimation (Fig. 7)."""
    return _application_sweep(
        "fig7",
        "Relative Error for flow cardinality estimation (Fig. 7)",
        (50_000, 100_000, 150_000, 200_000, 250_000),
        ("cardinality_re",),
        scale,
        seed,
        jobs,
    )


def fig8(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """ARE for flow size estimation (Fig. 8)."""
    return _application_sweep(
        "fig8",
        "Average Relative Error for flow size estimation (Fig. 8)",
        (20_000, 40_000, 60_000, 80_000, 100_000),
        ("size_are",),
        scale,
        seed,
        jobs,
    )


# ----------------------------------------------------------------------
# Figs. 9 and 10 — heavy hitters
# ----------------------------------------------------------------------
def _heavy_hitter_sweep(
    experiment_id: str,
    title: str,
    scale: float | None,
    seed: int,
    jobs: int | None = None,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    n_flows = _scaled_flows(250_000, scale)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=["trace", "threshold", "algorithm", "f1", "are", "actual_hh"],
        params={"memory_bytes": memory, "n_flows": n_flows, "seed": seed},
    )
    cells = [
        SweepCell(
            workload=WorkloadRef(profile=name, n_flows=n_flows, seed=seed),
            spec_or_kind=kind,
            memory_bytes=memory,
            seed=seed,
            metrics=("hh_sweep",),
            params={"thresholds": HH_THRESHOLDS[name]},
            label=(name, display_name(kind)),
        )
        for name in _TRACE_ORDER
        for kind in EVALUATED_KINDS
    ]
    for cell, cell_result in zip(cells, run_plan(cells, jobs=jobs)):
        name, algo_name = cell.label
        for hh in cell_result.rows:
            result.add_row(
                trace=name,
                threshold=hh["threshold"],
                algorithm=algo_name,
                f1=round(hh["f1"], 4),
                are=round(hh["are"], 4) if math.isfinite(hh["are"]) else math.nan,
                actual_hh=hh["actual"],
            )
    return result


def fig9(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """F1 score for heavy-hitter detection vs threshold (Fig. 9).

    The same sweep also yields Fig. 10's ARE column; both figures share
    one run (the `are` column here is Fig. 10).
    """
    return _heavy_hitter_sweep(
        "fig9", "Heavy hitter detection F1 and size ARE (Figs. 9/10)", scale, seed,
        jobs,
    )


def fig10(
    scale: float | None = None, seed: int = 0, jobs: int | None = None
) -> ExperimentResult:
    """ARE of heavy-hitter size estimation vs threshold (Fig. 10)."""
    result = _heavy_hitter_sweep(
        "fig10", "Heavy hitter size estimation ARE (Fig. 10)", scale, seed, jobs
    )
    return result


# ----------------------------------------------------------------------
# Fig. 11 — throughput and per-packet cost
# ----------------------------------------------------------------------
def fig11(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Throughput, hash ops and memory accesses per algorithm (Fig. 11).

    Each algorithm is loaded into the software switch as a measurement
    stage; 11b/11c report the *measured* per-packet operation counts and
    11a the cost-model throughput (see :mod:`repro.switchsim.costs`).
    """
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    n_flows = _scaled_flows(50_000, scale)
    cost_model = CostModel()
    result = ExperimentResult(
        experiment_id="fig11",
        title="Throughput, hash operations and memory accesses (Fig. 11)",
        columns=[
            "trace",
            "algorithm",
            "throughput_kpps",
            "hashes_per_packet",
            "accesses_per_packet",
        ],
        params={"memory_bytes": memory, "n_flows": n_flows, "seed": seed},
    )
    for name in _TRACE_ORDER:
        workload = make_workload(PROFILES[name], n_flows, seed=seed)
        for algo_name, collector in build_evaluated(memory, seed=seed).items():
            switch = measurement_switch(collector, cost_model)
            report = switch.run_trace(workload.trace)
            result.add_row(
                trace=name,
                algorithm=algo_name,
                throughput_kpps=round(report.throughput_kpps, 3),
                hashes_per_packet=round(report.hashes_per_packet, 3),
                accesses_per_packet=round(report.accesses_per_packet, 3),
            )
    return result


# ----------------------------------------------------------------------
# Headline claims (paper abstract / Section I)
# ----------------------------------------------------------------------
def headline(scale: float | None = None, seed: int = 0) -> ExperimentResult:
    """Regenerate the paper's headline claims (abstract / Section I).

    1. "Using a small memory of 1 MB, HashFlow can accurately record
       around 55K flows, which is often 12.5% higher than the others."
    2. "For estimating the sizes of 50K flows, HashFlow achieves a
       relative error of around 11.6%, while the estimation error of
       the best competitor is 42.9% higher."
    3. "It detects 96.1% of the heavy hitters out of 250K flows with a
       size estimation error of 5.6%."
    """
    scale = resolve_scale(scale)
    memory = _scaled_memory(scale)
    result = ExperimentResult(
        experiment_id="headline",
        title="Headline claims from the paper's abstract",
        columns=["claim", "algorithm", "value"],
        params={"memory_bytes": memory, "scale": scale, "seed": seed},
    )

    # Claim 1: accurately recorded flows at heavy load (records whose
    # reported count matches ground truth exactly).
    heavy_n = _scaled_flows(250_000, scale)
    workload = make_workload(PROFILES["caida"], heavy_n, seed=seed)
    hh_collectors = {}
    for algo_name, collector in build_evaluated(memory, seed=seed).items():
        workload.feed(collector)
        hh_collectors[algo_name] = collector
        truth = workload.true_sizes
        records = collector.records()
        accurate = sum(1 for k, v in records.items() if truth.get(k) == v)
        result.add_row(
            claim="accurate_records", algorithm=algo_name, value=accurate
        )

    # Claim 3 (same feed): heavy-hitter detection rate and size ARE at
    # the middle of the paper's CAIDA threshold range.
    threshold = 400
    for algo_name, collector in hh_collectors.items():
        hh = threshold_sweep(collector, workload.true_sizes, [threshold])[0]
        result.add_row(
            claim="hh_detection_rate", algorithm=algo_name, value=round(hh.recall, 4)
        )
        result.add_row(
            claim="hh_size_are",
            algorithm=algo_name,
            value=round(hh.are, 4) if math.isfinite(hh.are) else math.nan,
        )

    # Claim 2: size-estimation ARE at 50K flows.
    medium_n = _scaled_flows(50_000, scale)
    workload = make_workload(PROFILES["caida"], medium_n, seed=seed + 1)
    for algo_name, collector in build_evaluated(memory, seed=seed).items():
        workload.feed(collector)
        are = workload.size_are(collector)
        result.add_row(
            claim="size_are_50k", algorithm=algo_name, value=round(are, 4)
        )
    return result


#: Registry used by the CLI and the benchmark harness.
EXPERIMENTS = {
    "table1": table1,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig2c": fig2c,
    "fig2d": fig2d,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "headline": headline,
}
