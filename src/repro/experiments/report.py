"""Rendering experiment results as aligned ASCII tables and files.

The benchmark harness prints the same rows/series the paper reports;
this module owns the formatting so every bench and the CLI produce
identical output.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.experiments.runner import ExperimentResult


def _format_value(value) -> str:
    """Human-friendly cell rendering."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        return f"{value:.4f}".rstrip("0").rstrip(".") if value != int(value) else str(int(value))
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render a result as an aligned ASCII table with a header block."""
    headers = result.columns
    rows = [[_format_value(row.get(col)) for col in headers] for row in result.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"# {result.experiment_id}: {result.title}",
    ]
    if result.params:
        lines.append(f"# params: {result.params}")
    if result.notes:
        lines.append(f"# notes: {result.notes}")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def save_result(result: ExperimentResult, out_dir: str | Path) -> Path:
    """Write the rendered table to ``<out_dir>/<experiment_id>.txt``.

    Returns:
        The written file path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.experiment_id}.txt"
    path.write_text(render_table(result) + "\n")
    return path


def pivot(
    result: ExperimentResult, index: str, series: str, value: str
) -> dict[str, dict]:
    """Pivot rows into ``{series_value: {index_value: value}}``.

    Convenience for turning the flat rows into the per-curve series the
    paper's figures draw, e.g. ``pivot(fig6_result, "n_flows",
    "algorithm", "fsc")``.
    """
    table: dict[str, dict] = {}
    for row in result.rows:
        table.setdefault(str(row[series]), {})[row[index]] = row[value]
    return table
