"""ASCII line charts for experiment results.

The evaluation figures are line plots; with no plotting stack available
offline, this renders them as terminal charts so `repro-experiments run
fig6 --plot` shows the curves, not just the rows.  Each series gets a
distinct glyph; axes are linearly scaled and labelled with their ranges.
"""

from __future__ import annotations

import math

from repro.experiments.report import pivot
from repro.experiments.runner import ExperimentResult

SERIES_GLYPHS = "*o+x#@%&"


def line_chart(
    series: dict[str, dict[float, float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{series name: {x: y}}`` as an ASCII chart.

    Args:
        series: per-series points; x values need not align across series.
        width / height: plot-area size in characters.
        title: optional heading line.
        x_label / y_label: axis names shown with their ranges.

    Returns:
        The chart as a multi-line string.

    Raises:
        ValueError: if there are no finite points at all or too many
            series for the glyph set.
    """
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")
    points = [
        (float(x), float(y))
        for by_x in series.values()
        for x, y in by_x.items()
        if _finite(x) and _finite(y)
    ]
    if not points:
        raise ValueError("no finite data points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, by_x) in zip(SERIES_GLYPHS, sorted(series.items())):
        for x, y in by_x.items():
            if not (_finite(x) and _finite(y)):
                continue
            col = round((float(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((float(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}: {y_lo:g} .. {y_hi:g}")
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(f"{x_label}: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(
        f"{glyph}={name}"
        for glyph, name in zip(SERIES_GLYPHS, sorted(series))
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def _finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


#: Which (index, series, value) triple draws each experiment's chart.
PLOT_SPECS: dict[str, tuple[str, str, str]] = {
    "fig2a": ("depth", "load", "sim"),
    "fig2b": ("depth", "alpha", "sim"),
    "fig2c": ("depth", "alpha", "sim"),
    "fig2d": ("alpha", "load", "improvement"),
    "fig4": ("depth", "trace", "are"),
    "fig5": ("n_flows", "config", "fsc"),
    "fig6": ("n_flows", "algorithm", "fsc"),
    "fig7": ("n_flows", "algorithm", "cardinality_re"),
    "fig8": ("n_flows", "algorithm", "size_are"),
    "fig9": ("threshold", "algorithm", "f1"),
    "fig10": ("threshold", "algorithm", "are"),
}


def plot_result(result: ExperimentResult, width: int = 64, height: int = 16) -> str:
    """Chart an experiment result using its registered plot spec.

    For multi-trace experiments one chart is rendered per trace.

    Raises:
        KeyError: if the experiment has no plot spec (tables are tables).
    """
    spec = PLOT_SPECS.get(result.experiment_id)
    if spec is None:
        raise KeyError(f"no plot spec for {result.experiment_id!r}")
    index, series_col, value = spec
    charts = []
    if "trace" in result.columns and series_col != "trace":
        traces = sorted({row["trace"] for row in result.rows})
        for trace in traces:
            sub = ExperimentResult(
                experiment_id=result.experiment_id,
                title=result.title,
                columns=result.columns,
                rows=result.filter_rows(trace=trace),
            )
            charts.append(
                line_chart(
                    pivot(sub, index, series_col, value),
                    width=width,
                    height=height,
                    title=f"{result.experiment_id} [{trace}]: {value} vs {index}",
                    x_label=index,
                    y_label=value,
                )
            )
    else:
        charts.append(
            line_chart(
                pivot(result, index, series_col, value),
                width=width,
                height=height,
                title=f"{result.experiment_id}: {value} vs {index}",
                x_label=index,
                y_label=value,
            )
        )
    return "\n\n".join(charts)
