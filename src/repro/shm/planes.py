"""Shared-memory plane layout for SoA-backed collectors.

A collector built on the SoA tables (:mod:`repro.native.soa`) keeps its
entire dataplane state in a handful of flat numpy arrays — *planes*.
This module maps that state onto a :class:`~repro.shm.segments.Segment`
so several processes can mutate one collector's tables in place:

* :func:`plane_specs` describes a collector's planes as ``(count,
  dtype)`` pairs in a **canonical order** (main-table key lo/hi,
  counters, optional byte plane, then ancillary digests and counters);
* :func:`adopt_planes` swaps carved segment views in for the
  collector's private arrays (copying current contents, so adoption is
  transparent mid-lifetime);
* the canonical order is a function of the collector's *spec* alone,
  so a worker that rebuilds the same spec computes the same layout and
  attaches to the same offsets — no layout metadata crosses the pipe.

Only spec kinds in :data:`SHARED_PLANE_KINDS` participate: their SoA
state is exactly these planes, nothing else (hash seeds and sizes are
rebuilt deterministically from the spec).
"""

from __future__ import annotations

import numpy as np

from repro.shm.segments import Segment, carve, layout_bytes

#: Collector spec kinds whose dataplane state is fully plane-shareable.
SHARED_PLANE_KINDS = frozenset({"hashflow"})


def _soa_tables(collector):
    """The collector's (main, ancillary) SoA tables, or a clear error."""
    from repro.native.soa import NativeAncillaryTable, NativeMainTable

    main = getattr(collector, "main", None)
    ancillary = getattr(collector, "ancillary", None)
    if not isinstance(main, NativeMainTable) or not isinstance(
        ancillary, NativeAncillaryTable
    ):
        raise TypeError(
            f"{type(collector).__name__} does not hold SoA tables; build it "
            "with storage='soa' (or the native kernel tier) to share planes"
        )
    return main, ancillary


def plane_arrays(collector) -> list[np.ndarray]:
    """The collector's state planes, in canonical order."""
    main, ancillary = _soa_tables(collector)
    planes = [main.k_lo, main.k_hi, main.counts]
    if main.bytes is not None:
        planes.append(main.bytes)
    planes.extend([ancillary.digests, ancillary.counts])
    return planes


def plane_specs(collector) -> list[tuple[int, np.dtype]]:
    """``(count, dtype)`` of every plane, in canonical order."""
    return [(arr.size, arr.dtype) for arr in plane_arrays(collector)]


def adopt_planes(collector, views: list[np.ndarray], copy: bool = True) -> None:
    """Swap carved segment views in for the collector's private planes.

    Args:
        collector: an SoA-backed collector (see :func:`plane_arrays`).
        views: arrays from :func:`~repro.shm.segments.carve`, in the
            same canonical order.
        copy: copy current plane contents into the views first (the
            owner's path — state built before sharing survives).  A
            worker attaching to live planes passes False: the shared
            state is already authoritative.
    """
    main, ancillary = _soa_tables(collector)
    current = plane_arrays(collector)
    if len(views) != len(current):
        raise ValueError(
            f"expected {len(current)} plane views, got {len(views)}"
        )
    it = iter(views)

    def take(old: np.ndarray) -> np.ndarray:
        view = next(it)
        if view.dtype != old.dtype or view.size != old.size:
            raise ValueError(
                f"plane view mismatch: {view.dtype}[{view.size}] for "
                f"{old.dtype}[{old.size}]"
            )
        if copy:
            view[:] = old
        return view

    main.k_lo = take(main.k_lo)
    main.k_hi = take(main.k_hi)
    main.counts = take(main.counts)
    if main.bytes is not None:
        main.bytes = take(main.bytes)
    ancillary.digests = take(ancillary.digests)
    ancillary.counts = take(ancillary.counts)


def segment_for_planes(collectors, label: str = "planes"):
    """One owned segment sized for several collectors' planes.

    Returns:
        ``(segment, per_collector_views)`` where ``per_collector_views``
        lists each collector's carved views in canonical order
        (collectors are laid out consecutively, in input order).
    """
    from repro.shm.segments import create_segment

    specs = []
    counts = []
    for collector in collectors:
        cs = plane_specs(collector)
        counts.append(len(cs))
        specs.extend(cs)
    segment = create_segment(max(1, layout_bytes(specs)), label=label)
    views = carve(segment, specs)
    grouped = []
    pos = 0
    for n in counts:
        grouped.append(views[pos : pos + n])
        pos += n
    return segment, grouped


def carve_for_planes(segment: Segment, collectors) -> list[list[np.ndarray]]:
    """Carve an existing segment with the layout of ``collectors``.

    The attach-side mirror of :func:`segment_for_planes`: a worker that
    rebuilt the same collector specs recovers the same per-collector
    view groups.
    """
    specs = []
    counts = []
    for collector in collectors:
        cs = plane_specs(collector)
        counts.append(len(cs))
        specs.extend(cs)
    views = carve(segment, specs)
    grouped = []
    pos = 0
    for n in counts:
        grouped.append(views[pos : pos + n])
        pos += n
    return grouped
