"""Named shared-memory segments with a refcounted process registry.

``multiprocessing.shared_memory`` gives named POSIX segments
(``/dev/shm/<name>`` on Linux) but leaves lifecycle discipline to the
caller — and an undisciplined caller leaks segments that outlive every
process.  This module pins down one contract for the whole package:

* **Creation registers.**  :func:`create_segment` returns an *owned*
  :class:`Segment` and records it in a process-local registry; an
  ``atexit`` hook unlinks every still-registered segment, so a clean
  interpreter exit never leaves ``/dev/shm`` litter.
* **Crash-safe guard.**  The stdlib ``resource_tracker`` (a separate
  watchdog process) keeps its own registration for owned segments, so
  even a SIGKILL of the creator gets the segment unlinked.  An explicit
  :meth:`Segment.unlink` deregisters from both, so the normal path is
  silent.
* **Attachment never unlinks.**  :func:`attach_segment` opens an
  existing segment by name.  Attachers are always descendants of the
  owner (pool workers forked/spawned after creation), which share the
  owner's resource-tracker process — the stdlib tracker keeps one name
  *set* for all its clients, so the attach-side auto-registration is a
  no-op re-add and needs no undo.  (Explicitly unregistering here would
  delete the *owner's* crash guard and make the owner's eventual unlink
  race a missing entry.)
* **Unlink keeps mappings alive.**  ``unlink()`` removes the name (the
  ``/dev/shm`` entry — the thing that can leak) but deliberately does
  not unmap: numpy views carved from the segment stay valid until the
  process exits, which is what lets a collector stay queryable after
  its parallel engine shuts down.  The mapping itself is freed by the
  OS when the last process unmaps (at exit).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import shared_memory

import numpy as np

#: Prefix of every segment this package creates (leak checks grep it).
SEGMENT_PREFIX = "repro-shm-"

_registry_lock = threading.Lock()
#: Owned segments still holding a ``/dev/shm`` name, keyed by name.
_OWNED: dict[str, "Segment"] = {}
#: Unlinked-but-still-mapped segments (numpy views may be live; closing
#: the mapping under them would invalidate the views, so the Segment
#: objects are parked here until process exit).
_ZOMBIES: list["Segment"] = []


class Segment:
    """One named shared-memory segment plus its carving helpers.

    Args:
        shm: the underlying :class:`SharedMemory`.
        owner: whether this process created (and must unlink) it.
    """

    __slots__ = ("shm", "owner", "_unlinked")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm = shm
        self.owner = owner
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def size(self) -> int:
        return self.shm.size

    def view(self, offset: int, count: int, dtype) -> np.ndarray:
        """A numpy array over ``count`` items of ``dtype`` at ``offset``
        bytes into the segment (zero-copy)."""
        return np.frombuffer(
            self.shm.buf, dtype=dtype, count=count, offset=offset
        )

    def unlink(self) -> None:
        """Remove the segment's name (idempotent; owner only).

        The mapping stays valid — live numpy views keep working — but
        the ``/dev/shm`` entry is gone and no new process can attach.
        """
        if self._unlinked:
            return
        self._unlinked = True
        with _registry_lock:
            _OWNED.pop(self.name, None)
            # Parked so no __del__ ever closes the buffer under a view.
            _ZOMBIES.append(self)
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # already gone (e.g. double guard)
                pass

    def close(self) -> None:
        """Unmap the segment (only safe once no views remain)."""
        self.shm.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return f"Segment({self.name!r}, {self.size} bytes, {role})"


def create_segment(nbytes: int, label: str = "seg") -> Segment:
    """Create an owned segment of ``nbytes`` bytes.

    The name embeds the creator pid, a label, and a random token —
    unique across concurrent processes, and recognizable (for the
    ``/dev/shm`` leak check) by :data:`SEGMENT_PREFIX`.
    """
    if nbytes <= 0:
        raise ValueError(f"segment size must be positive, got {nbytes}")
    name = f"{SEGMENT_PREFIX}{os.getpid()}-{label}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=int(nbytes))
    segment = Segment(shm, owner=True)
    with _registry_lock:
        _OWNED[segment.name] = segment
    return segment


def attach_segment(name: str) -> Segment:
    """Attach to an existing segment by name (never unlinks it)."""
    shm = shared_memory.SharedMemory(name=name, create=False)
    return Segment(shm, owner=False)


def owned_segments() -> list[str]:
    """Names of segments this process owns and has not unlinked yet
    (the leak-check vocabulary: empty after every ``close()``)."""
    with _registry_lock:
        return sorted(_OWNED)


@atexit.register
def _unlink_all_owned() -> None:  # pragma: no cover - exit path
    """Exit guard: unlink anything still owned (normal-exit leak guard;
    the resource tracker covers crashes)."""
    with _registry_lock:
        pending = list(_OWNED.values())
    for segment in pending:
        segment.unlink()


def carve(segment: Segment, specs) -> list[np.ndarray]:
    """Carve consecutive numpy views out of a segment.

    Args:
        segment: the backing segment.
        specs: iterable of ``(count, dtype)`` plane descriptions; every
            dtype here is 8 bytes wide, so consecutive planes stay
            naturally aligned.

    Returns:
        One zero-copy array per spec, in order.

    Raises:
        ValueError: if the layout exceeds the segment size.
    """
    views: list[np.ndarray] = []
    offset = 0
    for count, dtype in specs:
        dtype = np.dtype(dtype)
        nbytes = int(count) * dtype.itemsize
        if offset + nbytes > segment.size:
            raise ValueError(
                f"plane layout ({offset + nbytes} bytes) exceeds segment "
                f"{segment.name} ({segment.size} bytes)"
            )
        views.append(segment.view(offset, int(count), dtype))
        offset += nbytes
    return views


def layout_bytes(specs) -> int:
    """Total bytes the ``carve`` layout for ``specs`` needs."""
    return sum(int(count) * np.dtype(dtype).itemsize for count, dtype in specs)
