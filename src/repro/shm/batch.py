"""Shared-memory traces: ship a packet stream to workers by name.

The parallel engine's existing currency for workloads is the
:class:`~repro.parallel.plan.WorkloadRef` — a descriptor workers
*regenerate or mmap from disk*.  Sources that are expensive to derive
(a netwide vantage stream routes every packet over a fabric) or not
data-describable at all (pcap) had no parallel path.  This module adds
one: the parent materializes the trace once, copies its per-flow key
halves and per-packet flow-order array into a single owned segment,
and workers attach by name — one shared copy instead of per-worker
deserialization or regeneration.

The round trip is exact: a trace is (flow_keys, order, timestamps?,
name), flow keys are rebuilt from their 64-bit halves (bijective), and
order/timestamps are attached zero-copy.  Attached segments are cached
per process and kept mapped for the process lifetime (the arrays a
:class:`~repro.traces.trace.Trace` hands out are views into them).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.shm.segments import Segment, attach_segment, carve, create_segment, layout_bytes


class SharedTraceRef(NamedTuple):
    """Name + shape of a trace parked in a shared segment.

    A plain (picklable, hashable) tuple so it can ride inside frozen
    dataclasses like :class:`~repro.parallel.plan.WorkloadRef`.
    """

    segment: str
    n_flows: int
    n_packets: int
    has_timestamps: bool
    name: str


def _trace_specs(ref: SharedTraceRef) -> list[tuple[int, np.dtype]]:
    specs = [
        (ref.n_flows, np.dtype(np.uint64)),   # flow key low halves
        (ref.n_flows, np.dtype(np.uint64)),   # flow key high halves
        (ref.n_packets, np.dtype(np.int64)),  # per-packet flow order
    ]
    if ref.has_timestamps:
        specs.append((ref.n_packets, np.dtype(np.float64)))
    return specs


def share_trace(trace, label: str = "trace") -> tuple[SharedTraceRef, Segment]:
    """Copy a trace's arrays into a fresh owned segment.

    Returns:
        ``(ref, segment)`` — the caller keeps the segment and unlinks
        it once no worker needs to attach anymore.
    """
    flow_lo, flow_hi = trace.flow_batch().halves()
    ref = SharedTraceRef(
        segment="",
        n_flows=trace.num_flows,
        n_packets=len(trace),
        has_timestamps=trace.timestamps is not None,
        name=trace.name,
    )
    segment = create_segment(max(1, layout_bytes(_trace_specs(ref))), label=label)
    ref = ref._replace(segment=segment.name)
    views = carve(segment, _trace_specs(ref))
    views[0][:] = flow_lo
    views[1][:] = flow_hi
    views[2][:] = trace.order
    if ref.has_timestamps:
        views[3][:] = trace.timestamps
    return ref, segment


#: Segments this process has attached for shared traces, kept mapped
#: for the process lifetime (Trace arrays are views into them).
_ATTACHED: dict[str, Segment] = {}


def attach_trace(ref: SharedTraceRef):
    """Rebuild the :class:`~repro.traces.trace.Trace` behind a ref.

    Flow keys are reconstructed from their halves (one pass over the
    *distinct flows*, not the packet stream); order and timestamps are
    zero-copy views into the shared segment.
    """
    from repro.traces.trace import Trace

    ref = SharedTraceRef(*ref)
    segment = _ATTACHED.get(ref.segment)
    if segment is None:
        segment = attach_segment(ref.segment)
        _ATTACHED[ref.segment] = segment
    views = carve(segment, _trace_specs(ref))
    lo = views[0].tolist()
    hi = views[1].tolist()
    flow_keys = [(h << 64) | l for l, h in zip(lo, hi)]
    timestamps = views[3] if ref.has_timestamps else None
    return Trace(flow_keys, views[2], timestamps=timestamps, name=ref.name)
