"""Shared-memory shard-parallel ingest (DESIGN §9).

The building blocks that let several processes mutate one collector's
tables in place:

* :mod:`repro.shm.segments` — named segments with a refcounted
  registry, atexit + crash-safe unlink, ``/dev/shm`` leak checks;
* :mod:`repro.shm.planes` — the canonical SoA plane layout of a
  collector inside one segment;
* :mod:`repro.shm.ingest` — the multi-process shard ingest engine
  behind ``ShardedCollector(jobs=N)`` and ``REPRO_SHARD_JOBS``;
* :mod:`repro.shm.batch` — whole traces shared by segment name (the
  zero-copy dispatch path for netwide/pcap pipeline sources).
"""

from repro.shm.batch import SharedTraceRef, attach_trace, share_trace
from repro.shm.ingest import SHARD_JOBS_ENV, ShardIngestEngine, resolve_shard_jobs
from repro.shm.planes import (
    SHARED_PLANE_KINDS,
    adopt_planes,
    plane_arrays,
    plane_specs,
    segment_for_planes,
)
from repro.shm.segments import (
    SEGMENT_PREFIX,
    Segment,
    attach_segment,
    carve,
    create_segment,
    layout_bytes,
    owned_segments,
)

__all__ = [
    "SEGMENT_PREFIX",
    "SHARD_JOBS_ENV",
    "SHARED_PLANE_KINDS",
    "Segment",
    "SharedTraceRef",
    "ShardIngestEngine",
    "adopt_planes",
    "attach_segment",
    "attach_trace",
    "carve",
    "create_segment",
    "layout_bytes",
    "owned_segments",
    "plane_arrays",
    "plane_specs",
    "resolve_shard_jobs",
    "segment_for_planes",
    "share_trace",
]
