"""The shard-parallel ingest engine: multi-process Algorithm 1.

One :class:`ShardIngestEngine` serves one
:class:`~repro.netwide.sharding.ShardedCollector` in ``jobs > 1`` mode:

* at construction it moves every shard's SoA planes into **one owned
  shared segment** (:func:`~repro.shm.planes.segment_for_planes`) —
  the parent keeps fully functional shard collectors over the shared
  views, so queries, records and NetFlow export read the same memory
  the workers write, zero-copy;
* per batch, the coordinator's vectorized owner routing becomes one
  stable argsort: the batch's lo/hi/sizes arrays are written into a
  growable **input segment** grouped by shard (per-shard arrival order
  preserved — identical to the serial sub-batch construction), and
  each worker ingests a disjoint set of shard spans in place through
  :meth:`HashFlow.ingest_planes`;
* workers return integer cost-meter deltas per shard and the parent
  adds them to its shard twins — an **exact merge** (plain integer
  sums of the same increments the serial path makes), so merged meters
  and promotion counters are bit-identical to serial ingest.

Workers are a ``ProcessPoolExecutor`` with an initializer that
rebuilds every shard from its spec (``storage="soa"``) and adopts the
shared plane views — the layout is a function of the specs alone, so
no offsets cross the pipe.  Tasks are not pinned to processes, which
is why *every* worker holds all shards; disjoint span groups per task
keep concurrent mutation race-free.  A dead worker fails the whole
batch fast (``BrokenProcessPool`` → ``RuntimeError``) rather than
silently dropping packets.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.shm.planes import carve_for_planes, segment_for_planes
from repro.shm.segments import Segment, attach_segment, carve, create_segment

#: Environment variable selecting the default shard-ingest worker
#: count (default 1 = serial; 0 or negative = one per CPU).
SHARD_JOBS_ENV = "REPRO_SHARD_JOBS"

#: Input-segment plane dtypes: key halves + per-packet byte sizes.
_INPUT_SPECS = ((np.dtype(np.uint64)), (np.dtype(np.uint64)), (np.dtype(np.int64)))


def resolve_shard_jobs(jobs: int | None = None) -> int:
    """Resolve the shard-ingest worker count.

    Argument, else ``REPRO_SHARD_JOBS``, else 1 (serial).  ``0`` or a
    negative count means one worker per available CPU — mirroring
    :func:`repro.parallel.engine.resolve_jobs`.
    """
    if jobs is None:
        raw = os.environ.get(SHARD_JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"{SHARD_JOBS_ENV}={raw!r} is not an integer") from None
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _mp_context():
    """Prefer fork (cheap, inherits loaded numpy); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _input_layout(capacity: int):
    return [(capacity, dtype) for dtype in _INPUT_SPECS]


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
_W_SHARDS: list | None = None
_W_PLANES: Segment | None = None
_W_INPUT: tuple[str, Segment] | None = None
#: Superseded input segments: their mappings may still back live numpy
#: views from an in-flight slice, so they are parked, never closed.
_W_RETIRED: list[Segment] = []


def _init_worker(plane_segment: str, spec_dicts: list[dict]) -> None:
    """Pool initializer: rebuild every shard over the shared planes."""
    global _W_SHARDS, _W_PLANES
    from repro.shm.planes import adopt_planes
    from repro.specs import CollectorSpec, build

    _W_PLANES = attach_segment(plane_segment)
    shards = [build(CollectorSpec.from_dict(d)) for d in spec_dicts]
    for shard, views in zip(shards, carve_for_planes(_W_PLANES, shards)):
        # The shared state is authoritative; never copy the fresh
        # zeroed arrays over it.
        adopt_planes(shard, views, copy=False)
    _W_SHARDS = shards


def _input_views(name: str, capacity: int):
    """Attach (and cache) the current input segment's plane views."""
    global _W_INPUT
    if _W_INPUT is None or _W_INPUT[0] != name:
        if _W_INPUT is not None:
            _W_RETIRED.append(_W_INPUT[1])
        _W_INPUT = (name, attach_segment(name))
    return carve(_W_INPUT[1], _input_layout(capacity))


def _noop() -> None:
    """Warm-up task: forces the executor to spawn its workers."""
    return None


def _ingest_spans(
    input_segment: str,
    capacity: int,
    has_sizes: bool,
    spans: list[tuple[int, int, int]],
) -> list[tuple[int, int, int, int, int, int]]:
    """Worker entry: ingest ``(shard, start, count)`` spans in place.

    Returns per-shard meter deltas ``(shard, packets, hashes, reads,
    writes, promotions)`` — the exact integer increments this call
    made, so the parent's merge reproduces serial meters bit for bit.
    """
    assert _W_SHARDS is not None, "shard ingest pool initializer did not run"
    in_lo, in_hi, in_sizes = _input_views(input_segment, capacity)
    deltas = []
    for shard_index, start, count in spans:
        shard = _W_SHARDS[shard_index]
        meter = shard.meter
        before = (
            meter.packets, meter.hashes, meter.reads, meter.writes,
            shard.promotions,
        )
        stop = start + count
        shard.ingest_planes(
            in_lo[start:stop],
            in_hi[start:stop],
            in_sizes[start:stop] if has_sizes else None,
        )
        deltas.append((
            shard_index,
            meter.packets - before[0],
            meter.hashes - before[1],
            meter.reads - before[2],
            meter.writes - before[3],
            shard.promotions - before[4],
        ))
    return deltas


# ----------------------------------------------------------------------
# Parent-side engine
# ----------------------------------------------------------------------
class ShardIngestEngine:
    """Shared planes + worker pool behind one sharded collector.

    Args:
        shards: the parent's shard collectors (SoA-backed); their
            planes are moved into a shared segment in place.
        spec_dicts: each shard's full spec dict (seed + ``storage``
            resolved) — what workers rebuild their twins from.
        jobs: worker processes (>= 2).
    """

    def __init__(self, shards, spec_dicts: list[dict], jobs: int):
        from repro.shm.planes import adopt_planes

        self.shards = list(shards)
        self.jobs = int(jobs)
        self._spec_dicts = list(spec_dicts)
        self._planes, grouped = segment_for_planes(self.shards, label="planes")
        for shard, views in zip(self.shards, grouped):
            adopt_planes(shard, views, copy=True)
        self._pool: ProcessPoolExecutor | None = None
        self._input: tuple[Segment, int] | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("shard ingest engine is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_mp_context(),
                initializer=_init_worker,
                initargs=(self._planes.name, self._spec_dicts),
            )
        return self._pool

    def warm(self) -> None:
        """Start the worker pool eagerly (first-batch latency aside).

        Pool startup — forking workers, attaching planes, rebuilding
        shard twins — is a per-collector constant, not a per-packet
        cost; benchmarks call this so timed regions measure ingest
        only.
        """
        pool = self._ensure_pool()
        for future in [pool.submit(_noop) for _ in range(self.jobs)]:
            future.result()

    def _ensure_input(self, n: int):
        """The input segment's views, grown (power of two) to fit ``n``."""
        if self._input is None or self._input[1] < n:
            capacity = 1024
            while capacity < n:
                capacity *= 2
            if self._input is not None:
                self._input[0].unlink()
            from repro.shm.segments import layout_bytes

            segment = create_segment(
                layout_bytes(_input_layout(capacity)), label="batch"
            )
            self._input = (segment, capacity)
        segment, capacity = self._input
        return segment, capacity, carve(segment, _input_layout(capacity))

    def close(self) -> None:
        """Shut the pool down and unlink both segments (idempotent).

        The parent's shards stay queryable: unlink removes the
        ``/dev/shm`` names but the plane mappings stay valid for the
        life of the process.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._planes.unlink()
        if self._input is not None:
            self._input[0].unlink()
            self._input = None

    # -- ingest --------------------------------------------------------
    def ingest(
        self,
        owners: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        sizes: np.ndarray | None,
    ) -> None:
        """Partition one routed batch and fan it out to the workers.

        ``owners`` is the coordinator hash's vectorized routing for the
        batch.  A stable argsort groups the packets by owner shard with
        per-shard arrival order preserved — the exact sub-sequences the
        serial path builds — and each worker task ingests a disjoint
        group of shard spans.
        """
        n = len(lo)
        if not n:
            return
        n_shards = len(self.shards)
        order = np.argsort(owners, kind="stable")
        counts = np.bincount(owners.astype(np.int64), minlength=n_shards)
        starts = np.zeros(n_shards, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        segment, capacity, (in_lo, in_hi, in_sizes) = self._ensure_input(n)
        in_lo[:n] = lo[order]
        in_hi[:n] = hi[order]
        has_sizes = sizes is not None
        if has_sizes:
            in_sizes[:n] = sizes[order]
        spans = [
            (s, int(starts[s]), int(counts[s]))
            for s in range(n_shards)
            if counts[s]
        ]
        # Round-robin over non-empty spans: shard loads are hash-
        # balanced, so groups stay even without weighing.
        groups = [spans[g :: self.jobs] for g in range(self.jobs)]
        pool = self._ensure_pool()
        try:
            # submit() raises too when the pool broke between batches.
            futures = [
                pool.submit(_ingest_spans, segment.name, capacity, has_sizes, group)
                for group in groups
                if group
            ]
            for future in futures:
                for shard_index, packets, hashes, reads, writes, promotions in (
                    future.result()
                ):
                    shard = self.shards[shard_index]
                    shard.meter.add(
                        packets=packets, hashes=hashes, reads=reads, writes=writes
                    )
                    shard.promotions += promotions
        except BrokenProcessPool as exc:
            # Fail fast and loud: a dead worker means this batch is
            # partially applied; the pool is unusable, so tear it down
            # (a later batch would restart it against intact planes,
            # but the caller should treat the collector as suspect).
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            raise RuntimeError(
                "shard ingest worker crashed mid-batch (shared planes may "
                "be partially updated); see the BrokenProcessPool cause"
            ) from exc
