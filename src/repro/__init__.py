"""HashFlow: efficient and accurate flow record collection.

A from-scratch reproduction of *HashFlow For Better Flow Record
Collection* (Zhao, Shi, Yin, Wang — ICDCS 2019), including the HashFlow
algorithm, the baselines it is evaluated against (HashPipe,
ElasticSketch, FlowRadar), the substrates they depend on, and a harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import build
    from repro.traces import CAIDA

    trace = CAIDA.generate(n_flows=20_000, seed=1)
    collector = build("hashflow", memory_bytes=1 << 20)   # paper sizing
    collector.process_all(trace.keys())
    records = collector.records()          # accurate flow records
    estimate = collector.query(trace.flow_keys[0])
    twin = build(collector.spec)           # spec round-trip (JSON-able)
"""

from repro.core.hashflow import HashFlow
from repro.sketches.base import CostMeter, FlowCollector
from repro.sketches.elastic import ElasticSketch
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashpipe import HashPipe
from repro.specs import CollectorSpec, available_kinds, build
from repro.stream import Pipeline, PipelineSpec

__version__ = "1.2.0"

__all__ = [
    "CollectorSpec",
    "CostMeter",
    "ElasticSketch",
    "FlowCollector",
    "FlowRadar",
    "HashFlow",
    "HashPipe",
    "Pipeline",
    "PipelineSpec",
    "available_kinds",
    "build",
    "__version__",
]
