"""The streaming pipeline: Source → Collector → RotationPolicy → Sinks.

:class:`Pipeline` composes the four stage protocols into the standing
ingest→rotate→export loop operational NetFlow implies (paper §I, RFC
3954): a :class:`~repro.stream.sources.Source` materializes the packet
stream, the collector (any :mod:`repro.specs` registry kind) absorbs it
through the vectorized batch engine in backpressure-free
:data:`~repro.flow.batch.DEFAULT_CHUNK_SIZE` chunks (DESIGN §2/§4), a
:class:`~repro.stream.rotation.RotationPolicy` decides when records are
exported and freed, and every export fans out to the configured
:class:`~repro.stream.sinks.Sink`\\ s.

The whole composition is described by a frozen
:class:`~repro.stream.spec.PipelineSpec`; :func:`run_pipelines`
dispatches a list of such specs through the :mod:`repro.parallel` sweep
engine (serial results are bit-identical to ``REPRO_JOBS=N`` results,
the engine's standing contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.flow.batch import KeyBatch
from repro.sketches.base import FlowCollector
from repro.specs import build as build_collector
from repro.stream.records import FlowRecord, merge_flow_records
from repro.stream.rotation import RotationPolicy, TimeoutRotation, build_rotation
from repro.stream.sinks import Sink, build_sink
from repro.stream.sources import Source, build_source
from repro.stream.spec import DEFAULT_PACKET_RATE, PipelineSpec

from repro.flow.batch import DEFAULT_CHUNK_SIZE
from repro.flow.packet import DEFAULT_PACKET_BYTES


@dataclass
class PipelineResult:
    """What one pipeline run produced.

    Attributes:
        packets: packets fed end to end.
        rotations: rotation sweeps that ran (excluding the final drain).
        exported: total flow records emitted to the sinks.
        records: merged ``{key: packets}`` across every export — the
            pipeline's reported flow records (every resident record is
            drained at end of stream, so nothing is missing from this
            view).
        sinks: summaries per sink, keyed ``kind`` (or ``kind#i`` when a
            kind appears more than once), JSON-native.
    """

    packets: int
    rotations: int
    exported: int
    records: dict[int, int]
    sinks: dict[str, dict]

    def summary(self) -> dict[str, Any]:
        """One flat result row (the parallel-cell currency)."""
        return {
            "packets": self.packets,
            "rotations": self.rotations,
            "exported": self.exported,
            "flows": len(self.records),
            "records": dict(self.records),
            "sinks": {k: dict(v) for k, v in self.sinks.items()},
        }


class _MeasuredBytes:
    """A lazy per-key byte-count view over an evictable collector.

    Expiry sweeps export a handful of flows per rotation; probing each
    exported key (``byte_query``) beats materializing ``byte_records``
    over the whole table once per sweep.
    """

    __slots__ = ("_query",)

    def __init__(self, query):
        self._query = query

    def get(self, key: int, default=None):
        value = self._query(key)
        return default if value is None else value


class StreamFeeder:
    """The admit → feed → note → rotate loop over a standing collector.

    The stateful core of :meth:`Pipeline.run`, factored out so a live
    daemon (:mod:`repro.serve`) can drive the *same* loop over an
    unbounded stream: each :meth:`feed` call pushes one array batch
    through the collector under the rotation policy, carrying window
    state, sweep counters, and the clock across calls; :meth:`finish`
    runs the end-of-stream drain.  A finite source fed as one ``feed``
    + ``finish`` reproduces ``Pipeline.run`` exactly — rotation
    boundaries land on the same packet positions regardless of how the
    stream is sliced into ``feed`` calls.

    Args:
        collector: the fed :class:`~repro.sketches.base.FlowCollector`.
        rotation: the rotation policy, or None for one end-of-stream
            export.
        emit: callback ``emit(records, rotation_index, now)`` invoked
            for every export (including the final drain).
        chunk_size: packets per batched feed chunk.
    """

    def __init__(self, collector, rotation, emit, chunk_size=DEFAULT_CHUNK_SIZE):
        self.collector = collector
        self.rotation = rotation
        self.emit = emit
        self.chunk_size = int(chunk_size)
        self.rotations = 0
        self.packets = 0
        self.exported = 0
        self.now = 0.0
        self._finished = False

    def _byte_counts(self):
        """Measured per-flow byte counts, when the collector tracks them.

        Read *before* a rotation sweep frees the cells the counters
        live in.  Export-all policies get the whole-table dict;
        expiry-style sweeps (which export a few flows) get a lazy
        per-key view.
        """
        if not getattr(self.collector, "track_bytes", False):
            return None
        if isinstance(self.rotation, TimeoutRotation) and hasattr(
            self.collector, "byte_query"
        ):
            return _MeasuredBytes(self.collector.byte_query)
        return self.collector.byte_records()

    def feed(self, keys, lo, hi, sizes, timestamps) -> None:
        """Push one batch of packets through collector and rotation.

        Args:
            keys: per-packet Python-int flow keys.
            lo: per-packet low key halves (``np.uint64``).
            hi: per-packet high key halves (``np.uint64``).
            sizes: optional per-packet byte sizes (``np.int64``).
            timestamps: per-packet arrival times (``np.float64``,
                non-decreasing across calls).
        """
        rotation = self.rotation
        collector = self.collector
        pos = 0
        n = len(keys)
        while pos < n:
            limit = min(self.chunk_size, n - pos)
            if rotation is None:
                take = limit
            else:
                take = rotation.admit(limit, timestamps[pos : pos + limit])
                if take == 0 and not rotation.due():
                    raise RuntimeError(
                        f"{type(rotation).__name__} admitted 0 packets "
                        "without a due rotation"
                    )
            if take:
                sub = KeyBatch(
                    keys[pos : pos + take],
                    lo[pos : pos + take],
                    hi[pos : pos + take],
                    None if sizes is None else sizes[pos : pos + take],
                )
                collector.process_batch(sub)
                if rotation is not None:
                    rotation.note(sub, timestamps[pos : pos + take])
                pos += take
                self.now = float(timestamps[pos - 1])
            if rotation is not None and rotation.due():
                exported = rotation.collect(collector, self._byte_counts())
                self.emit(exported, self.rotations, self.now)
                self.exported += len(exported)
                self.rotations += 1
        self.packets += n

    def finish(self) -> None:
        """End-of-stream drain: export everything still resident.

        Emits exactly once (idempotent across calls), so the export
        stream is a complete record set.
        """
        if self._finished:
            return
        self._finished = True
        byte_counts = self._byte_counts()
        if self.rotation is None:
            final = [
                FlowRecord(
                    key=key,
                    packets=count,
                    reason="final",
                    octets=None if byte_counts is None else byte_counts.get(key),
                )
                for key, count in self.collector.records().items()
            ]
        else:
            final = self.rotation.drain(self.collector, byte_counts)
        self.emit(final, self.rotations, self.now)
        self.exported += len(final)


class Pipeline:
    """A composable streaming collection pipeline.

    Args:
        source: a :class:`~repro.stream.sources.Source` or its spec
            dict.
        collector: a :class:`~repro.sketches.base.FlowCollector`
            instance, or anything :func:`repro.specs.build` accepts
            (kind name, :class:`~repro.specs.CollectorSpec`, spec
            dict).
        rotation: a :class:`~repro.stream.rotation.RotationPolicy` or
            its spec dict; None runs the whole stream as one epoch
            (records export once, at the end-of-stream drain).
        sinks: sink instances or spec dicts, emitted to in order.
        chunk_size: packets per batched feed chunk.
        packet_rate: synthetic clock rate (packets/second) used when
            the source trace has no timestamps.
        packet_bytes: byte size fed per packet to byte-tracking
            collectors.

    Raises:
        ValueError: for a timeout rotation over a collector without
            per-flow eviction (``evict``).
    """

    def __init__(
        self,
        source: Source | Mapping[str, Any],
        collector,
        rotation: RotationPolicy | Mapping[str, Any] | None = None,
        sinks: Sequence[Sink | Mapping[str, Any]] = (),
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        packet_rate: float = DEFAULT_PACKET_RATE,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
    ):
        self.source = build_source(source)
        if isinstance(collector, FlowCollector):
            self.collector = collector
        else:
            self.collector = build_collector(collector)
        self.rotation = build_rotation(rotation)
        if isinstance(self.rotation, TimeoutRotation) and not hasattr(
            self.collector, "evict"
        ):
            raise ValueError(
                f"timeout rotation needs per-flow eviction, but "
                f"{type(self.collector).__name__} has no evict(); use a "
                "count/interval rotation or an evictable collector"
            )
        self.sinks = tuple(build_sink(s) for s in sinks)
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self.packet_rate = float(packet_rate)
        self.packet_bytes = int(packet_bytes)
        self._ran = False

    # ------------------------------------------------------------------
    # Spec lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: PipelineSpec | Mapping[str, Any]) -> "Pipeline":
        """Build a pipeline from a :class:`PipelineSpec` (or its dict)."""
        if not isinstance(spec, PipelineSpec):
            spec = PipelineSpec.from_dict(spec)
        return cls(
            source=spec.source,
            collector=spec.collector,
            rotation=spec.rotation,
            sinks=spec.sinks,
            chunk_size=spec.chunk_size,
            packet_rate=spec.packet_rate,
            packet_bytes=spec.packet_bytes,
        )

    @property
    def spec(self) -> PipelineSpec:
        """The :class:`PipelineSpec` reproducing this pipeline —
        ``Pipeline.from_spec(pipeline.spec)`` is a bit-identically
        behaving twin."""
        return PipelineSpec(
            source=self.source.spec,
            collector=self.collector.spec.to_dict(),
            rotation=None if self.rotation is None else self.rotation.spec,
            sinks=tuple(s.spec for s in self.sinks),
            chunk_size=self.chunk_size,
            packet_rate=self.packet_rate,
            packet_bytes=self.packet_bytes,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _emit(self, exported: list[FlowRecord], rotation: int, now: float) -> None:
        for sink in self.sinks:
            sink.emit(exported, rotation, now)

    def run(self, trace=None) -> PipelineResult:
        """Run the stream end to end.

        Args:
            trace: optional pre-materialized trace to run over instead
                of ``source.trace()`` — the parallel-dispatch path,
                where the sweep engine materializes the source's
                :class:`~repro.parallel.plan.WorkloadRef` through its
                trace cache (an exact round trip, so results are
                bit-identical to a local run).

        Returns:
            A :class:`PipelineResult`; all resident records are drained
            through the sinks before it is returned.

        Raises:
            RuntimeError: on a second call — the collector and sinks
                still hold the first run's state; rebuild via
                ``Pipeline.from_spec(pipeline.spec)`` to run again.
        """
        if self._ran:
            raise RuntimeError(
                "this pipeline has already run; build a fresh one with "
                "Pipeline.from_spec(pipeline.spec)"
            )
        self._ran = True
        if trace is None:
            trace = self.source.trace()
        sizes = (
            self.packet_bytes
            if getattr(self.collector, "track_bytes", False)
            else None
        )
        batch = trace.key_batch(sizes=sizes)
        timestamps = trace.timestamps
        if timestamps is None:
            # Deterministic synthetic clock so time-based rotation works
            # over untimestamped streams.
            timestamps = np.arange(len(trace), dtype=np.float64) / self.packet_rate
        lo, hi = batch.halves() if len(batch) else (None, None)
        n = len(batch)

        exported_all: list[FlowRecord] = []

        def emit(exported, rotation_index, now):
            self._emit(exported, rotation_index, now)
            exported_all.extend(exported)

        feeder = StreamFeeder(
            self.collector, self.rotation, emit, chunk_size=self.chunk_size
        )
        if n:
            feeder.feed(batch.keys, lo, hi, batch.sizes, timestamps)
        # End-of-stream drain: everything still resident goes through
        # the sinks, so the export stream is a complete record set.
        feeder.finish()
        rotations = feeder.rotations
        for sink in self.sinks:
            sink.close()

        names: dict[str, int] = {}
        summaries: dict[str, dict] = {}
        for sink in self.sinks:
            count = names.get(sink.kind, 0)
            names[sink.kind] = count + 1
            label = sink.kind if count == 0 else f"{sink.kind}#{count}"
            summaries[label] = sink.summary()
        return PipelineResult(
            packets=n,
            rotations=rotations,
            exported=len(exported_all),
            records=merge_flow_records(exported_all),
            sinks=summaries,
        )


def run_pipelines(
    specs: Sequence[PipelineSpec | Mapping[str, Any]],
    jobs: int | None = None,
) -> list[dict]:
    """Run pipelines as :mod:`repro.parallel` sweep cells.

    A spec whose source is parallel-dispatchable (exposes a
    :class:`~repro.parallel.plan.WorkloadRef`) is materialized by the
    engine once per distinct base trace.  Sources the engine cannot
    rebuild from data (pcap files, derived netwide vantage streams) are
    materialized **here, once**, parked in a shared-memory segment
    (:func:`repro.shm.share_trace`), and dispatched as shm-backed refs
    that workers attach zero-copy — one shared copy per distinct source,
    instead of per-worker regeneration or a hard error.  Workers rebuild
    each pipeline from its spec — serial (``jobs=1``) and parallel
    results are bit-identical.

    Args:
        specs: pipeline specs (or their dicts), in output order.
        jobs: worker processes (default: ``REPRO_JOBS`` env, else
            serial).

    Returns:
        One :meth:`PipelineResult.summary` row per spec, in input order.
    """
    import json

    from repro.parallel import SweepCell, run_plan
    from repro.parallel.plan import WorkloadRef
    from repro.stream.sources import build_source

    pipeline_specs = [
        s if isinstance(s, PipelineSpec) else PipelineSpec.from_dict(s)
        for s in specs
    ]
    cells = []
    shared: dict[str, WorkloadRef] = {}
    segments = []
    try:
        for index, spec in enumerate(pipeline_specs):
            ref = spec.workload_ref()
            if ref is None:
                # Dedupe by the source's canonical spec JSON: identical
                # sources (e.g. one netwide stream fed to several
                # collectors) are materialized and shared exactly once.
                source_key = json.dumps(dict(spec.source), sort_keys=True)
                ref = shared.get(source_key)
                if ref is None:
                    from repro.shm import share_trace

                    trace = build_source(spec.source).trace()
                    shm_ref, segment = share_trace(
                        trace, label=f"pipe{index}"
                    )
                    segments.append(segment)
                    ref = WorkloadRef(shm=tuple(shm_ref))
                    shared[source_key] = ref
            cells.append(
                SweepCell(
                    workload=ref,
                    metrics=("pipeline",),
                    params={"pipeline": spec.to_dict()},
                    label=index,
                )
            )
        results = run_plan(cells, jobs=jobs)
    finally:
        for segment in segments:
            segment.unlink()
    return [dict(result.rows[0]) for result in results]
