"""Streaming collection pipelines: Source → Collector → Rotation → Sinks.

One composable, spec-driven subsystem for the continuous collection
lifecycle the paper's introduction describes: packets are ingested in
batches, records rotate out of the fixed-size dataplane tables on a
policy (packet-count epochs, wall-clock windows, or RFC 3954
active/inactive timeouts), and every export fans out to transport
sinks (NetFlow v5, JSON/CSV lines, in-memory archive) and analysis
taps (heavy hitters, cardinality, anomaly detection).

Quickstart::

    from repro.stream import Pipeline

    pipeline = Pipeline(
        source={"kind": "synthetic",
                "params": {"profile": "caida", "n_flows": 20_000}},
        collector="hashflow",  # or a CollectorSpec / spec dict
        rotation={"kind": "timeout", "params": {"inactive_timeout": 15.0}},
        sinks=[{"kind": "netflow_v5"}, {"kind": "archive"}],
    )
    result = pipeline.run()          # records drained through the sinks
    spec = pipeline.spec             # frozen, JSON-round-trippable
    twin = spec.build()              # bit-identical reconstruction
"""

from repro.stream.pipeline import (
    Pipeline,
    PipelineResult,
    StreamFeeder,
    run_pipelines,
)
from repro.stream.durable import (
    ArchiveError,
    ArchiveView,
    RotationArchive,
    iter_manifest,
    read_archive,
)
from repro.stream.records import FlowRecord, merge_flow_records
from repro.stream.rotation import (
    ROTATIONS,
    CountRotation,
    IntervalRotation,
    RotationPolicy,
    TimeoutRotation,
    build_rotation,
    export_and_reset,
)
from repro.stream.sinks import (
    SINKS,
    AnomalyTap,
    ArchiveSink,
    CardinalityTap,
    HeavyHitterTap,
    NetFlowV5Sink,
    Sink,
    TextSink,
    build_sink,
)
from repro.stream.sources import (
    SOURCES,
    NetwideSource,
    PcapSource,
    Source,
    SyntheticSource,
    TraceArraySource,
    UDPSource,
    build_source,
)
from repro.stream.spec import (
    DEFAULT_PACKET_RATE,
    PipelineSpec,
    load_pipeline_spec,
    save_pipeline_spec,
)

__all__ = [
    "AnomalyTap",
    "ArchiveError",
    "ArchiveSink",
    "ArchiveView",
    "CardinalityTap",
    "CountRotation",
    "DEFAULT_PACKET_RATE",
    "FlowRecord",
    "HeavyHitterTap",
    "IntervalRotation",
    "NetFlowV5Sink",
    "NetwideSource",
    "PcapSource",
    "Pipeline",
    "PipelineResult",
    "PipelineSpec",
    "ROTATIONS",
    "RotationArchive",
    "RotationPolicy",
    "SINKS",
    "SOURCES",
    "Sink",
    "Source",
    "StreamFeeder",
    "SyntheticSource",
    "TextSink",
    "TimeoutRotation",
    "TraceArraySource",
    "UDPSource",
    "build_rotation",
    "build_sink",
    "build_source",
    "export_and_reset",
    "iter_manifest",
    "load_pipeline_spec",
    "merge_flow_records",
    "read_archive",
    "run_pipelines",
    "save_pipeline_spec",
]
