"""Declarative pipeline descriptions.

A :class:`PipelineSpec` is the whole-pipeline analogue of
:class:`~repro.specs.CollectorSpec`: a frozen, JSON-round-trippable
value naming every stage of a streaming pipeline — Source → Collector →
RotationPolicy → Sinks — plus the batching parameters.  Because it is
pure data, a pipeline can be written to a config file, shipped to a
worker process and rebuilt bit-identically, reseeded deterministically
for multi-instance deployments, and dispatched as a
:mod:`repro.parallel` sweep cell.

The collector stage nests a plain :class:`CollectorSpec` dict (the
currency of :mod:`repro.specs`); source, rotation, and sink stages use
the same ``{"kind": ..., "params": ...}`` shape against the stage
registries in :mod:`repro.stream.sources` /
:mod:`~repro.stream.rotation` / :mod:`~repro.stream.sinks`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.flow.batch import DEFAULT_CHUNK_SIZE
from repro.flow.packet import DEFAULT_PACKET_BYTES
from repro.specs import CollectorSpec, SpecError, reseeded

#: Synthetic clock rate (packets/second) for untimestamped sources.
DEFAULT_PACKET_RATE = 10_000.0

_FIELDS = {
    "source", "collector", "rotation", "sinks",
    "chunk_size", "packet_rate", "packet_bytes",
}


def _canonical_stage(stage: Mapping[str, Any], what: str) -> dict[str, Any]:
    """Validate and JSON-normalize one ``{"kind", "params"}`` stage."""
    if not isinstance(stage, Mapping) or not isinstance(stage.get("kind"), str):
        raise SpecError(f"{what} stage must be a {{'kind', 'params'}} mapping, "
                        f"got {stage!r}")
    extra = set(stage) - {"kind", "params"}
    if extra:
        raise SpecError(f"unknown {what} stage fields {sorted(extra)} in {stage!r}")
    params = stage.get("params", {})
    if not isinstance(params, Mapping):
        raise SpecError(f"{what} stage params must be a mapping, got {params!r}")
    try:
        params = json.loads(json.dumps(dict(params), sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{what} stage params are not JSON-serializable: {exc}") from exc
    return {"kind": stage["kind"], "params": params}


@dataclass(frozen=True, eq=False)
class PipelineSpec:
    """A frozen, JSON-round-trippable streaming-pipeline description.

    Attributes:
        source: source stage spec (see :mod:`repro.stream.sources`).
        collector: nested :class:`~repro.specs.CollectorSpec` dict.
        rotation: rotation stage spec, or None for a single
            end-of-stream export (see :mod:`repro.stream.rotation`).
        sinks: sink stage specs, in emit order (see
            :mod:`repro.stream.sinks`).
        chunk_size: packets per batched feed chunk (DESIGN §2/§4).
        packet_rate: synthetic clock rate (packets/second) applied when
            the source trace carries no timestamps, so time-based
            rotation stays well-defined and deterministic.
        packet_bytes: per-packet byte size fed to byte-tracking
            collectors (sources carry no per-packet sizes).
    """

    source: Mapping[str, Any]
    collector: Mapping[str, Any]
    rotation: Mapping[str, Any] | None = None
    sinks: tuple = ()
    chunk_size: int = DEFAULT_CHUNK_SIZE
    packet_rate: float = DEFAULT_PACKET_RATE
    packet_bytes: int = DEFAULT_PACKET_BYTES

    def __post_init__(self):
        object.__setattr__(self, "source", _canonical_stage(self.source, "source"))
        # Collector validation goes through CollectorSpec so the nested
        # shape rules (and error messages) are the registry's own.
        collector = CollectorSpec.from_dict(self.collector)
        object.__setattr__(self, "collector", collector.to_dict())
        rotation = self.rotation
        if rotation is not None:
            rotation = _canonical_stage(rotation, "rotation")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(
            self,
            "sinks",
            tuple(_canonical_stage(s, "sink") for s in self.sinks),
        )
        if self.chunk_size <= 0:
            raise SpecError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.packet_rate <= 0:
            raise SpecError(f"packet_rate must be positive, got {self.packet_rate}")
        if self.packet_bytes <= 0:
            raise SpecError(f"packet_bytes must be positive, got {self.packet_bytes}")
        object.__setattr__(self, "chunk_size", int(self.chunk_size))
        object.__setattr__(self, "packet_rate", float(self.packet_rate))
        object.__setattr__(self, "packet_bytes", int(self.packet_bytes))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PipelineSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def __repr__(self) -> str:
        rotation = "none" if self.rotation is None else self.rotation["kind"]
        sinks = ",".join(s["kind"] for s in self.sinks) or "none"
        return (
            f"PipelineSpec({self.source['kind']} -> {self.collector['kind']} "
            f"-> {rotation} -> [{sinks}])"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, JSON-native throughout."""
        return {
            "source": dict(self.source),
            "collector": dict(self.collector),
            "rotation": None if self.rotation is None else dict(self.rotation),
            "sinks": [dict(s) for s in self.sinks],
            "chunk_size": self.chunk_size,
            "packet_rate": self.packet_rate,
            "packet_bytes": self.packet_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        """Inverse of :meth:`to_dict`.

        Raises:
            SpecError: if the mapping is not of the canonical shape.
        """
        if not isinstance(data, Mapping) or "source" not in data or "collector" not in data:
            raise SpecError(f"not a pipeline spec mapping: {data!r}")
        extra = set(data) - _FIELDS
        if extra:
            raise SpecError(f"unknown pipeline spec fields {sorted(extra)} in {data!r}")
        kwargs = {k: data[k] for k in _FIELDS & set(data)}
        kwargs["sinks"] = tuple(kwargs.get("sinks", ()))
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid pipeline spec JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_stages(self, **overrides: Any) -> "PipelineSpec":
        """A new spec with some fields replaced (``source=``,
        ``rotation=``, ``sinks=``, ...)."""
        return replace(self, **overrides)

    def reseed(self, salt: int | str) -> "PipelineSpec":
        """A new spec whose *collector* hash seed is derived from
        ``salt`` (deterministically, via
        :func:`repro.specs.registry.reseeded`).

        The source is left untouched: reseeding produces an
        independent measurement instance of the *same workload*, which
        is what multi-switch / multi-epoch deployments need.
        """
        collector = reseeded(CollectorSpec.from_dict(self.collector), salt)
        return replace(self, collector=collector.to_dict())

    # ------------------------------------------------------------------
    # Construction / dispatch
    # ------------------------------------------------------------------
    def build(self):
        """Build a runnable :class:`~repro.stream.pipeline.Pipeline`."""
        from repro.stream.pipeline import Pipeline

        return Pipeline.from_spec(self)

    def workload_ref(self):
        """The source's :class:`~repro.parallel.plan.WorkloadRef`, or
        None when this pipeline cannot be dispatched as a sweep cell."""
        from repro.stream.sources import build_source

        return build_source(self.source).workload_ref()


def load_pipeline_spec(path) -> PipelineSpec:
    """Load a :class:`PipelineSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return PipelineSpec.from_json(fh.read())


def save_pipeline_spec(spec: PipelineSpec, path) -> None:
    """Write a :class:`PipelineSpec` to a JSON file (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json(indent=2) + "\n")
