"""Sinks: where a streaming pipeline's exported records go.

A :class:`Sink` receives every rotation's exported
:class:`~repro.stream.records.FlowRecord`\\ s.  Transport sinks encode
them for downstream consumers (NetFlow v5 datagrams, JSON/CSV lines, an
in-memory archive); analysis *taps* run a per-rotation analysis stage
(heavy hitters, cardinality, anomaly detection) over the export stream
instead of forwarding it.  Sinks are spec-described
(``{"kind": ..., "params": ...}``, JSON-native) so a
:class:`~repro.stream.spec.PipelineSpec` can carry any fan-out of them.
"""

from __future__ import annotations

import csv
import io
import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Mapping

from repro.flow.packet import DEFAULT_PACKET_BYTES
from repro.stream.records import FlowRecord, merge_flow_records


class Sink(ABC):
    """A spec-described consumer of exported flow records."""

    #: Registry kind name.
    kind: str = "sink"

    @abstractmethod
    def spec_params(self) -> dict[str, Any]:
        """JSON-native constructor params reproducing this sink."""

    @property
    def spec(self) -> dict[str, Any]:
        """The ``{"kind": ..., "params": ...}`` description."""
        return {"kind": self.kind, "params": self.spec_params()}

    @abstractmethod
    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        """Receive one rotation's exported records.

        Args:
            records: the rotation's exports (may be empty).
            rotation: 0-based rotation index (the end-of-stream drain
                uses the next index after the last rotation).
            now: the pipeline clock at export time (seconds).
        """

    @property
    def degraded(self) -> set[int]:
        """Rotation indices flagged degraded (lazily materialized so
        subclasses need no ``super().__init__`` call)."""
        flagged = getattr(self, "_degraded", None)
        if flagged is None:
            flagged = set()
            self._degraded = flagged
        return flagged

    def flag_degraded(self, rotation: int) -> None:
        """Mark one rotation's content as incomplete (a worker died
        holding part of that window's state) — recorded in metadata
        rather than silently wrong."""
        self.degraded.add(int(rotation))

    def _degraded_fields(self) -> dict[str, Any]:
        """Summary fields for degraded rotations (empty when clean, so
        fault-free summaries are byte-identical to pre-supervision ones)."""
        if not self.degraded:
            return {}
        return {"degraded": sorted(self.degraded)}

    def close(self) -> None:
        """End-of-stream hook (flush files, settle state); idempotent."""

    def abort(self) -> None:
        """Failure-path hook: settle state *without* emitting output.

        Called instead of :meth:`close` when the run died — a crashed
        rotation must never leave a half-written archive.  Default:
        delegate to :meth:`close` (memory sinks have nothing to skip);
        file-writing sinks override to clean up instead of write.
        """
        self.close()

    @abstractmethod
    def summary(self) -> dict[str, Any]:
        """JSON-native totals for reports and parallel result rows."""


class NetFlowV5Sink(Sink):
    """Encode every rotation as standard NetFlow v5 datagrams.

    Measured byte counts and flow timing carried on the records are
    wired into ``dOctets`` / ``first`` / ``last`` (see
    :meth:`repro.export.netflow_v5.NetFlowV5Exporter.export_flows` for
    the fallback precedence); the datagrams accumulate on
    :attr:`datagrams` for transport or parse-back verification.

    With ``directory`` set the sink is *durable*: every export is also
    written as its own rotation archive file
    (``rotation-RRRRRR-PP.nfv5``, the emit's datagrams concatenated)
    through the atomic write-then-rename + fsync + bounded-retry
    discipline of :mod:`repro.stream.durable`, and :meth:`close` seals
    the directory with a ``MANIFEST.json`` naming every file and every
    degraded rotation.  A crashed run (:meth:`abort`) never leaves a
    half-written archive — completed files are whole by construction
    and temp files are removed.

    Args:
        engine_id: exporter identifier carried in every header.
        sampling_interval: header sampling field (0 = unsampled).
        mean_packet_bytes: dOctets fallback estimate for records
            without measured byte counts.
        unix_secs: export wall-clock stamp for the headers (kept a
            constant parameter so pipeline runs are deterministic).
        directory: optional rotation-archive directory (durable mode).
    """

    kind = "netflow_v5"

    def __init__(
        self,
        engine_id: int = 0,
        sampling_interval: int = 0,
        mean_packet_bytes: int = DEFAULT_PACKET_BYTES,
        unix_secs: int = 0,
        directory: str | None = None,
    ):
        from repro.export.netflow_v5 import NetFlowV5Exporter

        self.exporter = NetFlowV5Exporter(
            engine_id=engine_id,
            sampling_interval=sampling_interval,
            mean_packet_bytes=mean_packet_bytes,
        )
        self.unix_secs = int(unix_secs)
        self.directory = None if directory is None else str(directory)
        self.datagrams: list[bytes] = []
        self._records = 0
        self._archive = None
        if self.directory is not None:
            from repro.stream.durable import RotationArchive

            self._archive = RotationArchive(self.directory, ".nfv5")
        self._closed = False

    def spec_params(self) -> dict[str, Any]:
        return {
            "engine_id": self.exporter.engine_id,
            "sampling_interval": self.exporter.sampling_interval,
            "mean_packet_bytes": self.exporter.mean_packet_bytes,
            "unix_secs": self.unix_secs,
            "directory": self.directory,
        }

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        if not records:
            return
        datagrams = self.exporter.export_flows(
            records,
            sys_uptime_ms=int(round(now * 1000.0)),
            unix_secs=self.unix_secs,
        )
        if self._archive is not None:
            self._archive.write(
                rotation,
                b"".join(datagrams),
                records=len(records),
                datagrams=len(datagrams),
            )
        self.datagrams.extend(datagrams)
        self._records += len(records)

    def parse_back(self) -> dict[int, int]:
        """Decode the accumulated datagrams back into merged records."""
        from repro.export.netflow_v5 import parse_stream

        return parse_stream(iter(self.datagrams))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._archive is not None:
            self._archive.finalize(self.degraded)

    def abort(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._archive is not None:
            self._archive.abort()

    def summary(self) -> dict[str, Any]:
        fields: dict[str, Any] = {
            "datagrams": len(self.datagrams),
            "records": self._records,
            "bytes": sum(len(d) for d in self.datagrams),
        }
        if self._archive is not None:
            fields["directory"] = self.directory
            fields["files"] = len(self._archive.entries)
        fields.update(self._degraded_fields())
        return fields


class TextSink(Sink):
    """Write exported records as JSON lines or CSV rows.

    One line per exported record with the 5-tuple broken out (the
    per-rotation sibling of :mod:`repro.export.text`'s whole-run
    dumps), annotated with the rotation index and export reason.

    With ``path`` the whole run's output is written once at
    :meth:`close`, atomically (write-then-rename + fsync + bounded
    retry, :mod:`repro.stream.durable`); with ``directory`` each
    export additionally lands in its own atomically-written rotation
    file plus a closing ``MANIFEST.json`` — the same durable-archive
    contract as :class:`NetFlowV5Sink`.  ``close``/``abort`` are
    idempotent and safe after a failed emit.

    Args:
        fmt: ``"jsonl"`` or ``"csv"``.
        path: optional output file, written on :meth:`close`; when
            None the text stays in memory (:meth:`text`).
        directory: optional per-rotation archive directory.
    """

    CSV_COLUMNS = (
        "rotation", "src_ip", "dst_ip", "src_port", "dst_port", "proto",
        "packets", "octets", "first_seen", "last_seen", "reason",
    )

    def __init__(
        self,
        fmt: str = "jsonl",
        path: str | None = None,
        directory: str | None = None,
    ):
        if fmt not in ("jsonl", "csv"):
            raise ValueError(f"unknown text sink format {fmt!r}")
        self.fmt = fmt
        self.path = None if path is None else str(path)
        self.directory = None if directory is None else str(directory)
        self._lines: list[str] = []
        self._archive = None
        if self.directory is not None:
            from repro.stream.durable import RotationArchive

            self._archive = RotationArchive(self.directory, f".{fmt}")
        self._closed = False

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.fmt

    def spec_params(self) -> dict[str, Any]:
        return {"path": self.path, "directory": self.directory}

    def _format(self, records: list[FlowRecord], rotation: int) -> list[str]:
        from repro.flow.key import format_ip, unpack_key

        lines = []
        for record in records:
            src_ip, dst_ip, src_port, dst_port, proto = unpack_key(record.key)
            row = {
                "rotation": rotation,
                "src_ip": format_ip(src_ip),
                "dst_ip": format_ip(dst_ip),
                "src_port": src_port,
                "dst_port": dst_port,
                "proto": proto,
                "packets": record.packets,
                "octets": record.octets,
                "first_seen": record.first_seen,
                "last_seen": record.last_seen,
                "reason": record.reason,
            }
            if self.fmt == "jsonl":
                lines.append(json.dumps(row, separators=(",", ":")))
            else:
                buffer = io.StringIO()
                csv.writer(buffer).writerow(row[c] for c in self.CSV_COLUMNS)
                lines.append(buffer.getvalue().rstrip("\r\n"))
        return lines

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        # Format the whole emit before touching sink state, so a
        # mid-emit failure never leaves half a rotation appended.
        lines = self._format(records, rotation)
        if self._archive is not None and lines:
            header = [",".join(self.CSV_COLUMNS)] if self.fmt == "csv" else []
            self._archive.write(
                rotation,
                ("\n".join(header + lines) + "\n").encode("utf-8"),
                records=len(lines),
            )
        self._lines.extend(lines)

    def text(self) -> str:
        """The accumulated output (CSV includes its header line)."""
        lines = self._lines
        if self.fmt == "csv":
            lines = [",".join(self.CSV_COLUMNS), *lines]
        return "\n".join(lines) + ("\n" if lines else "")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.path is not None:
            from repro.stream.durable import atomic_write_text

            atomic_write_text(self.path, self.text())
        if self._archive is not None:
            self._archive.finalize(self.degraded)

    def abort(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._archive is not None:
            self._archive.abort()

    def summary(self) -> dict[str, Any]:
        fields: dict[str, Any] = {"lines": len(self._lines), "path": self.path}
        if self._archive is not None:
            fields["directory"] = self.directory
            fields["files"] = len(self._archive.entries)
        fields.update(self._degraded_fields())
        return fields


class ArchiveSink(Sink):
    """Keep every exported record in memory.

    The streaming counterpart of ``TimeoutHashFlow.exported`` /
    ``EpochedHashFlow``'s archive: :attr:`exported` preserves each
    export verbatim, :attr:`by_rotation` groups them per rotation
    index (supervision tests compare live vs offline runs on the
    non-degraded rotations), :meth:`merged` sums per flow.
    """

    kind = "archive"

    def __init__(self):
        self.exported: list[FlowRecord] = []
        self.by_rotation: dict[int, list[FlowRecord]] = {}

    def spec_params(self) -> dict[str, Any]:
        return {}

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        self.exported.extend(records)
        if records:
            self.by_rotation.setdefault(int(rotation), []).extend(records)

    def merged(self) -> dict[int, int]:
        """Merged ``{key: packets}`` across every export."""
        return merge_flow_records(self.exported)

    def summary(self) -> dict[str, Any]:
        return {
            "exports": len(self.exported),
            "flows": len(self.merged()),
            **self._degraded_fields(),
        }


class HeavyHitterTap(Sink):
    """Per-rotation heavy-hitter stage over the export stream.

    A flow is heavy when an export reports more than ``threshold``
    packets (the paper's §IV-A definition, applied per rotation —
    a long flow split across rotations must be heavy within one).

    Args:
        threshold: packet-count threshold ``T``.
    """

    kind = "heavy_hitters"

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = int(threshold)
        self._top: dict[int, int] = {}

    def spec_params(self) -> dict[str, Any]:
        return {"threshold": self.threshold}

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        top = self._top
        threshold = self.threshold
        for record in records:
            if record.packets > threshold:
                if record.packets > top.get(record.key, 0):
                    top[record.key] = record.packets

    def top(self) -> dict[int, int]:
        """Detected heavy hitters: ``{key: largest exported count}``."""
        return dict(self._top)

    def summary(self) -> dict[str, Any]:
        return {
            "heavy_hitters": len(self._top),
            "threshold": self.threshold,
            **self._degraded_fields(),
        }


class CardinalityTap(Sink):
    """Track distinct flows seen across the export stream.

    Exact over exports (each export carries a full flow ID), with a
    per-emit series for trend analysis — one entry per rotation plus
    one for the end-of-stream drain, so ``len(series)`` counts emits,
    not rotations.
    """

    kind = "cardinality"

    def __init__(self):
        self._seen: set[int] = set()
        self.series: list[int] = []

    def spec_params(self) -> dict[str, Any]:
        return {}

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        self._seen.update(record.key for record in records)
        self.series.append(len(records))

    def flows_seen(self) -> int:
        """Distinct flows exported so far."""
        return len(self._seen)

    def summary(self) -> dict[str, Any]:
        return {
            "flows_seen": len(self._seen),
            "exports": sum(self.series),
            **self._degraded_fields(),
        }


class AnomalyTap(Sink):
    """Per-rotation anomaly stage: volume spikes and scanner fan-out.

    An EWMA detector (:class:`repro.analysis.anomaly.EwmaDetector`)
    watches the per-rotation exported-record volume for spikes (the
    DDoS/flood signature); optionally each rotation is scanned for
    high-fan-out sources (:func:`repro.analysis.anomaly.detect_scanners`).

    Args:
        alpha: EWMA smoothing factor.
        k: alert threshold in EWMA standard deviations.
        warmup: rotations absorbed before alerting starts.
        min_fanout: when set, flag sources touching more than this many
            distinct destinations within one rotation.
    """

    kind = "anomaly"

    def __init__(
        self,
        alpha: float = 0.3,
        k: float = 3.0,
        warmup: int = 5,
        min_fanout: int | None = None,
    ):
        from repro.analysis.anomaly import EwmaDetector

        self.detector = EwmaDetector(alpha=alpha, k=k, warmup=warmup)
        self.min_fanout = min_fanout
        self.alerts: list[int] = []
        self.scanners: dict[int, int] = {}

    def spec_params(self) -> dict[str, Any]:
        return {
            "alpha": self.detector.alpha,
            "k": self.detector.k,
            "warmup": self.detector.warmup,
            "min_fanout": self.min_fanout,
        }

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        if self.detector.observe(float(len(records))):
            self.alerts.append(rotation)
        if self.min_fanout is not None and records:
            from repro.analysis.anomaly import detect_scanners

            counts = merge_flow_records(records)
            for src, fanout in detect_scanners(counts, self.min_fanout).items():
                if fanout > self.scanners.get(src, 0):
                    self.scanners[src] = fanout

    def summary(self) -> dict[str, Any]:
        return {
            "alerts": len(self.alerts),
            "scanners": len(self.scanners),
            **self._degraded_fields(),
        }


def _build_store_sink(**params: Any) -> Sink:
    """Lazily construct a flow-store sink (flowdb imports stream, so
    the registry must not import flowdb at module load)."""
    from repro.flowdb.sink import FlowStoreSink

    return FlowStoreSink(**params)


#: Registered sink kinds (text formats register per format name).
SINKS: dict[str, Any] = {
    NetFlowV5Sink.kind: NetFlowV5Sink,
    "jsonl": lambda **params: TextSink(fmt="jsonl", **params),
    "csv": lambda **params: TextSink(fmt="csv", **params),
    "store": _build_store_sink,
    ArchiveSink.kind: ArchiveSink,
    HeavyHitterTap.kind: HeavyHitterTap,
    CardinalityTap.kind: CardinalityTap,
    AnomalyTap.kind: AnomalyTap,
}


def build_sink(spec: Mapping[str, Any] | Sink) -> Sink:
    """Build a sink from its spec dict (passthrough for instances)."""
    if isinstance(spec, Sink):
        return spec
    kind = spec.get("kind") if isinstance(spec, Mapping) else None
    if kind not in SINKS:
        raise ValueError(
            f"unknown sink kind {kind!r}; available: {', '.join(sorted(SINKS))}"
        )
    return SINKS[kind](**dict(spec.get("params", {})))
