"""Packet sources: where a streaming pipeline's traffic comes from.

A :class:`Source` materializes a :class:`~repro.traces.trace.Trace`
(the pipeline batches it into :class:`~repro.flow.batch.KeyBatch`
chunks) and is described by JSON-native ``{"kind": ..., "params": ...}``
data, so a :class:`~repro.stream.spec.PipelineSpec` can name its
traffic the same way it names its collector.

Sources that correspond exactly to a
:class:`~repro.parallel.plan.WorkloadRef` (synthetic profiles, saved
trace-array directories) also expose that ref, which is what lets a
pipeline be dispatched as a :mod:`repro.parallel` cell: the worker
materializes the ref through the engine's trace cache and the pipeline
runs over it bit-identically to a local run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping

from repro.traces.trace import Trace


class Source(ABC):
    """A spec-described packet-stream source."""

    #: Registry kind name.
    kind: str = "source"

    @abstractmethod
    def spec_params(self) -> dict[str, Any]:
        """JSON-native constructor params reproducing this source."""

    @property
    def spec(self) -> dict[str, Any]:
        """The ``{"kind": ..., "params": ...}`` description."""
        return {"kind": self.kind, "params": self.spec_params()}

    @abstractmethod
    def trace(self) -> Trace:
        """Materialize the packet stream."""

    def workload_ref(self):
        """The equivalent :class:`~repro.parallel.plan.WorkloadRef`,
        or None for sources the sweep engine cannot rebuild from data
        (pcap files outside the trace cache, derived netwide streams).
        """
        return None


class SyntheticSource(Source):
    """A calibrated synthetic trace profile (Table I traces).

    Args:
        profile: profile name (:data:`repro.traces.profiles.PROFILES`).
        n_flows: flows to generate.
        seed: generation seed.
        interleave: packet interleaving mode (``"uniform"`` /
            ``"temporal"``); only uniform sources are parallel-
            dispatchable (the :class:`WorkloadRef` vocabulary).
        force_max: pin the largest flow to the profile's Table I max.
    """

    kind = "synthetic"

    def __init__(
        self,
        profile: str,
        n_flows: int,
        seed: int = 0,
        interleave: str = "uniform",
        force_max: bool = False,
    ):
        from repro.traces.profiles import PROFILES

        if profile not in PROFILES:
            raise ValueError(
                f"unknown trace profile {profile!r}; known: {sorted(PROFILES)}"
            )
        if n_flows <= 0:
            raise ValueError(f"n_flows must be positive, got {n_flows}")
        self.profile = profile
        self.n_flows = int(n_flows)
        self.seed = int(seed)
        self.interleave = interleave
        self.force_max = bool(force_max)

    def spec_params(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "n_flows": self.n_flows,
            "seed": self.seed,
            "interleave": self.interleave,
            "force_max": self.force_max,
        }

    def trace(self) -> Trace:
        from repro.traces.profiles import PROFILES

        return PROFILES[self.profile].generate(
            n_flows=self.n_flows,
            seed=self.seed,
            interleave=self.interleave,
            force_max=self.force_max,
        )

    def workload_ref(self):
        if self.interleave != "uniform":
            return None
        from repro.parallel.plan import WorkloadRef

        return WorkloadRef(
            profile=self.profile,
            n_flows=self.n_flows,
            seed=self.seed,
            force_max=self.force_max,
        )


class TraceArraySource(Source):
    """A saved trace-array directory, optionally a packet slice of it.

    Args:
        path: directory written by
            :func:`repro.traces.io.save_trace_arrays`.
        start: first packet of the slice (with ``stop``).
        stop: one past the last packet of the slice.
    """

    kind = "trace_arrays"

    def __init__(self, path: str, start: int | None = None, stop: int | None = None):
        if (start is None) != (stop is None):
            raise ValueError("start and stop must be provided together")
        self.path = str(path)
        self.start = start
        self.stop = stop

    def spec_params(self) -> dict[str, Any]:
        return {"path": self.path, "start": self.start, "stop": self.stop}

    def trace(self) -> Trace:
        from repro.traces.io import load_trace_arrays

        trace = load_trace_arrays(self.path)
        if self.start is not None:
            return trace.slice_packets(self.start, min(self.stop, len(trace)))
        return trace

    def workload_ref(self):
        from repro.parallel.plan import WorkloadRef

        return WorkloadRef(path=self.path, start=self.start, stop=self.stop)


class PcapSource(Source):
    """A pcap capture imported through :func:`repro.traces.pcap.read_pcap`.

    Args:
        path: pcap file path.
    """

    kind = "pcap"

    def __init__(self, path: str):
        self.path = str(path)

    def spec_params(self) -> dict[str, Any]:
        return {"path": self.path}

    def trace(self) -> Trace:
        from repro.traces.pcap import read_pcap

        return read_pcap(self.path)


class NetwideSource(Source):
    """A multi-vantage stream: one trace observed across a topology.

    The base trace is routed over a leaf/spine fabric
    (:func:`repro.netwide.topology.fat_tree_core`) and the per-switch
    observation streams are concatenated in sorted switch order
    (:meth:`~repro.netwide.topology.FlowRouter.vantage_stream`): a flow
    traversing three switches contributes its packets three times, the
    aggregate stream a network-wide collection point ingests.

    Args:
        profile: synthetic profile of the base trace.
        n_flows: flows in the base trace.
        seed: base-trace generation seed.
        k_edge: edge switches in the fabric.
        k_core: core switches in the fabric.
        router_seed: flow-to-edge assignment seed.
    """

    kind = "netwide"

    def __init__(
        self,
        profile: str,
        n_flows: int,
        seed: int = 0,
        k_edge: int = 4,
        k_core: int = 2,
        router_seed: int = 0,
    ):
        self.base = SyntheticSource(profile, n_flows, seed=seed)
        self.k_edge = int(k_edge)
        self.k_core = int(k_core)
        self.router_seed = int(router_seed)

    def spec_params(self) -> dict[str, Any]:
        return {
            "profile": self.base.profile,
            "n_flows": self.base.n_flows,
            "seed": self.base.seed,
            "k_edge": self.k_edge,
            "k_core": self.k_core,
            "router_seed": self.router_seed,
        }

    def trace(self) -> Trace:
        from repro.netwide.topology import FlowRouter, fat_tree_core
        from repro.traces.trace import trace_from_keys

        base = self.base.trace()
        router = FlowRouter(
            fat_tree_core(self.k_edge, self.k_core), seed=self.router_seed
        )
        keys = router.vantage_stream(base)
        return trace_from_keys(keys, name=f"{base.name}-netwide")


class UDPSource(Source):
    """A live UDP NetFlow v5 listener (the :mod:`repro.serve` source).

    Unlike every other source this one has no finite trace: datagrams
    arrive on the wire and are decoded straight into the serve daemon's
    shared-memory packet rings (:mod:`repro.serve.codec`).  It exists
    as a registered source kind so a :class:`~repro.stream.spec.
    PipelineSpec` can *name* live traffic the same way it names a
    profile — such a spec is runnable by ``repro-experiments serve``,
    not by :meth:`~repro.stream.pipeline.Pipeline.run`.

    Args:
        host: listen address (default loopback).
        port: listen UDP port; 0 binds an ephemeral port (the daemon
            reports the bound address).
    """

    kind = "udp"

    def __init__(self, host: str = "127.0.0.1", port: int = 2055):
        if not 0 <= int(port) <= 0xFFFF:
            raise ValueError(f"port out of range: {port}")
        self.host = str(host)
        self.port = int(port)

    def spec_params(self) -> dict[str, Any]:
        return {"host": self.host, "port": self.port}

    def trace(self) -> Trace:
        raise RuntimeError(
            "a live UDP source has no finite trace; run this pipeline "
            "under the serve daemon (repro-experiments serve)"
        )


#: Registered source kinds.
SOURCES: dict[str, type[Source]] = {
    SyntheticSource.kind: SyntheticSource,
    TraceArraySource.kind: TraceArraySource,
    PcapSource.kind: PcapSource,
    NetwideSource.kind: NetwideSource,
    UDPSource.kind: UDPSource,
}


def build_source(spec: Mapping[str, Any] | Source) -> Source:
    """Build a source from its spec dict (passthrough for instances)."""
    if isinstance(spec, Source):
        return spec
    kind = spec.get("kind") if isinstance(spec, Mapping) else None
    if kind not in SOURCES:
        raise ValueError(
            f"unknown source kind {kind!r}; available: {', '.join(sorted(SOURCES))}"
        )
    return SOURCES[kind](**dict(spec.get("params", {})))
