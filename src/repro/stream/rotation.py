"""Rotation policies: when and what a standing collector exports.

Operational flow collection never reports once at the end of a run — it
*rotates*: tables are exported and freed on a schedule so long-lived
measurement keeps absorbing new flows.  The repo grew three separate
embodiments of that idea (``EpochedHashFlow``'s packet-count epochs,
``traces.replay.split_by_time``'s wall-clock windows, and
``TimeoutHashFlow``'s RFC 3954 active/inactive expiry); this module
unifies them behind one :class:`RotationPolicy` protocol that both the
streaming :class:`~repro.stream.pipeline.Pipeline` and the legacy
wrapper collectors (now thin adapters) drive.

A policy answers four questions:

* :meth:`~RotationPolicy.admit` — how many of the next pending packets
  may be fed before a rotation check is due (so a batched feed never
  overruns a rotation boundary);
* :meth:`~RotationPolicy.note` — account a sub-batch that was just fed;
* :meth:`~RotationPolicy.due` — is a rotation sweep pending;
* :meth:`~RotationPolicy.collect` / :meth:`~RotationPolicy.drain` —
  export the due records (evicting or resetting collector state) as
  :class:`~repro.stream.records.FlowRecord`\\ s.

Policies are spec-described (``{"kind": ..., "params": ...}``,
JSON-native) so a :class:`~repro.stream.spec.PipelineSpec` can nest
them next to the collector's :class:`~repro.specs.CollectorSpec`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping

import numpy as np

from repro.flow.batch import KeyBatch
from repro.stream.records import FlowRecord


def export_and_reset(collector) -> dict[int, int]:
    """Export a collector's records and reset its tables in place.

    The cost meter's cumulative counters survive the reset (rotation is
    control-plane work; the dataplane cost history must not vanish with
    the tables) — this is the exact bookkeeping
    :meth:`~repro.core.adaptive.EpochedHashFlow.rotate` has always
    done, hoisted here so every epoch-style rotation shares it.
    """
    exported = collector.records()
    meter = collector.meter
    packets = meter.packets
    hashes, reads, writes = meter.hashes, meter.reads, meter.writes
    collector.reset()
    meter.packets = packets
    meter.hashes, meter.reads, meter.writes = hashes, reads, writes
    return exported


def _records_from(
    exported: Mapping[int, int],
    reason: str,
    byte_counts: Mapping[int, int] | None,
) -> list[FlowRecord]:
    """Wrap an exported ``{key: packets}`` map as :class:`FlowRecord`\\ s."""
    if byte_counts is None:
        return [
            FlowRecord(key=key, packets=count, reason=reason)
            for key, count in exported.items()
        ]
    return [
        FlowRecord(
            key=key, packets=count, reason=reason, octets=byte_counts.get(key)
        )
        for key, count in exported.items()
    ]


class RotationPolicy(ABC):
    """When to export records from a standing collector, and which.

    Subclasses implement the batched streaming protocol used by
    :class:`~repro.stream.pipeline.Pipeline` (``admit`` → feed →
    ``note`` → ``due`` → ``collect``) plus whatever scalar hooks their
    legacy adapter needs.  All state a policy keeps is control-plane
    state (packet counters, per-flow timestamps); the collector's
    tables are only touched through ``records()``/``reset()``/
    ``evict()`` during a sweep.
    """

    #: Registry kind name (``"count"`` / ``"interval"`` / ``"timeout"``).
    kind: str = "rotation"

    @abstractmethod
    def spec_params(self) -> dict[str, Any]:
        """JSON-native constructor params reproducing this policy."""

    @property
    def spec(self) -> dict[str, Any]:
        """The ``{"kind": ..., "params": ...}`` description."""
        return {"kind": self.kind, "params": self.spec_params()}

    @abstractmethod
    def reset(self) -> None:
        """Clear all rotation state."""

    # ------------------------------------------------------------------
    # Batched streaming protocol (Pipeline)
    # ------------------------------------------------------------------
    @abstractmethod
    def admit(self, n: int, timestamps: np.ndarray | None) -> int:
        """How many of the next ``n`` pending packets may be fed before
        a rotation check.

        Args:
            n: packets pending in the current chunk.
            timestamps: their arrival times (length >= ``n``), or None
                for an untimestamped stream.

        Returns:
            A count in ``[0, n]``.  Returning 0 promises that
            :meth:`due` is True (the pipeline must rotate before
            feeding anything further).
        """

    @abstractmethod
    def note(self, batch: KeyBatch, timestamps: np.ndarray | None) -> None:
        """Account a sub-batch that was just fed to the collector."""

    @abstractmethod
    def due(self) -> bool:
        """Whether a rotation sweep is pending."""

    @abstractmethod
    def collect(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        """Run the due rotation: export (and free) the due records.

        Args:
            collector: the fed collector; epoch-style policies export
                everything and reset it, expiry-style policies evict
                per flow.
            byte_counts: optional measured ``{key: octets}`` gathered
                by the caller *before* the sweep (the sweep frees the
                cells the counts live in).
        """

    def drain(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        """Export everything still resident (end-of-stream).

        Default: one final export-and-reset with reason ``"final"``.
        """
        exported = export_and_reset(collector)
        self.reset()
        if not exported:
            return []
        return _records_from(exported, "final", byte_counts)


class CountRotation(RotationPolicy):
    """Rotate after every ``epoch_packets`` packets.

    The policy behind :class:`~repro.core.adaptive.EpochedHashFlow`:
    a fixed packet budget per epoch, export-all at the boundary.

    Args:
        epoch_packets: packets per epoch (> 0).
    """

    kind = "count"

    def __init__(self, epoch_packets: int):
        if epoch_packets <= 0:
            raise ValueError(f"epoch_packets must be positive, got {epoch_packets}")
        self.epoch_packets = int(epoch_packets)
        self._in_epoch = 0

    def spec_params(self) -> dict[str, Any]:
        return {"epoch_packets": self.epoch_packets}

    def reset(self) -> None:
        self._in_epoch = 0

    # -- scalar adapter hooks (EpochedHashFlow) ------------------------
    def tick(self) -> bool:
        """Count one packet; returns whether the epoch just filled."""
        self._in_epoch += 1
        return self._in_epoch >= self.epoch_packets

    def mark_rotated(self) -> None:
        """Start a fresh epoch (the adapter ran its own export)."""
        self._in_epoch = 0

    # -- batched protocol ----------------------------------------------
    def admit(self, n: int, timestamps: np.ndarray | None) -> int:
        return min(n, self.epoch_packets - self._in_epoch)

    def note(self, batch: KeyBatch, timestamps: np.ndarray | None) -> None:
        self._in_epoch += len(batch)

    def due(self) -> bool:
        return self._in_epoch >= self.epoch_packets

    def collect(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        exported = export_and_reset(collector)
        self._in_epoch = 0
        return _records_from(exported, "epoch", byte_counts)


class IntervalRotation(RotationPolicy):
    """Rotate at fixed wall-clock window boundaries.

    The streaming form of :func:`repro.traces.replay.split_by_time`:
    windows are ``[k*window, (k+1)*window)`` anchored at the first
    packet's timestamp, and empty windows are skipped (no empty
    exports), matching the splitter's behaviour.

    Args:
        window: window length in seconds (> 0).
    """

    kind = "interval"

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._epoch_end: float | None = None
        self._due = False

    def spec_params(self) -> dict[str, Any]:
        return {"window": self.window}

    def reset(self) -> None:
        self._epoch_end = None
        self._due = False

    def admit(self, n: int, timestamps: np.ndarray | None) -> int:
        if timestamps is None:
            raise ValueError("interval rotation needs packet timestamps")
        first = float(timestamps[0])
        if self._epoch_end is None:
            self._epoch_end = (first // self.window + 1.0) * self.window
        if first >= self._epoch_end:
            # Advance past empty windows in one go; the pending export
            # belongs to the window(s) that just closed.
            while first >= self._epoch_end:
                self._epoch_end += self.window
            self._due = True
            return 0
        return int(np.searchsorted(timestamps[:n], self._epoch_end, side="left"))

    def note(self, batch: KeyBatch, timestamps: np.ndarray | None) -> None:
        pass  # window state advances in admit; nothing per-batch

    def due(self) -> bool:
        return self._due

    def collect(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        exported = export_and_reset(collector)
        self._due = False
        return _records_from(exported, "interval", byte_counts)


class TimeoutRotation(RotationPolicy):
    """RFC 3954 active/inactive timeout expiry.

    The policy behind :class:`~repro.core.timeout.TimeoutHashFlow`:
    per-flow first/last-seen timestamps live control-plane side, an
    expiry sweep runs every ``expiry_interval`` packets, and a sweep
    exports (then evicts) every flow idle past ``inactive_timeout`` or
    alive past ``active_timeout``.  Requires a collector with a
    per-flow ``evict`` method (e.g. HashFlow).

    Args:
        inactive_timeout: seconds of silence before export (NetFlow
            default: 15s).
        active_timeout: maximum record lifetime before a mid-flow
            export (NetFlow default: 30min).
        expiry_interval: packets between sweeps.
    """

    kind = "timeout"

    def __init__(
        self,
        inactive_timeout: float = 15.0,
        active_timeout: float = 1800.0,
        expiry_interval: int = 1024,
    ):
        if inactive_timeout <= 0 or active_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if active_timeout < inactive_timeout:
            raise ValueError("active timeout must be >= inactive timeout")
        if expiry_interval <= 0:
            raise ValueError(f"expiry_interval must be positive, got {expiry_interval}")
        self.inactive_timeout = float(inactive_timeout)
        self.active_timeout = float(active_timeout)
        self.expiry_interval = int(expiry_interval)
        self._first_seen: dict[int, float] = {}
        self._last_seen: dict[int, float] = {}
        self._now = 0.0
        self._since_sweep = 0

    def spec_params(self) -> dict[str, Any]:
        return {
            "inactive_timeout": self.inactive_timeout,
            "active_timeout": self.active_timeout,
            "expiry_interval": self.expiry_interval,
        }

    def reset(self) -> None:
        self._first_seen.clear()
        self._last_seen.clear()
        self._now = 0.0
        self._since_sweep = 0

    # -- scalar adapter hooks (TimeoutHashFlow) ------------------------
    @property
    def now(self) -> float:
        """The policy's clock: the latest timestamp observed."""
        return self._now

    def track(self, key: int, timestamp: float) -> bool:
        """Observe one timestamped packet; returns whether a sweep is due."""
        self._now = max(self._now, timestamp)
        if key not in self._first_seen:
            self._first_seen[key] = timestamp
        self._last_seen[key] = timestamp
        self._since_sweep += 1
        return self._since_sweep >= self.expiry_interval

    def touch(self, key: int) -> None:
        """Observe an untimestamped packet: timing maps update at the
        current clock, but the clock and the sweep counter stand still
        (plain ``process(key)`` semantics)."""
        self._first_seen.setdefault(key, self._now)
        self._last_seen[key] = self._now

    def flush_horizon(self) -> float:
        """A clock value late enough to expire every resident flow."""
        return self._now + self.active_timeout + self.inactive_timeout

    def sweep(
        self,
        collector,
        now: float,
        byte_counts: Mapping[int, int] | None = None,
    ) -> list[FlowRecord]:
        """Export and evict every flow past a timeout at clock ``now``."""
        self._since_sweep = 0
        exported: list[FlowRecord] = []
        for key, last in list(self._last_seen.items()):
            first = self._first_seen[key]
            if now - last >= self.inactive_timeout:
                reason = "inactive"
            elif now - first >= self.active_timeout:
                reason = "active"
            else:
                continue
            count = collector.query(key)
            if count > 0:
                exported.append(
                    FlowRecord(
                        key=key,
                        packets=count,
                        first_seen=first,
                        last_seen=last,
                        reason=reason,
                        octets=None if byte_counts is None else byte_counts.get(key),
                    )
                )
            collector.evict(key)
            del self._first_seen[key]
            del self._last_seen[key]
        return exported

    # -- batched protocol ----------------------------------------------
    def admit(self, n: int, timestamps: np.ndarray | None) -> int:
        return min(n, self.expiry_interval - self._since_sweep)

    def note(self, batch: KeyBatch, timestamps: np.ndarray | None) -> None:
        if timestamps is None:
            raise ValueError("timeout rotation needs packet timestamps")
        first_seen = self._first_seen
        last_seen = self._last_seen
        times = (
            timestamps.tolist()
            if isinstance(timestamps, np.ndarray)
            else list(timestamps)
        )
        for key, ts in zip(batch.keys, times):
            if key not in first_seen:
                first_seen[key] = ts
            last_seen[key] = ts
        # Timestamps are non-decreasing within a trace, so the last
        # packet of the sub-batch carries the latest clock.
        self._now = max(self._now, times[-1])
        self._since_sweep += len(batch)

    def due(self) -> bool:
        return self._since_sweep >= self.expiry_interval

    def collect(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        return self.sweep(collector, self._now, byte_counts)

    def drain(
        self, collector, byte_counts: Mapping[int, int] | None = None
    ) -> list[FlowRecord]:
        """One sweep with an infinitely late clock (everything expires)."""
        exported = self.sweep(collector, self.flush_horizon(), byte_counts)
        self.reset()
        return exported


#: Registered rotation kinds.
ROTATIONS: dict[str, type[RotationPolicy]] = {
    CountRotation.kind: CountRotation,
    IntervalRotation.kind: IntervalRotation,
    TimeoutRotation.kind: TimeoutRotation,
}


def build_rotation(spec: Mapping[str, Any] | RotationPolicy | None):
    """Build a rotation policy from its spec dict (passthrough for
    instances and None)."""
    if spec is None or isinstance(spec, RotationPolicy):
        return spec
    kind = spec.get("kind") if isinstance(spec, Mapping) else None
    if kind not in ROTATIONS:
        raise ValueError(
            f"unknown rotation kind {kind!r}; available: {', '.join(sorted(ROTATIONS))}"
        )
    return ROTATIONS[kind](**dict(spec.get("params", {})))
