"""The flow-record currency of the streaming pipeline.

Every stage boundary in :mod:`repro.stream` — rotation policies
exporting from a collector, sinks receiving what was exported — speaks
:class:`FlowRecord`: a frozen per-flow export carrying the packed key,
the packet count, optional byte and timing information, and the export
reason.  It is a superset of the record
:class:`~repro.core.timeout.TimeoutHashFlow` has always exported
(``ExportedRecord`` is now an alias of this class), so timeout expiry,
epoch rotation and end-of-run drains all produce the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One exported flow record.

    Attributes:
        key: packed 104-bit flow identifier.
        packets: recorded packet count at export time.
        first_seen: flow start timestamp (seconds); None when the
            exporting stage tracks no per-flow timing (a measured
            t=0.0 is timing, and is distinct from "untracked").
        last_seen: last packet timestamp (seconds); None likewise.
        reason: why the record was exported — ``"inactive"`` /
            ``"active"`` (timeout expiry), ``"epoch"`` / ``"interval"``
            (rotation), or ``"final"`` (end-of-stream drain).
        octets: measured byte count, when the collector tracks real
            byte volumes (e.g. ``HashFlow(track_bytes=True)``); None
            means "not measured" and lets exporters fall back to their
            mean-packet-size estimate.
    """

    key: int
    packets: int
    first_seen: float | None = None
    last_seen: float | None = None
    reason: str = ""
    octets: int | None = None


def merge_flow_records(records) -> dict[int, int]:
    """Sum an iterable of :class:`FlowRecord` into ``{key: packets}``.

    Flows exported more than once (timeout re-exports, epoch spans)
    accumulate, exactly as a downstream NetFlow collector would sum
    them.
    """
    merged: dict[int, int] = {}
    for record in records:
        merged[record.key] = merged.get(record.key, 0) + record.packets
    return merged
