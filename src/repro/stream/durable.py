"""Durable file writes for sinks: atomic, fsynced, retried (DESIGN §11).

A rotation archive that a crashed writer leaves half-written is worse
than no archive — downstream tooling (Flowyager-style aggregation
layers, ``nfdump`` over an archive directory) assumes a file either
holds a complete rotation or does not exist.  This module pins the
discipline every file-writing sink uses:

* **Atomic visibility.**  Content is written to a same-directory temp
  file and ``os.replace``\\ d into place; readers never observe a
  partial file, and a crash leaves at worst an orphaned temp (cleaned
  on the next write or by :meth:`RotationArchive.abort`).
* **Durability.**  The temp file is fsynced before the rename and the
  directory is fsynced after it, so a completed rotation survives a
  host crash, not just a process crash.
* **Bounded retry.**  Transient ``OSError``\\ s (``EINTR``, ``EAGAIN``,
  ``ENOSPC`` — the disk-full case an operator may clear) are retried
  with capped exponential backoff; anything else, or exhaustion of the
  budget, propagates to the caller's abort path.

Every physical write attempt first consults :func:`repro.faults.active`
so a chaos plan can fail "the Mth sink write" deterministically.
"""

from __future__ import annotations

import errno
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

#: OSError errnos worth retrying: interrupted call, transient
#: resource pressure, and disk-full (an operator-clearable condition).
TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.ENOSPC})

#: Retry budget per logical write (attempts = retries + 1).
DEFAULT_RETRIES = 3

#: First backoff sleep; doubles per retry (0.02, 0.04, 0.08 ...).
DEFAULT_BACKOFF_S = 0.02


def _inject_fault() -> None:
    """Raise the active fault plan's injected sink-write error, if due."""
    from repro import faults

    plan = faults.active()
    if plan is not None:
        error = plan.sink_write_error()
        if error is not None:
            raise error


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a completed rename survives a host crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_once(path: Path, data: bytes, fsync: bool) -> None:
    """One atomic write attempt: temp file → fsync → rename → dir fsync."""
    _inject_fault()
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)


def atomic_write_bytes(
    path,
    data: bytes,
    fsync: bool = True,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> None:
    """Write ``data`` to ``path`` atomically, retrying transient errors.

    Args:
        path: destination file; the temp file lives beside it so the
            rename never crosses filesystems.
        data: full file content.
        fsync: fsync the file before and the directory after the
            rename (off only for tests and throwaway output).
        retries: transient-error retries after the first attempt.
        backoff_s: first retry sleep; doubles per further retry.

    Raises:
        OSError: a non-transient error, or a transient one that
            outlived the retry budget — the caller's abort path.
    """
    path = Path(path)
    for attempt in range(retries + 1):
        try:
            _write_once(path, data, fsync)
            return
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS or attempt >= retries:
                raise
            time.sleep(backoff_s * (2 ** attempt))


def atomic_write_text(path, text: str, **kwargs) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), **kwargs)


#: Manifest schema version written by :meth:`RotationArchive.finalize`.
#: Bumped on any incompatible layout change; readers reject unknown
#: versions instead of guessing.  Manifests written before the field
#: existed are read as version 1 (their layout is identical).
MANIFEST_SCHEMA = 1

#: Rotation-file naming discipline: ``rotation-RRRRRR-PP<suffix>``.
_ROTATION_FILE_RE = re.compile(r"^rotation-(\d{6,})-(\d{2,})(\.[A-Za-z0-9_.]+)$")


class ArchiveError(ValueError):
    """A rotation archive failed validation (missing/partial/foreign)."""


class RotationArchive:
    """One directory of per-rotation archive files plus a manifest.

    The shared backing of file-writing sinks
    (:class:`~repro.stream.sinks.NetFlowV5Sink`,
    :class:`~repro.stream.sinks.TextSink`): each export lands in its
    own atomically-written ``rotation-RRRRRR-PP<suffix>`` file
    (``RRRRRR`` the rotation index, ``PP`` a per-rotation part counter
    — several workers export the same wall-clock window), and
    :meth:`finalize` writes ``MANIFEST.json`` recording every file with
    its record counts and whether its rotation was flagged *degraded*
    (a worker loss made that window's content incomplete).

    Args:
        directory: archive directory (created if missing).
        suffix: rotation-file suffix, e.g. ``".nfv5"`` / ``".jsonl"``.
    """

    MANIFEST_NAME = "MANIFEST.json"

    def __init__(self, directory, suffix: str):
        self.directory = Path(directory)
        self.suffix = str(suffix)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.entries: list[dict[str, Any]] = []
        self._parts: dict[int, int] = {}

    def write(self, rotation: int, data: bytes, **meta) -> str:
        """Write one rotation part atomically; returns the file name."""
        rotation = int(rotation)
        part = self._parts.get(rotation, 0)
        self._parts[rotation] = part + 1
        name = f"rotation-{rotation:06d}-{part:02d}{self.suffix}"
        atomic_write_bytes(self.directory / name, data)
        self.entries.append(
            {"file": name, "rotation": rotation, "bytes": len(data), **meta}
        )
        return name

    def finalize(self, degraded: set[int] = frozenset()) -> None:
        """Write the manifest: every file, every degraded rotation."""
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "complete": True,
            "suffix": self.suffix,
            "degraded": sorted(int(r) for r in degraded),
            "files": [
                {**entry, "degraded": entry["rotation"] in degraded}
                for entry in self.entries
            ],
        }
        atomic_write_text(
            self.directory / self.MANIFEST_NAME,
            json.dumps(manifest, indent=2) + "\n",
        )

    def abort(self) -> None:
        """Best-effort cleanup of orphaned temp files; no manifest.

        Completed rotation files stay (they are whole by construction);
        only ``.*.tmp.*`` leftovers from an interrupted attempt go.
        """
        try:
            strays = list(self.directory.glob(".*.tmp.*"))
        except OSError:  # pragma: no cover - directory vanished
            return
        for stray in strays:
            try:
                stray.unlink()
            except OSError:  # pragma: no cover - best effort
                pass


@dataclass(frozen=True)
class ArchiveView:
    """A validated, read-only view of one rotation-archive directory.

    What :func:`read_archive` returns: the manifest's claims, checked
    against the directory (see :func:`iter_manifest` for the rules),
    with the degraded-window flags the writer recorded — the flags the
    raw rotation files themselves cannot carry, which is why readers
    must come through here rather than globbing ``rotation-*`` files
    (the silent-drop bug this type exists to close).

    Attributes:
        directory: the archive directory.
        suffix: rotation-file suffix (``".nfv5"`` / ``".jsonl"`` / ...).
        degraded: rotation indices the writer flagged degraded.
        files: validated manifest file entries, manifest order.
    """

    directory: Path
    suffix: str
    degraded: frozenset[int]
    files: tuple = ()

    def rotations(self) -> Iterator[tuple[int, list[bytes], bool]]:
        """Yield ``(rotation, payloads, degraded)`` per rotation, ascending.

        ``payloads`` holds every part file's bytes in part order (a
        multi-worker daemon writes one part per worker export of the
        same window); ``degraded`` is the writer's taint flag for that
        rotation, so downstream stores can mark the window instead of
        treating a known-incomplete rotation as whole truth.
        """
        by_rotation: dict[int, list[str]] = {}
        for entry in self.files:
            by_rotation.setdefault(int(entry["rotation"]), []).append(entry["file"])
        for rotation in sorted(by_rotation):
            payloads = [
                (self.directory / name).read_bytes()
                for name in sorted(by_rotation[rotation])
            ]
            yield rotation, payloads, rotation in self.degraded


def iter_manifest(directory, verify_sizes: bool = True) -> Iterator[dict[str, Any]]:
    """Validate an archive's ``MANIFEST.json`` and yield its file entries.

    Each yielded entry is the manifest's dict for one rotation file
    (``file`` / ``rotation`` / ``bytes`` plus writer metadata) with the
    per-file ``degraded`` flag guaranteed present.  Validation is
    strict — an archive a crashed or foreign writer left behind fails
    loudly instead of feeding a reader partial data:

    * the manifest must exist, parse, carry a known ``schema`` version
      (absent means 1, the pre-versioning layout), and be ``complete``;
    * every entry must name a plain ``rotation-RRRRRR-PP<suffix>`` file
      (no path separators, no ``.tmp.`` strays) that exists in the
      directory with exactly the recorded byte size (a size mismatch is
      a partial or tampered file the atomic-write discipline should
      have made impossible).

    Args:
        directory: the archive directory.
        verify_sizes: also stat every file and compare sizes (on by
            default; off spares the stats when a caller will read the
            files anyway and can tolerate late failure).

    Raises:
        ArchiveError: on any validation failure.
    """
    directory = Path(directory)
    manifest_path = directory / RotationArchive.MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ArchiveError(
            f"no {RotationArchive.MANIFEST_NAME} in {directory} — not a "
            "finalized rotation archive (the writer crashed before "
            "finalize, or this is not an archive directory)"
        ) from None
    except (OSError, ValueError) as exc:
        raise ArchiveError(f"unreadable manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArchiveError(f"manifest {manifest_path} is not a JSON object")
    schema = manifest.get("schema", 1)
    if schema != MANIFEST_SCHEMA:
        raise ArchiveError(
            f"manifest {manifest_path} has schema {schema!r}; this reader "
            f"understands {MANIFEST_SCHEMA}"
        )
    if manifest.get("complete") is not True:
        raise ArchiveError(f"manifest {manifest_path} is not marked complete")
    suffix = manifest.get("suffix")
    if not isinstance(suffix, str) or not suffix:
        raise ArchiveError(f"manifest {manifest_path} has no suffix")
    files = manifest.get("files")
    if not isinstance(files, list):
        raise ArchiveError(f"manifest {manifest_path} has no file list")
    for entry in files:
        if not isinstance(entry, dict):
            raise ArchiveError(f"malformed manifest entry {entry!r}")
        name = entry.get("file")
        if not isinstance(name, str) or "/" in name or os.sep in name:
            raise ArchiveError(f"manifest entry names a non-local file {name!r}")
        if ".tmp." in name or name.startswith("."):
            raise ArchiveError(
                f"manifest entry names a temp stray {name!r} — the archive "
                "was finalized around an interrupted write"
            )
        match = _ROTATION_FILE_RE.match(name)
        if match is None or not name.endswith(suffix):
            raise ArchiveError(
                f"manifest entry {name!r} does not follow the "
                f"rotation-RRRRRR-PP{suffix} naming discipline"
            )
        rotation = entry.get("rotation")
        if not isinstance(rotation, int) or rotation != int(match.group(1)):
            raise ArchiveError(
                f"manifest entry {name!r} disagrees with its recorded "
                f"rotation {rotation!r}"
            )
        size = entry.get("bytes")
        if not isinstance(size, int) or size < 0:
            raise ArchiveError(f"manifest entry {name!r} has no byte size")
        if verify_sizes:
            try:
                actual = (directory / name).stat().st_size
            except FileNotFoundError:
                raise ArchiveError(
                    f"manifest names {name!r} but the file is missing from "
                    f"{directory}"
                ) from None
            if actual != size:
                raise ArchiveError(
                    f"{name!r} is {actual} bytes but the manifest recorded "
                    f"{size} — a partial or tampered rotation file"
                )
        yield {**entry, "degraded": bool(entry.get("degraded", False))}


def read_archive(directory) -> ArchiveView:
    """Open a finalized rotation archive for reading, validated.

    The reader half of :class:`RotationArchive`: validates the manifest
    (see :func:`iter_manifest`) and returns an :class:`ArchiveView`
    whose :meth:`~ArchiveView.rotations` iterator surfaces the
    degraded-window flags next to each rotation's payload bytes —
    callers (e.g. :mod:`repro.flowdb` ingest) never hand-parse
    ``MANIFEST.json`` or silently lose taint flags again.

    Raises:
        ArchiveError: if the directory is not a whole, finalized archive.
    """
    directory = Path(directory)
    files = tuple(iter_manifest(directory))
    manifest = json.loads(
        (directory / RotationArchive.MANIFEST_NAME).read_text(encoding="utf-8")
    )
    degraded = frozenset(int(r) for r in manifest.get("degraded", []))
    return ArchiveView(
        directory=directory,
        suffix=str(manifest["suffix"]),
        degraded=degraded | frozenset(
            int(e["rotation"]) for e in files if e["degraded"]
        ),
        files=files,
    )
