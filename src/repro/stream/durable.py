"""Durable file writes for sinks: atomic, fsynced, retried (DESIGN §11).

A rotation archive that a crashed writer leaves half-written is worse
than no archive — downstream tooling (Flowyager-style aggregation
layers, ``nfdump`` over an archive directory) assumes a file either
holds a complete rotation or does not exist.  This module pins the
discipline every file-writing sink uses:

* **Atomic visibility.**  Content is written to a same-directory temp
  file and ``os.replace``\\ d into place; readers never observe a
  partial file, and a crash leaves at worst an orphaned temp (cleaned
  on the next write or by :meth:`RotationArchive.abort`).
* **Durability.**  The temp file is fsynced before the rename and the
  directory is fsynced after it, so a completed rotation survives a
  host crash, not just a process crash.
* **Bounded retry.**  Transient ``OSError``\\ s (``EINTR``, ``EAGAIN``,
  ``ENOSPC`` — the disk-full case an operator may clear) are retried
  with capped exponential backoff; anything else, or exhaustion of the
  budget, propagates to the caller's abort path.

Every physical write attempt first consults :func:`repro.faults.active`
so a chaos plan can fail "the Mth sink write" deterministically.
"""

from __future__ import annotations

import errno
import json
import os
import time
from pathlib import Path
from typing import Any

#: OSError errnos worth retrying: interrupted call, transient
#: resource pressure, and disk-full (an operator-clearable condition).
TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.ENOSPC})

#: Retry budget per logical write (attempts = retries + 1).
DEFAULT_RETRIES = 3

#: First backoff sleep; doubles per retry (0.02, 0.04, 0.08 ...).
DEFAULT_BACKOFF_S = 0.02


def _inject_fault() -> None:
    """Raise the active fault plan's injected sink-write error, if due."""
    from repro import faults

    plan = faults.active()
    if plan is not None:
        error = plan.sink_write_error()
        if error is not None:
            raise error


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a completed rename survives a host crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_once(path: Path, data: bytes, fsync: bool) -> None:
    """One atomic write attempt: temp file → fsync → rename → dir fsync."""
    _inject_fault()
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)


def atomic_write_bytes(
    path,
    data: bytes,
    fsync: bool = True,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> None:
    """Write ``data`` to ``path`` atomically, retrying transient errors.

    Args:
        path: destination file; the temp file lives beside it so the
            rename never crosses filesystems.
        data: full file content.
        fsync: fsync the file before and the directory after the
            rename (off only for tests and throwaway output).
        retries: transient-error retries after the first attempt.
        backoff_s: first retry sleep; doubles per further retry.

    Raises:
        OSError: a non-transient error, or a transient one that
            outlived the retry budget — the caller's abort path.
    """
    path = Path(path)
    for attempt in range(retries + 1):
        try:
            _write_once(path, data, fsync)
            return
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS or attempt >= retries:
                raise
            time.sleep(backoff_s * (2 ** attempt))


def atomic_write_text(path, text: str, **kwargs) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), **kwargs)


class RotationArchive:
    """One directory of per-rotation archive files plus a manifest.

    The shared backing of file-writing sinks
    (:class:`~repro.stream.sinks.NetFlowV5Sink`,
    :class:`~repro.stream.sinks.TextSink`): each export lands in its
    own atomically-written ``rotation-RRRRRR-PP<suffix>`` file
    (``RRRRRR`` the rotation index, ``PP`` a per-rotation part counter
    — several workers export the same wall-clock window), and
    :meth:`finalize` writes ``MANIFEST.json`` recording every file with
    its record counts and whether its rotation was flagged *degraded*
    (a worker loss made that window's content incomplete).

    Args:
        directory: archive directory (created if missing).
        suffix: rotation-file suffix, e.g. ``".nfv5"`` / ``".jsonl"``.
    """

    MANIFEST_NAME = "MANIFEST.json"

    def __init__(self, directory, suffix: str):
        self.directory = Path(directory)
        self.suffix = str(suffix)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.entries: list[dict[str, Any]] = []
        self._parts: dict[int, int] = {}

    def write(self, rotation: int, data: bytes, **meta) -> str:
        """Write one rotation part atomically; returns the file name."""
        rotation = int(rotation)
        part = self._parts.get(rotation, 0)
        self._parts[rotation] = part + 1
        name = f"rotation-{rotation:06d}-{part:02d}{self.suffix}"
        atomic_write_bytes(self.directory / name, data)
        self.entries.append(
            {"file": name, "rotation": rotation, "bytes": len(data), **meta}
        )
        return name

    def finalize(self, degraded: set[int] = frozenset()) -> None:
        """Write the manifest: every file, every degraded rotation."""
        manifest = {
            "complete": True,
            "suffix": self.suffix,
            "degraded": sorted(int(r) for r in degraded),
            "files": [
                {**entry, "degraded": entry["rotation"] in degraded}
                for entry in self.entries
            ],
        }
        atomic_write_text(
            self.directory / self.MANIFEST_NAME,
            json.dumps(manifest, indent=2) + "\n",
        )

    def abort(self) -> None:
        """Best-effort cleanup of orphaned temp files; no manifest.

        Completed rotation files stay (they are whole by construction);
        only ``.*.tmp.*`` leftovers from an interrupted attempt go.
        """
        try:
            strays = list(self.directory.glob(".*.tmp.*"))
        except OSError:  # pragma: no cover - directory vanished
            return
        for stray in strays:
            try:
                stray.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
