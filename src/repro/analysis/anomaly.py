"""Anomaly detection over flow records and epoch statistics.

Flow-record collection is the *input* to operational anomaly detection;
this module supplies the standard consumers:

* :class:`EwmaDetector` — exponentially-weighted mean/variance tracker
  flagging per-epoch metric spikes (e.g. a cardinality surge during a
  SYN flood);
* :func:`fanout_by_source` / :func:`fanin_by_destination` — fan-out and
  fan-in attribution from a record set;
* :func:`detect_scanners` / :func:`detect_flood_victims` — threshold
  detectors built on the attribution maps.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.flow.key import unpack_key


class EwmaDetector:
    """EWMA mean/variance spike detector.

    Maintains exponentially weighted estimates of a metric's mean and
    variance; an observation more than ``k`` standard deviations above
    the mean is flagged (one-sided: floods raise metrics).

    Args:
        alpha: EWMA smoothing factor in (0, 1]; larger adapts faster.
        k: detection threshold in standard deviations.
        warmup: observations to absorb before flagging anything.
    """

    def __init__(self, alpha: float = 0.3, k: float = 3.0, warmup: int = 5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.k = k
        self.warmup = warmup
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    @property
    def mean(self) -> float:
        """Current EWMA mean."""
        return self._mean

    @property
    def std(self) -> float:
        """Current EWMA standard deviation."""
        return math.sqrt(max(self._var, 0.0))

    def observe(self, value: float) -> bool:
        """Feed one observation; returns True if it is anomalous.

        Anomalous observations are *not* absorbed into the baseline
        (otherwise a sustained attack would normalize itself).
        """
        self._count += 1
        if self._count <= self.warmup:
            self._absorb(value)
            return False
        threshold = self._mean + self.k * max(self.std, 1e-12 + 0.05 * abs(self._mean))
        if value > threshold:
            return True
        self._absorb(value)
        return False

    def _absorb(self, value: float) -> None:
        if self._count == 1:
            self._mean = value
            self._var = 0.0
            return
        alpha = self.alpha
        delta = value - self._mean
        self._mean += alpha * delta
        self._var = (1 - alpha) * (self._var + alpha * delta * delta)


def fanout_by_source(records: dict[int, int]) -> dict[int, int]:
    """Distinct destination count per source address.

    A scanning host contacts many destinations/ports; its fan-out in
    the record set is the classic tell.
    """
    fanout: Counter[int] = Counter()
    for key in records:
        src_ip, _dst, _sp, _dp, _proto = unpack_key(key)
        fanout[src_ip] += 1
    return dict(fanout)


def fanin_by_destination(records: dict[int, int]) -> dict[int, int]:
    """Distinct flow count per destination address (flood fan-in)."""
    fanin: Counter[int] = Counter()
    for key in records:
        _src, dst_ip, _sp, _dp, _proto = unpack_key(key)
        fanin[dst_ip] += 1
    return dict(fanin)


def detect_scanners(records: dict[int, int], min_fanout: int) -> dict[int, int]:
    """Sources whose fan-out is at least ``min_fanout`` flows.

    Returns:
        ``{src_ip: fanout}`` for flagged sources.
    """
    if min_fanout < 1:
        raise ValueError(f"min_fanout must be >= 1, got {min_fanout}")
    return {
        src: fanout
        for src, fanout in fanout_by_source(records).items()
        if fanout >= min_fanout
    }


def detect_flood_victims(records: dict[int, int], min_fanin: int) -> dict[int, int]:
    """Destinations whose fan-in is at least ``min_fanin`` flows.

    Returns:
        ``{dst_ip: fanin}`` for flagged destinations.
    """
    if min_fanin < 1:
        raise ValueError(f"min_fanin must be >= 1, got {min_fanin}")
    return {
        dst: fanin
        for dst, fanin in fanin_by_destination(records).items()
        if fanin >= min_fanin
    }
