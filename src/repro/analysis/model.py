"""The paper's probabilistic occupancy model (Section III-B).

Models the utilization of the HashFlow main table after ``m`` distinct
flows are fed into ``n`` buckets with ``d`` hash functions.

**Multi-hash table** (Equation 1): with ``p_1 = e^{-m/n}``,

    p_k = p_{k-1} · exp(1 - m/n - p_{k-1}),   k >= 2

and utilization ``u_d = 1 - p_d``.

**Pipelined tables** (Equations 4, 5): sub-table sizes decay as
``n_{k+1} = α n_k`` with ``n_1 = n (1-α)/(1-α^d)``; the per-table empty
probabilities satisfy

    p_{k+1} = p_k^{1/α} · exp((1 - p_k)/α)

with ``p_1 = e^{-m/n_1}``, and overall utilization

    u = 1 - (1-α)/(1-α^d) · Σ_k α^{k-1} p_k.

Sequential simulators of the *actual* insertion processes are provided
alongside so the model can be validated (paper Fig. 2a-c: theory vs
simulation), including the paper's observation that the multi-hash
model is slightly optimistic at light load (m/n = 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.maintable import pipeline_sizes


def multihash_empty_probs(m: int, n: int, d: int) -> list[float]:
    """Empty-bucket probabilities ``p_1 .. p_d`` for the multi-hash model.

    Args:
        m: number of distinct flows fed into the table.
        n: number of buckets.
        d: number of hash functions (rounds).

    Returns:
        ``[p_1, ..., p_d]`` per Equation (1).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    load = m / n
    probs = [math.exp(-load)]
    for _ in range(1, d):
        p_prev = probs[-1]
        probs.append(p_prev * math.exp(1.0 - load - p_prev))
    return probs


def multihash_utilization(m: int, n: int, d: int) -> float:
    """Model utilization ``1 - p_d`` of the multi-hash main table."""
    return 1.0 - multihash_empty_probs(m, n, d)[-1]


def pipelined_empty_probs(m: int, n: int, d: int, alpha: float) -> list[float]:
    """Per-table empty probabilities ``p_1 .. p_d`` for pipelined tables.

    Uses the Equation (4) recursion seeded with ``p_1 = e^{-m/n_1}``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    n1 = n * (1.0 - alpha) / (1.0 - alpha**d)
    probs = [math.exp(-m / n1)]
    inv_alpha = 1.0 / alpha
    for _ in range(1, d):
        p_prev = probs[-1]
        probs.append(p_prev**inv_alpha * math.exp((1.0 - p_prev) * inv_alpha))
    return probs


def pipelined_utilization(m: int, n: int, d: int, alpha: float) -> float:
    """Model utilization of pipelined tables (Equation 5).

    Clamped to [0, 1]: the weighted empty-probability sum can overshoot
    1.0 by one ulp at m = 0, leaking a negative utilization.
    """
    probs = pipelined_empty_probs(m, n, d, alpha)
    factor = (1.0 - alpha) / (1.0 - alpha**d)
    weighted = sum(alpha**k * p for k, p in enumerate(probs))
    return min(1.0, max(0.0, 1.0 - factor * weighted))


def pipelined_improvement(m: int, n: int, d: int, alpha: float) -> float:
    """Utilization gain of pipelined tables over a multi-hash table
    (paper Fig. 2d, plotted against α for d = 3)."""
    return pipelined_utilization(m, n, d, alpha) - multihash_utilization(m, n, d)


# ----------------------------------------------------------------------
# Sequential simulators of the real insertion processes
# ----------------------------------------------------------------------
def simulate_multihash_utilization(m: int, n: int, d: int, seed: int = 0) -> float:
    """Simulate the actual multi-hash insertion process.

    Flows arrive one at a time; each probes its ``d`` buckets in order
    and takes the first empty one (this is what distinct flows experience
    under HashFlow's collision resolution).  Returns the final
    utilization.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    rng = np.random.default_rng(seed)
    probes = rng.integers(0, n, size=(m, d))
    occupied = np.zeros(n, dtype=bool)
    filled = 0
    for row in probes:
        for idx in row:
            if not occupied[idx]:
                occupied[idx] = True
                filled += 1
                break
    return filled / n


def simulate_pipelined_utilization(
    m: int, n: int, d: int, alpha: float, seed: int = 0
) -> float:
    """Simulate the actual pipelined-tables insertion process.

    Each flow probes table 1, then table 2, ... taking the first empty
    bucket.  Returns the overall utilization across all sub-tables.
    """
    sizes = pipeline_sizes(n, d, alpha)
    rng = np.random.default_rng(seed)
    # Pre-draw a probe column per sub-table.
    probes = [rng.integers(0, size, size=m) for size in sizes]
    occupied = [np.zeros(size, dtype=bool) for size in sizes]
    filled = 0
    for i in range(m):
        for t in range(d):
            idx = probes[t][i]
            table = occupied[t]
            if not table[idx]:
                table[idx] = True
                filled += 1
                break
    return filled / n


def predicted_records(m: int, n: int, d: int, alpha: float | None = None) -> float:
    """Predicted number of accurate records HashFlow reports.

    "Since each record is accurate ... this provides a concrete
    prediction on the number of records HashFlow can report"
    (Section III-B).

    Args:
        m: distinct flows offered.
        n: main-table buckets.
        d: depth.
        alpha: if given, use the pipelined model; otherwise multi-hash.

    Returns:
        Expected record count ``n * utilization`` (bounded by ``m``).
    """
    if alpha is None:
        util = multihash_utilization(m, n, d)
    else:
        util = pipelined_utilization(m, n, d, alpha)
    return min(float(m), n * util)
