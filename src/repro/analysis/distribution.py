"""Flow-size distribution recovery from collected records.

Beyond per-flow queries, operators read *distributions* off flow
records: how many flows are mice, what the p99 flow looks like, how
byte volume splits across size classes.  This module computes those
statistics from any record set and quantifies how well a collector's
(possibly truncated) record set preserves the true distribution —
another lens on the paper's accuracy story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Moments and quantiles of a flow-size distribution.

    Attributes:
        flows: number of flows.
        packets: total packets.
        mean: mean flow size.
        p50 / p90 / p99: size quantiles.
        max: largest flow.
    """

    flows: int
    packets: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: int

    @classmethod
    def from_records(cls, records: dict[int, int]) -> DistributionSummary:
        """Summarize a ``{flow: packets}`` record set."""
        if not records:
            return cls(0, 0, 0.0, 0.0, 0.0, 0.0, 0)
        sizes = sorted(records.values())
        packets = sum(sizes)
        return cls(
            flows=len(sizes),
            packets=packets,
            mean=packets / len(sizes),
            p50=_quantile(sizes, 0.50),
            p90=_quantile(sizes, 0.90),
            p99=_quantile(sizes, 0.99),
            max=sizes[-1],
        )


def _quantile(sorted_values: list[int], q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted list."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(sorted_values[lo])
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def size_histogram(
    records: dict[int, int], bins: tuple[int, ...] = (1, 2, 5, 10, 100, 1000)
) -> dict[str, int]:
    """Bucket flows into size classes.

    Args:
        records: flow records.
        bins: ascending upper bounds; a final open bucket catches the rest.

    Returns:
        Ordered mapping like ``{"<=1": n, "<=2": n, ..., ">1000": n}``.
    """
    if list(bins) != sorted(bins) or len(set(bins)) != len(bins):
        raise ValueError(f"bins must be strictly ascending, got {bins}")
    histogram = {f"<={b}": 0 for b in bins}
    overflow_label = f">{bins[-1]}"
    histogram[overflow_label] = 0
    for size in records.values():
        for b in bins:
            if size <= b:
                histogram[f"<={b}"] += 1
                break
        else:
            histogram[overflow_label] += 1
    return histogram


def weighted_mean_error(
    estimated: dict[int, int], truth: dict[int, int]
) -> float:
    """Packet-weighted relative error of a record set's *total volume*.

    Unlike ARE (per-flow, unweighted), this asks: of the true packet
    volume, how much does the collector's record set misstate?  Elephant
    flows dominate, which is why HashFlow's accurate-elephant design
    keeps this metric tiny even when many mice are summarized away.
    """
    true_packets = sum(truth.values())
    if true_packets == 0:
        return 0.0
    estimated_volume = sum(
        estimated.get(key, 0) for key in truth
    )
    return abs(estimated_volume - true_packets) / true_packets


def histogram_distance(
    a: dict[str, int], b: dict[str, int]
) -> float:
    """Total-variation distance between two size histograms (0 = equal,
    1 = disjoint).  Histograms must share bucket labels."""
    if set(a) != set(b):
        raise ValueError("histograms have different buckets")
    total_a = sum(a.values())
    total_b = sum(b.values())
    if total_a == 0 or total_b == 0:
        return 0.0 if total_a == total_b else 1.0
    return 0.5 * sum(
        abs(a[label] / total_a - b[label] / total_b) for label in a
    )
