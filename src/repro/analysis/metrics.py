"""Performance metrics from the paper's evaluation (Section IV-A).

* **FSC** (Flow Set Coverage) — fraction of the ``n`` true flows whose
  records (with correct flow IDs) an algorithm can report.
* **ARE** (Average Relative Error) — mean of ``|est/true - 1|`` over a
  set of flows, with 0 used as the estimate for unreported flows.
* **RE** (Relative Error) — ``|est/true - 1|`` for scalar quantities
  (cardinality).
* **F1 score** — harmonic mean of precision and recall for heavy-hitter
  detection.

The set metrics accept dicts, sets, iterables or ndarrays and operate
on C-level set/dict views without extra copies where possible; ARE is
array-native — it accepts a precomputed estimates array (typically from
``FlowCollector.query_batch``) or a collector, against either a
``{flow: size}`` dict or a true-size vector (see
``Workload.truth_batch`` / ``Workload.truth_counts``).  Flow keys are
104-bit packed integers, which do not fit an ``int64`` lane, so the
set intersections deliberately stay on Python's C-level hash sets
rather than ``np.intersect1d``.
"""

from __future__ import annotations

import math

import numpy as np


def _as_key_view(flows):
    """A set-like view of flow IDs without copying dicts/sets.

    Dict inputs contribute their (C-level) key view, sets pass through,
    ndarrays are converted to Python ints (104-bit keys do not fit
    int64 lanes anyway), and other iterables are materialized once.
    """
    if isinstance(flows, dict):
        return flows.keys()
    if isinstance(flows, (set, frozenset)):
        return flows
    if isinstance(flows, np.ndarray):
        return set(flows.tolist())
    return set(flows)


def flow_set_coverage(reported, true_flows) -> float:
    """Flow Set Coverage: correctly reported flow IDs over true flows.

    Args:
        reported: flow IDs the algorithm reports — a dict (records),
            set, ndarray or any iterable; duplicate IDs count once.
        true_flows: ground-truth flow IDs (same accepted types).

    Returns:
        ``|reported ∩ true| / |true|``; 1.0 for an empty truth set.
    """
    truth = _as_key_view(true_flows)
    if not truth:
        return 1.0
    return len(truth & _as_key_view(reported)) / len(truth)


def relative_error(estimate: float, true_value: float) -> float:
    """Scalar relative error ``|est/true - 1|`` (paper's RE metric).

    Raises:
        ValueError: if ``true_value`` is zero (the metric is undefined).
    """
    if true_value == 0:
        raise ValueError("relative error undefined for true value 0")
    if math.isinf(estimate):
        return math.inf
    return abs(estimate / true_value - 1.0)


def _are_from_arrays(estimates: np.ndarray, true_sizes: np.ndarray) -> float:
    """Vectorized ARE over aligned estimate / true-size vectors."""
    if len(estimates) != len(true_sizes):
        raise ValueError(
            f"estimates length {len(estimates)} != true sizes length "
            f"{len(true_sizes)}"
        )
    if not len(true_sizes):
        return 0.0
    true = np.asarray(true_sizes, dtype=np.float64)
    if (true == 0).any():
        raise ValueError("average relative error undefined for true size 0")
    est = np.asarray(estimates, dtype=np.float64)
    # inf estimates propagate to an inf mean, as relative_error does.
    return float(np.mean(np.abs(est / true - 1.0)))


def average_relative_error(estimates, true_sizes) -> float:
    """Average Relative Error of per-flow size estimates.

    Per the paper: "Given a flow ID, an algorithm estimates the number
    of packets belonging to this flow.  If no result can be reported, we
    use 0 as the default value" — a missing flow therefore contributes
    ``|0/true - 1| = 1`` to the mean.

    Args:
        estimates: one of

            * a precomputed per-flow estimates array (ndarray or
              sequence), aligned element-wise with ``true_sizes`` —
              the batch-query path (``collector.query_batch(...)``);
            * a collector exposing ``query_batch`` — queried in one
              batched pass over the truth keys;
            * a point-query callable, e.g. ``collector.query`` — the
              legacy scalar path.
        true_sizes: ground-truth sizes — a ``{flow: packets}`` dict, or
            a per-flow size vector aligned with an estimates array.
            All sizes must be > 0.

    Returns:
        The mean relative error over all true flows; 0.0 for an empty
        truth set.  ``inf`` estimates propagate to an ``inf`` mean, the
        way :func:`relative_error` propagates them.

    Raises:
        ValueError: if any true size is zero (the metric is undefined),
            or if aligned arrays differ in length.
        TypeError: if ``true_sizes`` is a plain vector but ``estimates``
            is a callable/collector (the flow keys are unknown).
    """
    if not isinstance(true_sizes, dict):
        if callable(estimates) or hasattr(estimates, "query_batch"):
            raise TypeError(
                "a true-size vector needs a precomputed estimates array; "
                "pass a {flow: size} dict to query a collector"
            )
        return _are_from_arrays(estimates, np.asarray(true_sizes))
    if not true_sizes:
        return 0.0
    if hasattr(estimates, "query_batch"):
        return _are_from_arrays(
            estimates.query_batch(list(true_sizes.keys())),
            np.fromiter(true_sizes.values(), np.int64, count=len(true_sizes)),
        )
    if callable(estimates):
        total = 0.0
        for key, true in true_sizes.items():
            if true == 0:
                raise ValueError(
                    "average relative error undefined for true size 0"
                )
            # An inf estimate yields an inf term and hence an inf mean
            # (matching the array path, which validates every true size
            # before computing); keep iterating so a zero true size
            # later in the dict still raises.
            total += abs(estimates(key) / true - 1.0)
        return total / len(true_sizes)
    return _are_from_arrays(
        estimates, np.fromiter(true_sizes.values(), np.int64, count=len(true_sizes))
    )


def precision_recall_f1(reported, true_set) -> tuple[float, float, float]:
    """Precision (PR), recall (RR) and F1 for a detection task.

    Args:
        reported: detected item IDs (``c1`` of them, ``c`` correct) —
            dict, set, ndarray or iterable.
        true_set: ground-truth item IDs (``c2`` of them), same types.

    Returns:
        ``(precision, recall, f1)``.  Degenerate cases: with an empty
        truth set, recall is 1; with an empty report, precision is 1;
        F1 is 0 whenever precision + recall is 0.
    """
    reported = _as_key_view(reported)
    truth = _as_key_view(true_set)
    correct = len(reported & truth)
    precision = correct / len(reported) if reported else 1.0
    recall = correct / len(truth) if truth else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def f1_score(reported, true_set) -> float:
    """F1 score only (paper's heavy-hitter detection metric)."""
    return precision_recall_f1(reported, true_set)[2]
