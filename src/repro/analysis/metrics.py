"""Performance metrics from the paper's evaluation (Section IV-A).

* **FSC** (Flow Set Coverage) — fraction of the ``n`` true flows whose
  records (with correct flow IDs) an algorithm can report.
* **ARE** (Average Relative Error) — mean of ``|est/true - 1|`` over a
  set of flows, with 0 used as the estimate for unreported flows.
* **RE** (Relative Error) — ``|est/true - 1|`` for scalar quantities
  (cardinality).
* **F1 score** — harmonic mean of precision and recall for heavy-hitter
  detection.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable


def flow_set_coverage(reported: Iterable[int], true_flows: Iterable[int]) -> float:
    """Flow Set Coverage: correctly reported flow IDs over true flows.

    Args:
        reported: flow IDs the algorithm reports (any iterable; duplicate
            IDs count once).
        true_flows: ground-truth flow IDs.

    Returns:
        ``|reported ∩ true| / |true|``; 1.0 for an empty truth set.
    """
    truth = set(true_flows)
    if not truth:
        return 1.0
    return len(truth.intersection(reported)) / len(truth)


def relative_error(estimate: float, true_value: float) -> float:
    """Scalar relative error ``|est/true - 1|`` (paper's RE metric).

    Raises:
        ValueError: if ``true_value`` is zero (the metric is undefined).
    """
    if true_value == 0:
        raise ValueError("relative error undefined for true value 0")
    if math.isinf(estimate):
        return math.inf
    return abs(estimate / true_value - 1.0)


def average_relative_error(
    query: Callable[[int], float], true_sizes: dict[int, int]
) -> float:
    """Average Relative Error of per-flow size estimates.

    Per the paper: "Given a flow ID, an algorithm estimates the number
    of packets belonging to this flow.  If no result can be reported, we
    use 0 as the default value" — a missing flow therefore contributes
    ``|0/true - 1| = 1`` to the mean.

    Args:
        query: point-query function, e.g. ``collector.query``.
        true_sizes: ground-truth ``{flow: packets}`` (sizes must be > 0).

    Returns:
        The mean relative error over all flows in ``true_sizes``;
        0.0 for an empty truth set.
    """
    if not true_sizes:
        return 0.0
    total = 0.0
    for key, true in true_sizes.items():
        total += abs(query(key) / true - 1.0)
    return total / len(true_sizes)


def precision_recall_f1(
    reported: Iterable[int], true_set: Iterable[int]
) -> tuple[float, float, float]:
    """Precision (PR), recall (RR) and F1 for a detection task.

    Args:
        reported: detected item IDs (``c1`` of them, ``c`` correct).
        true_set: ground-truth item IDs (``c2`` of them).

    Returns:
        ``(precision, recall, f1)``.  Degenerate cases: with an empty
        truth set, recall is 1; with an empty report, precision is 1;
        F1 is 0 whenever precision + recall is 0.
    """
    reported = set(reported)
    truth = set(true_set)
    correct = len(reported & truth)
    precision = correct / len(reported) if reported else 1.0
    recall = correct / len(truth) if truth else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def f1_score(reported: Iterable[int], true_set: Iterable[int]) -> float:
    """F1 score only (paper's heavy-hitter detection metric)."""
    return precision_recall_f1(reported, true_set)[2]
