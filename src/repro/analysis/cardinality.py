"""Cardinality-estimation evaluation (paper Fig. 7).

Thin wrapper tying collectors' cardinality estimators to the paper's RE
metric, plus a standalone comparison of the estimation techniques the
different algorithms rely on (linear counting vs. Bloom fill-fraction
vs. raw record counting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import relative_error
from repro.sketches.base import FlowCollector


@dataclass(frozen=True, slots=True)
class CardinalityResult:
    """One cardinality measurement.

    Attributes:
        estimated: the algorithm's estimate.
        actual: true distinct-flow count.
        re: relative error ``|est/actual - 1|``.
    """

    estimated: float
    actual: int
    re: float


def evaluate_cardinality(collector: FlowCollector, actual: int) -> CardinalityResult:
    """Score a collector's cardinality estimate against the truth.

    Args:
        collector: a processed collector.
        actual: true number of distinct flows (> 0).
    """
    if actual <= 0:
        raise ValueError(f"actual must be positive, got {actual}")
    est = collector.estimate_cardinality()
    return CardinalityResult(estimated=est, actual=actual, re=relative_error(est, actual))
