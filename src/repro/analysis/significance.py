"""Multi-seed experiment statistics.

Single-seed experiment results can mislead on noisy metrics;
:func:`seed_sweep` repeats a measurement across seeds and reports mean,
standard deviation and a normal-approximation confidence interval, so
comparisons like "HashFlow's ARE is lower than ElasticSketch's" can be
made with error bars (used by the statistical tests and available for
paper-scale runs).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

_Z_95 = 1.959963984540054


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Summary of one metric across seeds.

    Attributes:
        values: raw per-seed values.
        mean: sample mean.
        std: sample standard deviation (ddof=1; 0 for a single seed).
        ci_low / ci_high: 95% normal-approximation confidence interval
            for the mean.
    """

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        """Number of seeds."""
        return len(self.values)


def summarize(values: list[float]) -> SweepStats:
    """Compute :class:`SweepStats` for a list of measurements.

    Raises:
        ValueError: for an empty list.
    """
    if not values:
        raise ValueError("cannot summarize zero measurements")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
        half = _Z_95 * std / math.sqrt(n)
    else:
        std = 0.0
        half = 0.0
    return SweepStats(
        values=tuple(values),
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
    )


def seed_sweep(
    measure: Callable[[int], float], seeds: list[int]
) -> SweepStats:
    """Run ``measure(seed)`` for every seed and summarize.

    Args:
        measure: maps a seed to a scalar metric (e.g. a closure running
            one experiment trial).
        seeds: the seeds to evaluate.
    """
    return summarize([measure(seed) for seed in seeds])


def difference_is_significant(a: SweepStats, b: SweepStats) -> bool:
    """Whether two sweeps' means differ significantly (Welch-style
    normal approximation at 95%).

    With single-seed sweeps this degenerates to inequality of the two
    values — callers should use multiple seeds for a real answer.
    """
    if a.n == 1 and b.n == 1:
        return a.mean != b.mean
    se = math.sqrt(
        (a.std**2 / max(a.n, 1)) + (b.std**2 / max(b.n, 1))
    )
    if se == 0.0:
        return a.mean != b.mean
    return abs(a.mean - b.mean) / se > _Z_95
