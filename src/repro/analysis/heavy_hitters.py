"""Heavy-hitter detection evaluation (paper Figs. 9 and 10).

A heavy hitter is a flow with more than ``T`` packets (Section IV-A).
Detection quality is scored with the F1 of the reported set against the
ground truth, and estimation quality with the ARE of the reported sizes
over the correctly detected heavy hitters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.metrics import precision_recall_f1
from repro.flow.stats import heavy_hitters as true_heavy_hitters
from repro.sketches.base import FlowCollector


@dataclass(frozen=True, slots=True)
class HeavyHitterResult:
    """Outcome of one heavy-hitter evaluation.

    Attributes:
        threshold: the packet-count threshold ``T``.
        reported: number of heavy hitters the algorithm reported (c1).
        actual: number of true heavy hitters (c2).
        correct: correctly reported heavy hitters (c).
        precision: ``c / c1``.
        recall: ``c / c2``.
        f1: harmonic mean of precision and recall.
        are: ARE of size estimates over the correctly detected set
            (NaN when nothing was correctly detected).
    """

    threshold: int
    reported: int
    actual: int
    correct: int
    precision: float
    recall: float
    f1: float
    are: float


def _score(
    reported: dict[int, int],
    truth: dict[int, int],
    true_sizes: dict[int, int],
    threshold: int,
) -> HeavyHitterResult:
    """Score one threshold from already-extracted report/truth sets."""
    precision, recall, f1 = precision_recall_f1(reported, truth)
    hits = reported.keys() & truth.keys()
    if hits:
        are = sum(
            abs(reported[k] / true_sizes[k] - 1.0) for k in hits
        ) / len(hits)
    else:
        are = math.nan
    return HeavyHitterResult(
        threshold=threshold,
        reported=len(reported),
        actual=len(truth),
        correct=len(hits),
        precision=precision,
        recall=recall,
        f1=f1,
        are=are,
    )


def evaluate_heavy_hitters(
    collector: FlowCollector, true_sizes: dict[int, int], threshold: int
) -> HeavyHitterResult:
    """Score a collector's heavy-hitter detection at one threshold.

    Args:
        collector: a processed collector.
        true_sizes: ground-truth flow sizes.
        threshold: heavy-hitter packet threshold ``T``.

    Returns:
        A :class:`HeavyHitterResult`.
    """
    return _score(
        collector.heavy_hitters(threshold),
        true_heavy_hitters(true_sizes, threshold),
        true_sizes,
        threshold,
    )


def threshold_sweep(
    collector: FlowCollector, true_sizes: dict[int, int], thresholds: list[int]
) -> list[HeavyHitterResult]:
    """Evaluate heavy-hitter detection across a threshold range
    (the x-axes of Figs. 9 and 10).

    The collector's record dict and the ground-truth scan are built
    once, at the *lowest* threshold, and every other sweep point
    filters those base sets — every ``heavy_hitters(T)`` implementation
    thresholds a T-independent estimate map, so filtering the lowest
    threshold's report by ``count > T`` is exact.  This turns a
    ``len(thresholds)``-fold rebuild of the record dictionaries (paper
    Figs. 9/10 sweep five points per trace) into one.
    """
    if not thresholds:
        return []
    floor = min(thresholds)
    base_reported = collector.heavy_hitters(floor)
    base_truth = true_heavy_hitters(true_sizes, floor)
    results = []
    for t in thresholds:
        if t == floor:
            reported, truth = base_reported, base_truth
        else:
            reported = {k: v for k, v in base_reported.items() if v > t}
            truth = {k: v for k, v in base_truth.items() if v > t}
        results.append(_score(reported, truth, true_sizes, t))
    return results
