"""Analysis layer: metrics, the occupancy model, and application evaluations."""

from repro.analysis.anomaly import (
    EwmaDetector,
    detect_flood_victims,
    detect_scanners,
    fanin_by_destination,
    fanout_by_source,
)
from repro.analysis.cardinality import CardinalityResult, evaluate_cardinality
from repro.analysis.distribution import (
    DistributionSummary,
    histogram_distance,
    size_histogram,
    weighted_mean_error,
)
from repro.analysis.heavy_hitters import (
    HeavyHitterResult,
    evaluate_heavy_hitters,
    threshold_sweep,
)
from repro.analysis.significance import (
    SweepStats,
    difference_is_significant,
    seed_sweep,
    summarize,
)
from repro.analysis.metrics import (
    average_relative_error,
    f1_score,
    flow_set_coverage,
    precision_recall_f1,
    relative_error,
)
from repro.analysis.model import (
    multihash_empty_probs,
    multihash_utilization,
    pipelined_empty_probs,
    pipelined_improvement,
    pipelined_utilization,
    predicted_records,
    simulate_multihash_utilization,
    simulate_pipelined_utilization,
)

__all__ = [
    "CardinalityResult",
    "DistributionSummary",
    "EwmaDetector",
    "HeavyHitterResult",
    "SweepStats",
    "average_relative_error",
    "detect_flood_victims",
    "detect_scanners",
    "difference_is_significant",
    "fanin_by_destination",
    "fanout_by_source",
    "histogram_distance",
    "seed_sweep",
    "size_histogram",
    "summarize",
    "weighted_mean_error",
    "evaluate_cardinality",
    "evaluate_heavy_hitters",
    "f1_score",
    "flow_set_coverage",
    "multihash_empty_probs",
    "multihash_utilization",
    "pipelined_empty_probs",
    "pipelined_improvement",
    "pipelined_utilization",
    "precision_recall_f1",
    "predicted_records",
    "relative_error",
    "simulate_multihash_utilization",
    "simulate_pipelined_utilization",
    "threshold_sweep",
]
