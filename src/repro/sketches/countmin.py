"""Count-min sketch (Cormode & Muthukrishnan 2005).

Substrate for the light part of ElasticSketch and a standalone baseline.
Counters may be narrow (8-bit in the paper's ElasticSketch
configuration) and saturate instead of wrapping, as register arrays on a
switch would.
"""

from __future__ import annotations

import numpy as np

from repro.flow.batch import KeyBatch
from repro.hashing.families import HashFamily
from repro.hashing.mixers import MASK64
from repro.native import resolve_kernel
from repro.sketches.base import CostMeter


class CountMinSketch:
    """A count-min sketch with saturating counters.

    Args:
        width: number of counters per row.
        depth: number of rows (independent hash functions).
        counter_bits: counter width in bits; counters saturate at
            ``2**counter_bits - 1``.
        seed: hash family seed.
        conservative: if True, use conservative update (only the minimal
            counters are incremented), which reduces overestimation.
        meter: optional shared :class:`CostMeter` (the embedding
            algorithm's meter); a private one is created otherwise.
        kernel: execution tier — ``"native"``, ``"numpy"``, or None to
            follow ``REPRO_KERNEL``.  Bit-identical either way.
    """

    def __init__(
        self,
        width: int,
        depth: int = 1,
        counter_bits: int = 8,
        seed: int = 0,
        conservative: bool = False,
        meter: CostMeter | None = None,
        kernel: str | None = None,
    ):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive, got {counter_bits}")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.conservative = conservative
        self.seed = seed
        self.meter = meter if meter is not None else CostMeter()
        self._hashes = HashFamily(depth, master_seed=seed)
        self.kernel, self._native = resolve_kernel(kernel)
        if self._native is not None:
            if counter_bits > 62:
                raise ValueError(
                    "the native tier stores counters as int64; "
                    f"counter_bits must be <= 62, got {counter_bits}"
                )
            # SoA storage: row-major flat counter plane for the kernel.
            self._seeds_arr = np.array(
                [h.seed for h in self._hashes], dtype=np.uint64
            )
            self._rows_flat = np.zeros(depth * width, dtype=np.int64)
            self._rows = None
            return
        self._rows_flat = None
        self._rows = [[0] * width for _ in range(depth)]

    def _native_update(self, batch: KeyBatch, amount: int) -> None:
        """Run a batch through the compiled count-min kernel."""
        lo, hi = batch.halves()
        hashes, reads, writes = self._native.countmin_update(
            lo, hi, self._seeds_arr, self.depth, self.width,
            self.max_count, amount, self.conservative, self._rows_flat,
        )
        self.meter.add(hashes=hashes, reads=reads, writes=writes)

    def add(self, key: int, amount: int = 1) -> None:
        """Add ``amount`` occurrences of ``key``."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if self._native is not None:
            # Batch of one through the kernel: bit-identical counters
            # and meter deltas, one implementation per tier.
            self._native_update(KeyBatch([key]), amount)
            return
        meter = self.meter
        width = self.width
        max_count = self.max_count
        if self.conservative:
            idxs = []
            current = []
            for h, row in zip(self._hashes, self._rows):
                i = h.bucket(key, width)
                idxs.append(i)
                current.append(row[i])
            meter.hashes += self.depth
            meter.reads += self.depth
            target = min(current) + amount
            for row, i in zip(self._rows, idxs):
                if row[i] < target:
                    row[i] = min(target, max_count)
                    meter.writes += 1
        else:
            for h, row in zip(self._hashes, self._rows):
                i = h.bucket(key, width)
                row[i] = min(row[i] + amount, max_count)
            meter.hashes += self.depth
            meter.reads += self.depth
            meter.writes += self.depth

    def add_batch(self, keys, amount: int = 1) -> None:
        """Add ``amount`` occurrences of every key in a batch.

        Bit-identical to calling :meth:`add` per key in order (counter
        saturation commutes with equal positive increments), with the
        meter settled once per batch.

        The plain variant collapses each row's updates to one pass over
        the *distinct* buckets hit — ``min(c + k·amount, max)`` equals
        ``k`` sequential saturating adds.  The conservative variant
        depends on the evolving row minima, so it keeps a per-packet
        loop over precomputed indices.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if n == 0:
            return
        if self._native is not None:
            self._native_update(batch, amount)
            return
        width = self.width
        depth = self.depth
        max_count = self.max_count
        if self.conservative:
            rows_idx = [h.buckets_batch(batch, width).tolist() for h in self._hashes]
            rows = self._rows
            writes = 0
            for i in range(n):
                idxs = [r[i] for r in rows_idx]
                target = min(row[j] for row, j in zip(rows, idxs)) + amount
                for row, j in zip(rows, idxs):
                    if row[j] < target:
                        row[j] = target if target < max_count else max_count
                        writes += 1
            self.meter.add(hashes=n * depth, reads=n * depth, writes=writes)
        else:
            for h, row in zip(self._hashes, self._rows):
                uniq, hits = np.unique(h.buckets_batch(batch, width), return_counts=True)
                for j, k in zip(uniq.tolist(), hits.tolist()):
                    value = row[j] + k * amount
                    row[j] = value if value < max_count else max_count
            self.meter.add(hashes=n * depth, reads=n * depth, writes=n * depth)

    def query(self, key: int) -> int:
        """Point query: the minimum counter across rows (never underestimates
        until counters saturate)."""
        if self._native is not None:
            return int(self.query_batch(KeyBatch([key]))[0])
        width = self.width
        return min(
            row[h.bucket(key, width)] for h, row in zip(self._hashes, self._rows)
        )

    def query_batch(self, keys) -> np.ndarray:
        """Batched point queries: the whole sweep is numpy passes.

        Per row, the bucket indices of every key come from one
        vectorized mixing pass over the batch's 64-bit halves and the
        counters are gathered in one indexing operation; the row
        minimum folds the rows together.  Bit-identical to the scalar
        :meth:`query` per key.
        """
        batch = KeyBatch.coerce(keys)
        if not len(batch):
            return np.zeros(0, dtype=np.int64)
        if self._native is not None:
            lo, hi = batch.halves()
            return self._native.countmin_query(
                lo, hi, self._seeds_arr, self.depth, self.width,
                self._rows_flat,
            )
        estimates = None
        width = self.width
        for h, row in zip(self._hashes, self._rows):
            values = np.fromiter(row, np.int64, count=width)[
                h.buckets_batch(batch, width)
            ]
            estimates = values if estimates is None else np.minimum(estimates, values)
        return estimates

    def zero_fraction(self) -> float:
        """Fraction of zero counters in the first row.

        Feeds the linear-counting cardinality estimator (paper §IV-A:
        "linear counting is used by ElasticSketch to estimate the number
        of flows in its count-min sketch").
        """
        if self._rows_flat is not None:
            width = self.width
            zeros = width - int(np.count_nonzero(self._rows_flat[:width]))
            return zeros / width
        row = self._rows[0]
        return row.count(0) / self.width

    def reset(self) -> None:
        """Clear all counters."""
        if self._rows_flat is not None:
            self._rows_flat.fill(0)
            return
        self._rows = [[0] * self.width for _ in range(self.depth)]

    @property
    def memory_bits(self) -> int:
        """Sketch footprint: one counter per cell."""
        return self.width * self.depth * self.counter_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"counter_bits={self.counter_bits})"
        )
