"""Count Sketch (Charikar, Chen & Farach-Colton 2002).

The signed cousin of count-min: every update also carries a random
sign, making the point estimate *unbiased* (count-min only guarantees
one-sided error).  Included as a substrate so the light part of an
ElasticSketch-style design can be swapped and compared; the tests
contrast its symmetric error with count-min's overestimates.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.flow.batch import KeyBatch
from repro.hashing.families import HashFamily
from repro.sketches.base import CostMeter


class CountSketch:
    """A count sketch with ``depth`` rows and median estimation.

    Args:
        width: counters per row.
        depth: rows; use odd values so the median is a counter value.
        seed: hash seed (bucket and sign families are independent).
        meter: optional shared cost meter.
    """

    def __init__(
        self,
        width: int,
        depth: int = 3,
        seed: int = 0,
        meter: CostMeter | None = None,
    ):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.meter = meter if meter is not None else CostMeter()
        self._buckets = HashFamily(depth, master_seed=seed)
        self._signs = HashFamily(depth, master_seed=seed ^ 0x51635)
        self._rows = [[0] * width for _ in range(depth)]

    def add(self, key: int, amount: int = 1) -> None:
        """Add ``amount`` occurrences of ``key``."""
        width = self.width
        for bucket_hash, sign_hash, row in zip(self._buckets, self._signs, self._rows):
            idx = bucket_hash.bucket(key, width)
            sign = 1 if sign_hash(key) & 1 else -1
            row[idx] += sign * amount
        self.meter.hashes += 2 * self.depth
        self.meter.reads += self.depth
        self.meter.writes += self.depth

    def query(self, key: int) -> int:
        """Median-of-rows unbiased point estimate (may be negative)."""
        width = self.width
        estimates = []
        for bucket_hash, sign_hash, row in zip(self._buckets, self._signs, self._rows):
            idx = bucket_hash.bucket(key, width)
            sign = 1 if sign_hash(key) & 1 else -1
            estimates.append(sign * row[idx])
        return int(statistics.median(estimates))

    def query_batch(self, keys) -> np.ndarray:
        """Batched point queries, fully vectorized.

        Bucket indices and sign bits both come from vectorized mixing
        passes; the per-key median over rows is one ``np.median`` along
        the row axis.  The float median is truncated toward zero
        exactly like the scalar ``int(statistics.median(...))``, so
        results are bit-identical per key (counter magnitudes are far
        below 2**53, where float64 medians are exact).
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if not n:
            return np.zeros(0, dtype=np.int64)
        width = self.width
        estimates = np.empty((self.depth, n), dtype=np.int64)
        for r, (bucket_hash, sign_hash, row) in enumerate(
            zip(self._buckets, self._signs, self._rows)
        ):
            values = np.fromiter(row, np.int64, count=width)[
                bucket_hash.buckets_batch(batch, width)
            ]
            negative = (sign_hash.values_batch(batch) & np.uint64(1)) == 0
            estimates[r] = np.where(negative, -values, values)
        medians = np.median(estimates, axis=0)
        # float -> int64 truncates toward zero, matching int() exactly.
        return medians.astype(np.int64)

    def reset(self) -> None:
        """Clear all counters."""
        self._rows = [[0] * self.width for _ in range(self.depth)]

    @property
    def memory_bits(self) -> int:
        """Footprint at 32 signed bits per counter."""
        return self.width * self.depth * 32
