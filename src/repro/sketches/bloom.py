"""Bloom filter (Bloom 1970).

Substrate for FlowRadar's new-flow detection.  Also provides the
fill-fraction cardinality estimator used for FlowRadar's flow counting
(the paper notes FlowRadar "uses a bloom filter to count flows, which is
not sensitive to flow sizes").
"""

from __future__ import annotations

import math

from repro.hashing.families import HashFamily
from repro.sketches.base import CostMeter


class BloomFilter:
    """A standard Bloom filter over integer keys.

    Args:
        n_bits: size of the bit array.
        n_hashes: number of hash functions (4 for FlowRadar in the
            paper's configuration).
        seed: hash family seed.
        meter: optional shared cost meter.
    """

    def __init__(
        self,
        n_bits: int,
        n_hashes: int = 4,
        seed: int = 0,
        meter: CostMeter | None = None,
    ):
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        if n_hashes <= 0:
            raise ValueError(f"n_hashes must be positive, got {n_hashes}")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.seed = seed
        self.meter = meter if meter is not None else CostMeter()
        self._hashes = HashFamily(n_hashes, master_seed=seed)
        self._bits = bytearray((n_bits + 7) // 8)
        self._set_bits = 0

    def contains(self, key: int) -> bool:
        """Membership test (no false negatives; false positives possible)."""
        n_bits = self.n_bits
        bits = self._bits
        self.meter.hashes += self.n_hashes
        self.meter.reads += self.n_hashes
        for h in self._hashes:
            i = h.bucket(key, n_bits)
            if not (bits[i >> 3] >> (i & 7)) & 1:
                return False
        return True

    def add(self, key: int) -> None:
        """Insert ``key``."""
        n_bits = self.n_bits
        bits = self._bits
        self.meter.writes += self.n_hashes
        for h in self._hashes:
            i = h.bucket(key, n_bits)
            byte, mask = i >> 3, 1 << (i & 7)
            if not bits[byte] & mask:
                bits[byte] |= mask
                self._set_bits += 1

    def check_and_add(self, key: int) -> bool:
        """Combined membership test + insert; returns prior membership.

        This is the single pass FlowRadar performs per packet.
        """
        present = self.contains(key)
        if not present:
            self.add(key)
        return present

    @property
    def set_bits(self) -> int:
        """Number of bits currently set."""
        return self._set_bits

    def fill_fraction(self) -> float:
        """Fraction of bits set."""
        return self._set_bits / self.n_bits

    def estimate_cardinality(self) -> float:
        """Estimate distinct insertions from the fill fraction.

        ``n ≈ -(m/k) * ln(1 - X/m)`` with ``m`` bits, ``k`` hashes and
        ``X`` set bits (Swamidass & Baldi 2007).  Returns ``inf`` when
        the filter is saturated.
        """
        if self._set_bits >= self.n_bits:
            return math.inf
        return -(self.n_bits / self.n_hashes) * math.log(
            1.0 - self._set_bits / self.n_bits
        )

    def false_positive_rate(self) -> float:
        """Current false-positive probability estimate ``(X/m)^k``."""
        return (self._set_bits / self.n_bits) ** self.n_hashes

    def reset(self) -> None:
        """Clear the filter."""
        self._bits = bytearray((self.n_bits + 7) // 8)
        self._set_bits = 0

    @property
    def memory_bits(self) -> int:
        """Filter footprint in bits."""
        return self.n_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFilter(n_bits={self.n_bits}, n_hashes={self.n_hashes})"
