"""ElasticSketch, hardware version (Yang et al., SIGCOMM 2018).

The configuration follows the HashFlow paper's evaluation (Section
IV-A): a *heavy part* of 3 sub-tables storing ``(key, vote+, vote-,
flag)`` records, and a *light part* count-min sketch with a single array
of 8-bit counters, with the same number of cells in the two parts.

Heavy-part update (hardware pipeline): the incoming item — a raw packet
``(f, 1)`` or a record evicted from an earlier stage — is absorbed if
its bucket is empty or keyed by the same flow; otherwise ``vote-`` grows
by the item's weight and, when ``vote- / vote+ >= λ`` (λ = 8), the
occupant is evicted and carried to the next stage while the item takes
the bucket.  Items leaving the last stage are folded into the light
part.  The ``flag`` marks records whose flow may also have counts in the
light part, so queries add the count-min estimate for flagged records.

As the HashFlow paper observes, this design can split one flow across
buckets and the light part, making counts approximate — behaviour this
implementation reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.flow.batch import KeyBatch
from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFamily
from repro.sketches.base import FlowCollector
from repro.specs import register
from repro.sketches.countmin import CountMinSketch
from repro.sketches.linear_counting import linear_counting_estimate

_VOTE_BITS = 32
_FLAG_BITS = 1
_EMPTY = 0

DEFAULT_STAGES = 3
DEFAULT_LAMBDA = 8.0


@register("elastic")
class ElasticSketch(FlowCollector):
    """ElasticSketch (hardware version) flow collector.

    Args:
        heavy_cells_per_stage: buckets in each heavy sub-table.
        light_cells: counters in the light count-min array (the paper
            uses ``light_cells == heavy_cells_per_stage * stages``).
        stages: heavy sub-tables (paper: 3).
        lambda_threshold: the eviction ratio λ (ElasticSketch default 8).
        light_counter_bits: width of light-part counters (paper: 8).
        seed: hash seed.
    """

    name = "ElasticSketch"

    def __init__(
        self,
        heavy_cells_per_stage: int,
        light_cells: int,
        stages: int = DEFAULT_STAGES,
        lambda_threshold: float = DEFAULT_LAMBDA,
        light_counter_bits: int = 8,
        seed: int = 0,
    ):
        super().__init__()
        if heavy_cells_per_stage <= 0:
            raise ValueError(
                f"heavy_cells_per_stage must be positive, got {heavy_cells_per_stage}"
            )
        if light_cells <= 0:
            raise ValueError(f"light_cells must be positive, got {light_cells}")
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        if lambda_threshold <= 0:
            raise ValueError(
                f"lambda_threshold must be positive, got {lambda_threshold}"
            )
        self._record_spec(
            heavy_cells_per_stage=heavy_cells_per_stage,
            light_cells=light_cells,
            stages=stages,
            lambda_threshold=lambda_threshold,
            light_counter_bits=light_counter_bits,
            seed=seed,
        )
        self.heavy_cells_per_stage = heavy_cells_per_stage
        self.stages = stages
        self.lambda_threshold = lambda_threshold
        self.seed = seed
        self._hashes = HashFamily(stages, master_seed=seed)
        self._keys = [[_EMPTY] * heavy_cells_per_stage for _ in range(stages)]
        self._vote_plus = [[0] * heavy_cells_per_stage for _ in range(stages)]
        self._vote_minus = [[0] * heavy_cells_per_stage for _ in range(stages)]
        self._flags = [[False] * heavy_cells_per_stage for _ in range(stages)]
        self.light = CountMinSketch(
            width=light_cells,
            depth=1,
            counter_bits=light_counter_bits,
            seed=seed + 0x1A57,
            meter=self.meter,
        )

    def process(self, key: int) -> None:
        """Process one packet through the heavy pipeline, then the light part."""
        meter = self.meter
        meter.packets += 1
        n = self.heavy_cells_per_stage
        lam = self.lambda_threshold

        carry_key, carry_count, carry_flag = key, 1, False
        for s in range(self.stages):
            idx = self._hashes[s].bucket(carry_key, n)
            meter.hashes += 1
            meter.reads += 1
            stage_keys = self._keys[s]
            if self._vote_plus[s][idx] == 0:
                stage_keys[idx] = carry_key
                self._vote_plus[s][idx] = carry_count
                self._vote_minus[s][idx] = 0
                self._flags[s][idx] = carry_flag
                meter.writes += 1
                return
            if stage_keys[idx] == carry_key:
                self._vote_plus[s][idx] += carry_count
                self._flags[s][idx] = self._flags[s][idx] or carry_flag
                meter.writes += 1
                return
            votes_minus = self._vote_minus[s][idx] + carry_count
            self._vote_minus[s][idx] = votes_minus
            meter.writes += 1
            if votes_minus >= lam * self._vote_plus[s][idx]:
                # Evict the occupant; the carried item takes the bucket.
                evicted_key = stage_keys[idx]
                evicted_count = self._vote_plus[s][idx]
                evicted_flag = self._flags[s][idx]
                stage_keys[idx] = carry_key
                self._vote_plus[s][idx] = carry_count
                self._vote_minus[s][idx] = 0
                # The inserted flow may have earlier packets in the light
                # part (it lost earlier rounds), so its record is flagged.
                self._flags[s][idx] = True
                meter.writes += 1
                carry_key, carry_count, carry_flag = (
                    evicted_key,
                    evicted_count,
                    evicted_flag,
                )
        # Whatever leaves the last stage is folded into the light part.
        self.light.add(carry_key, carry_count)

    def _heavy_lookup(self, key: int) -> tuple[int, bool, bool]:
        """Return (summed vote+, any flag set, found) for ``key``."""
        n = self.heavy_cells_per_stage
        total = 0
        flagged = False
        found = False
        for s in range(self.stages):
            idx = self._hashes[s].bucket(key, n)
            if self._vote_plus[s][idx] and self._keys[s][idx] == key:
                found = True
                total += self._vote_plus[s][idx]
                flagged = flagged or self._flags[s][idx]
        return total, flagged, found

    def query(self, key: int) -> int:
        """Size estimate: heavy vote+ (+ light estimate if flagged/absent)."""
        total, flagged, found = self._heavy_lookup(key)
        if not found:
            return self.light.query(key)
        if flagged:
            total += self.light.query(key)
        return total

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`: heavy dict-gather + batched light part.

        The heavy part is folded into one ``{key: (vote+ sum, flag)}``
        dict in a single scan of the sub-tables — bit-identical to the
        per-key probe because a record only ever sits at its own hash
        position in a stage (insertions happen at the carried flow's
        bucket) and the lookup *sums* across stages, so gather order
        does not matter.  The light count-min answers the whole batch
        through its vectorized ``query_batch``.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        if not n:
            return np.zeros(0, dtype=np.int64)
        heavy: dict[int, tuple[int, bool]] = {}
        for stage_keys, stage_votes, stage_flags in zip(
            self._keys, self._vote_plus, self._flags
        ):
            for key, vote_plus, flag in zip(stage_keys, stage_votes, stage_flags):
                if vote_plus > 0:
                    prior = heavy.get(key)
                    if prior is None:
                        heavy[key] = (vote_plus, flag)
                    else:
                        heavy[key] = (prior[0] + vote_plus, prior[1] or flag)
        light = self.light.query_batch(batch)
        out = np.empty(n, dtype=np.int64)
        get = heavy.get
        for i, key in enumerate(batch.keys):
            entry = get(key)
            if entry is None:
                out[i] = light[i]
            elif entry[1]:
                out[i] = entry[0] + light[i]
            else:
                out[i] = entry[0]
        return out

    def records(self) -> dict[int, int]:
        """Reportable records: flows resident in the heavy part.

        The light part stores only counters, so flows living exclusively
        there cannot be reported with their IDs (they still answer point
        queries via :meth:`query`).
        """
        result: dict[int, int] = {}
        for s in range(self.stages):
            for key, vote_plus in zip(self._keys[s], self._vote_plus[s]):
                if vote_plus > 0:
                    result[key] = result.get(key, 0) + vote_plus
        return result

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Heavy-part flows whose full estimate exceeds the threshold."""
        result: dict[int, int] = {}
        for key in self.records():
            est = self.query(key)
            if est > threshold:
                result[key] = est
        return result

    def estimate_cardinality(self) -> float:
        """Heavy-part resident flows + linear counting over the light part.

        Per the paper (§IV-A): "linear counting is used by ElasticSketch
        to estimate the number of flows in its count-min sketch".
        """
        heavy = len(self.records())
        zero_cells = round(self.light.zero_fraction() * self.light.width)
        light = linear_counting_estimate(self.light.width, zero_cells)
        return heavy + light

    def occupancy(self) -> int:
        """Non-empty heavy cells."""
        return sum(
            sum(1 for v in stage_votes if v > 0) for stage_votes in self._vote_plus
        )

    def reset(self) -> None:
        """Clear heavy and light parts and the meter."""
        n = self.heavy_cells_per_stage
        self._keys = [[_EMPTY] * n for _ in range(self.stages)]
        self._vote_plus = [[0] * n for _ in range(self.stages)]
        self._vote_minus = [[0] * n for _ in range(self.stages)]
        self._flags = [[False] * n for _ in range(self.stages)]
        self.light.reset()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Heavy cells of (key, vote+, vote-, flag) plus light counters."""
        heavy_cell = FLOW_KEY_BITS + 2 * _VOTE_BITS + _FLAG_BITS
        heavy = self.stages * self.heavy_cells_per_stage * heavy_cell
        return heavy + self.light.memory_bits
