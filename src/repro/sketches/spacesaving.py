"""Space-Saving (Metwally, Agrawal & El Abbadi 2005).

A classic heavy-hitter counter maintained here as an additional
comparison point beyond the paper's three baselines: it keeps exactly
``capacity`` candidate records and, when full, replaces the minimum
record with the incoming flow at ``min + 1``.  Counts are guaranteed
overestimates, with error bounded by the displaced minimum (tracked per
record), which enables precision-guaranteed heavy-hitter reporting.
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import FLOW_KEY_BITS
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import register

_COUNTER_BITS = 32
_ERROR_BITS = 32


@register("spacesaving")
class SpaceSaving(FlowCollector):
    """Space-Saving stream summary.

    Args:
        capacity: maximum number of tracked flows.
    """

    name = "SpaceSaving"

    def __init__(self, capacity: int):
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._record_spec(capacity=capacity)
        self.capacity = capacity
        self._counts: dict[int, int] = {}
        self._errors: dict[int, int] = {}

    def process(self, key: int) -> None:
        """Count the packet, displacing the minimum record when full."""
        meter = self.meter
        meter.packets += 1
        meter.hashes += 1
        meter.reads += 1
        counts = self._counts
        if key in counts:
            counts[key] += 1
            meter.writes += 1
            return
        if len(counts) < self.capacity:
            counts[key] = 1
            self._errors[key] = 0
            meter.writes += 1
            return
        # Replace the minimum record (linear scan: the dict is the summary;
        # a production implementation would keep a min-structure).
        victim = min(counts, key=counts.get)
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + 1
        self._errors[key] = floor
        meter.reads += 1
        meter.writes += 2

    def records(self) -> dict[int, int]:
        """All tracked flows with their (over-)estimates."""
        return dict(self._counts)

    def query(self, key: int) -> int:
        """Estimated count (an overestimate while tracked; 0 otherwise)."""
        return self._counts.get(key, 0)

    def query_batch(self, keys) -> np.ndarray:
        """Batched estimates (the shared dict-gather path)."""
        return gather_estimates(self._counts, keys)

    def guaranteed_count(self, key: int) -> int:
        """Lower bound on the true count: ``estimate - error``."""
        return self._counts.get(key, 0) - self._errors.get(key, 0)

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Tracked flows whose estimate exceeds the threshold."""
        return {k: v for k, v in self._counts.items() if v > threshold}

    def guaranteed_heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Flows whose *guaranteed* count exceeds the threshold (no false
        positives)."""
        return {
            k: v
            for k, v in self._counts.items()
            if v - self._errors.get(k, 0) > threshold
        }

    def reset(self) -> None:
        """Clear the summary and the meter."""
        self._counts.clear()
        self._errors.clear()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Capacity records of (key, count, error)."""
        return self.capacity * (FLOW_KEY_BITS + _COUNTER_BITS + _ERROR_BITS)
