"""Exact flow collector: the idealized NetFlow oracle.

Keeps a perfect ``{flow: count}`` table with no memory bound.  Serves as
ground truth in tests and as the reference point experiments compare
against (its records equal :meth:`repro.traces.trace.Trace.true_sizes`).
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import FLOW_KEY_BITS
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import register

_COUNTER_BITS = 32


@register("exact")
class ExactCollector(FlowCollector):
    """Unbounded dict-based flow-record collector."""

    name = "Exact"

    def __init__(self):
        super().__init__()
        self._record_spec()
        self._table: dict[int, int] = {}

    def process(self, key: int) -> None:
        """Increment the flow's exact packet count."""
        self._table[key] = self._table.get(key, 0) + 1
        self.meter.packets += 1
        self.meter.hashes += 1
        self.meter.reads += 1
        self.meter.writes += 1

    def records(self) -> dict[int, int]:
        """All flows with their exact counts."""
        return dict(self._table)

    def query(self, key: int) -> int:
        """Exact packet count (0 if never seen)."""
        return self._table.get(key, 0)

    def query_batch(self, keys) -> np.ndarray:
        """Batched exact counts (the shared dict-gather path)."""
        return gather_estimates(self._table, keys)

    def estimate_cardinality(self) -> float:
        """Exact number of distinct flows."""
        return float(len(self._table))

    def reset(self) -> None:
        """Clear the table and the meter."""
        self._table.clear()
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Footprint if each record were stored as (104-bit ID, 32-bit count)."""
        return len(self._table) * (FLOW_KEY_BITS + _COUNTER_BITS)
