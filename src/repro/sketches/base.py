"""Common interface for all flow-record collectors.

Every algorithm evaluated in the paper (HashFlow, HashPipe,
ElasticSketch, FlowRadar) plus the auxiliary baselines (exact NetFlow,
sampled NetFlow, Space-Saving) implements :class:`FlowCollector`, so the
experiment harness and the switch simulator can treat them uniformly.

A shared :class:`CostMeter` records hash operations and memory accesses
per packet; Fig. 11(b)/(c) of the paper are regenerated directly from
these counters rather than estimated.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Mapping

import numpy as np

from repro.flow.batch import DEFAULT_CHUNK_SIZE, KeyBatch, iter_key_chunks
from repro.specs.spec import CollectorSpec, SpecError


def gather_estimates(records: Mapping[int, int], keys, scale: int = 1) -> np.ndarray:
    """Batched point queries against a ``{flow: count}`` mapping.

    This is the shared *dict-gather* path of the batch-query engine:
    any collector whose scalar :meth:`FlowCollector.query` is a plain
    dictionary lookup (exact, sampled, Space-Saving, cuckoo, FlowRadar
    decode, network-wide merges) answers a whole batch with one pass of
    C-level ``dict.get`` calls instead of one Python call per key.

    Args:
        records: the estimate table (``query(k) == records.get(k, 0) * scale``).
        keys: a :class:`~repro.flow.batch.KeyBatch` or sequence of keys.
        scale: multiplier applied to every hit (e.g. the sampling period
            of sampled NetFlow); misses stay 0.

    Returns:
        ``np.int64`` array, bit-identical to the scalar query per key.
    """
    if isinstance(keys, KeyBatch):
        keys = keys.keys
    get = records.get
    if scale == 1:
        return np.fromiter((get(k, 0) for k in keys), np.int64, count=len(keys))
    return np.fromiter((get(k, 0) * scale for k in keys), np.int64, count=len(keys))


class CostMeter:
    """Counts hash operations and memory reads/writes.

    Collectors increment the public attributes inline on their hot
    paths; the meter normalizes them per packet for reporting.

    Attributes:
        hashes: number of hash computations.
        reads: number of cell/field-group reads.
        writes: number of cell/field-group writes.
        packets: number of packets processed.
    """

    __slots__ = ("hashes", "reads", "writes", "packets")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        self.hashes = 0
        self.reads = 0
        self.writes = 0
        self.packets = 0

    def add(
        self, packets: int = 0, hashes: int = 0, reads: int = 0, writes: int = 0
    ) -> None:
        """Add batch-aggregated costs in one call.

        Batched update paths accumulate counts in locals inside their
        hot loop and settle them here once per batch, instead of
        touching four attributes per packet.
        """
        self.packets += packets
        self.hashes += hashes
        self.reads += reads
        self.writes += writes

    @property
    def memory_accesses(self) -> int:
        """Total memory accesses (reads + writes)."""
        return self.reads + self.writes

    def per_packet(self) -> dict[str, float]:
        """Average hash / read / write / access counts per packet.

        A meter that has never been fed has no per-packet rates: every
        value is NaN (clamping to ``packets=1`` here used to report a
        misleading 0.0 for a dead collector — callers that want a
        number for an idle stage must check ``packets`` themselves, as
        the switch report does).
        """
        n = self.packets
        if n == 0:
            return {k: math.nan for k in ("hashes", "reads", "writes", "accesses")}
        return {
            "hashes": self.hashes / n,
            "reads": self.reads / n,
            "writes": self.writes / n,
            "accesses": self.memory_accesses / n,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pp = self.per_packet()
        return (
            f"CostMeter(packets={self.packets}, hashes/pkt={pp['hashes']:.2f}, "
            f"accesses/pkt={pp['accesses']:.2f})"
        )


class FlowCollector(ABC):
    """Abstract flow-record collector.

    Subclasses implement the per-packet update (:meth:`process`), the
    reported record set (:meth:`records`) and the point-query
    (:meth:`query`).  Cardinality estimation and heavy-hitter extraction
    have sensible defaults but are overridden where the paper prescribes
    a specific estimator (e.g. linear counting).
    """

    #: Display name used in reports and figures.
    name: str = "collector"

    #: Registry kind (set by :func:`repro.specs.register`); None means
    #: the collector type is not spec-constructible.
    kind: str | None = None

    def __init__(self):
        self.meter = CostMeter()

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    @abstractmethod
    def process(self, key: int) -> None:
        """Process one packet belonging to flow ``key``."""

    def process_batch(self, keys) -> None:
        """Process a batch of packet keys in arrival order.

        The generic fallback simply loops over :meth:`process`;
        collectors with a vectorized update path (HashFlow, HashPipe)
        override this to precompute all hash indices for the batch at
        once.  Overrides must be bit-identical to the scalar path:
        same records, same query answers, same meter totals.

        Args:
            keys: a :class:`~repro.flow.batch.KeyBatch` or any sequence
                of Python-int keys.
        """
        process = self.process
        for key in keys.keys if isinstance(keys, KeyBatch) else keys:
            process(key)

    def process_all(
        self, keys: Iterable[int], chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> int:
        """Feed a packet-key stream; returns the number of packets fed.

        The stream is sliced into chunks and fed through
        :meth:`process_batch`, so collectors with a batched update path
        engage it automatically.  ``np.ndarray`` inputs are converted
        to Python ints once per chunk — iterating an array directly
        would hand ``np.int64`` scalars to the mixers, whose
        arbitrary-precision arithmetic is several times slower than
        built-in ints.
        """
        process_batch = self.process_batch
        n = 0
        for chunk in iter_key_chunks(keys, chunk_size):
            process_batch(chunk)
            n += len(chunk)
        return n

    # ------------------------------------------------------------------
    # Report path
    # ------------------------------------------------------------------
    @abstractmethod
    def records(self) -> dict[int, int]:
        """Flow records the collector can report: ``{flow key: count}``.

        Only flows whose full IDs are recoverable appear here (this is
        the numerator of the paper's Flow Set Coverage metric).
        """

    @abstractmethod
    def query(self, key: int) -> int:
        """Estimated packet count of ``key``; 0 if unknown (paper §IV-A)."""

    def query_batch(self, keys) -> np.ndarray:
        """Estimated packet counts for a whole key batch.

        The generic fallback loops over :meth:`query`; collectors with
        a vectorized read path override this to precompute all hash
        indices for the batch at once (the query-side twin of
        :meth:`process_batch`).  Overrides must be bit-identical to the
        scalar path — ``query_batch(keys)[i] == query(keys[i])`` for
        every key, seen or unseen — and must not touch the cost meter
        (point queries are control-plane reads; the meter models the
        dataplane update cost of paper Fig. 11).

        Args:
            keys: a :class:`~repro.flow.batch.KeyBatch` or any sequence
                of Python-int keys.

        Returns:
            ``np.int64`` array of per-key estimates, in key order.
        """
        if isinstance(keys, KeyBatch):
            keys = keys.keys
        query = self.query
        return np.fromiter((query(k) for k in keys), np.int64, count=len(keys))

    def estimate_cardinality(self) -> float:
        """Estimated number of distinct flows seen.

        Default: the number of reportable records (no compensation for
        dropped flows — the behaviour the paper ascribes to HashPipe).
        """
        return float(len(self.records()))

    def heavy_hitters(self, threshold: int) -> dict[int, int]:
        """Flows reported with more than ``threshold`` packets.

        Contract for overrides: the result must be a plain
        ``estimate > threshold`` filter of a threshold-independent
        estimate map (the paper's definition, §IV-A).
        ``analysis.heavy_hitters.threshold_sweep`` relies on this to
        extract the estimates once per sweep and re-filter per
        threshold; ``tests/test_heavy_hitters_analysis.py`` enforces it
        across the collector matrix.
        """
        return {k: v for k, v in self.records().items() if v > threshold}

    # ------------------------------------------------------------------
    # Lifecycle / accounting
    # ------------------------------------------------------------------
    @abstractmethod
    def reset(self) -> None:
        """Clear all state (including the cost meter)."""

    @property
    @abstractmethod
    def memory_bits(self) -> int:
        """Total memory footprint in bits under the paper's cost model."""

    @property
    def memory_bytes(self) -> float:
        """Memory footprint in bytes."""
        return self.memory_bits / 8.0

    # ------------------------------------------------------------------
    # Spec lifecycle (repro.specs)
    # ------------------------------------------------------------------
    def _record_spec(self, **params) -> None:
        """Record the constructor params that reproduce this instance.

        Registered collectors call this once from ``__init__`` with the
        exact keyword set that :func:`repro.specs.build` would pass;
        :attr:`spec` then round-trips construction without any
        per-class introspection.
        """
        self._spec_params = params

    def spec_params(self) -> dict:
        """Constructor params reproducing this collector (a fresh dict).

        Raises:
            SpecError: if the collector was built outside the registry
                contract (no recorded params).
        """
        params = getattr(self, "_spec_params", None)
        if params is None:
            raise SpecError(
                f"{type(self).__name__} does not record spec params; "
                "it cannot be described by a CollectorSpec"
            )
        return dict(params)

    @property
    def spec(self) -> CollectorSpec:
        """The :class:`~repro.specs.CollectorSpec` describing this
        collector: ``build(collector.spec)`` yields a fresh,
        bit-identically behaving twin.

        Raises:
            SpecError: for unregistered collector types or instances
                built from ad-hoc callables.
        """
        if self.kind is None:
            raise SpecError(
                f"{type(self).__name__} is not a registered collector kind"
            )
        return CollectorSpec(self.kind, self.spec_params())

    def clone(self) -> "FlowCollector":
        """A fresh, identically-configured instance (empty tables)."""
        return self.spec.build()

    def fresh_factory(self) -> Callable[[], "FlowCollector"]:
        """A zero-argument factory producing fresh clones.

        This is what epoch runners and deployments hold instead of
        ad-hoc lambdas: the factory is the spec's bound ``build``
        method, so it serializes conceptually as the spec itself.
        """
        return self.spec.build

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            spec = self.spec
        except SpecError:
            return f"{type(self).__name__}(memory={self.memory_bytes:.0f}B)"
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(spec.params.items()))
        return f"{spec.kind}({args})"
