"""Linear counting (Whang, Vander-Zanden & Taylor 1990).

The paper (Section IV-A) uses linear counting for cardinality
estimation: ElasticSketch applies it to its count-min sketch and
HashFlow to its ancillary table.  The estimator inverts the expected
fraction of empty cells after hashing ``n`` distinct items into ``m``
cells: ``E[empty/m] = e^{-n/m}``, so ``n̂ = -m · ln(empty/m)``.
"""

from __future__ import annotations

import math

from repro.hashing.families import HashFunction


def linear_counting_estimate(n_cells: int, n_empty: int) -> float:
    """Estimate distinct items from cell occupancy.

    Args:
        n_cells: total number of cells in the hash structure.
        n_empty: number of cells still empty.

    Returns:
        The linear-counting estimate; ``inf`` if no cell is empty
        (structure saturated — the estimator's known failure mode).

    Raises:
        ValueError: on impossible inputs.
    """
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    if not 0 <= n_empty <= n_cells:
        raise ValueError(f"n_empty must be in [0, {n_cells}], got {n_empty}")
    if n_empty == 0:
        return math.inf
    return -n_cells * math.log(n_empty / n_cells)


class LinearCounter:
    """A standalone linear-counting bitmap.

    Hashes each key to one bit of an ``n_cells``-wide bitmap; cardinality
    is recovered with :func:`linear_counting_estimate`.  Usable as a
    lightweight distinct counter on its own.
    """

    def __init__(self, n_cells: int, seed: int = 0):
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        self.n_cells = n_cells
        self._hash = HashFunction(seed)
        self._bits = bytearray((n_cells + 7) // 8)
        self._occupied = 0

    def add(self, key: int) -> None:
        """Record one key."""
        i = self._hash.bucket(key, self.n_cells)
        byte, mask = i >> 3, 1 << (i & 7)
        if not self._bits[byte] & mask:
            self._bits[byte] |= mask
            self._occupied += 1

    @property
    def occupied(self) -> int:
        """Number of occupied cells."""
        return self._occupied

    def estimate(self) -> float:
        """Current cardinality estimate."""
        return linear_counting_estimate(self.n_cells, self.n_cells - self._occupied)

    def reset(self) -> None:
        """Clear the bitmap."""
        self._bits = bytearray((self.n_cells + 7) // 8)
        self._occupied = 0

    @property
    def memory_bits(self) -> int:
        """Bitmap footprint."""
        return self.n_cells
