"""Sampled NetFlow baseline (paper Section I).

Processes only 1-in-N packets and keeps exact records for the sampled
packets; queries are scaled back up by N.  This is the "straightforward
solution" the paper contrasts sketches against: cheap updates, but mice
flows are missed entirely and size estimates are noisy.
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFunction
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import register

_COUNTER_BITS = 32


@register("sampled")
class SampledNetFlow(FlowCollector):
    """1-in-N packet-sampled NetFlow.

    Args:
        every_n: sampling period; ``1`` degenerates to exact collection.
        mode: ``"deterministic"`` samples every N-th packet;
            ``"hash"`` samples pseudo-randomly per packet index using a
            seeded hash (stateless samplers used by routers).
        seed: seed for the hash mode.
    """

    name = "SampledNetFlow"

    def __init__(self, every_n: int, mode: str = "deterministic", seed: int = 0):
        super().__init__()
        if every_n < 1:
            raise ValueError(f"every_n must be >= 1, got {every_n}")
        if mode not in ("deterministic", "hash"):
            raise ValueError(f"unknown sampling mode {mode!r}")
        self._record_spec(every_n=every_n, mode=mode, seed=seed)
        self.every_n = every_n
        self.mode = mode
        self._hash = HashFunction(seed)
        self._table: dict[int, int] = {}
        self._tick = 0

    def process(self, key: int) -> None:
        """Count the packet only if it falls in the sampled subset."""
        meter = self.meter
        meter.packets += 1
        tick = self._tick
        self._tick = tick + 1
        if self.mode == "deterministic":
            sampled = tick % self.every_n == 0
        else:
            meter.hashes += 1
            sampled = self._hash(tick) % self.every_n == 0
        if sampled:
            self._table[key] = self._table.get(key, 0) + 1
            meter.hashes += 1
            meter.reads += 1
            meter.writes += 1

    def records(self) -> dict[int, int]:
        """Scaled-up records for the sampled flows."""
        n = self.every_n
        return {k: v * n for k, v in self._table.items()}

    def query(self, key: int) -> int:
        """Scaled-up size estimate (0 for unsampled flows)."""
        return self._table.get(key, 0) * self.every_n

    def query_batch(self, keys) -> np.ndarray:
        """Batched scaled-up estimates (dict-gather with the sampling
        period folded into the gather)."""
        return gather_estimates(self._table, keys, scale=self.every_n)

    def estimate_cardinality(self) -> float:
        """Scaled-up flow count.

        Note: this is a crude estimator — flow survival under sampling
        is size-dependent, so it overcorrects for elephant-dominated
        traffic (the inversion problem studied by Hohn & Veitch 2003,
        cited in the paper).
        """
        return float(len(self._table) * self.every_n)

    def reset(self) -> None:
        """Clear records, packet position and the meter."""
        self._table.clear()
        self._tick = 0
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Footprint of the currently held records."""
        return len(self._table) * (FLOW_KEY_BITS + _COUNTER_BITS)
