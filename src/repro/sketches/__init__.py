"""Flow-record sketches: substrates and the paper's baseline algorithms."""

from repro.sketches.base import CostMeter, FlowCollector
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.cuckoo import CuckooFlowCache
from repro.sketches.elastic import ElasticSketch
from repro.sketches.exact import ExactCollector
from repro.sketches.flowradar import FlowRadar
from repro.sketches.hashpipe import HashPipe
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.linear_counting import LinearCounter, linear_counting_estimate
from repro.sketches.sampled import SampledNetFlow
from repro.sketches.spacesaving import SpaceSaving

__all__ = [
    "BloomFilter",
    "CostMeter",
    "CountMinSketch",
    "CountSketch",
    "CuckooFlowCache",
    "ElasticSketch",
    "ExactCollector",
    "FlowCollector",
    "FlowRadar",
    "HashPipe",
    "HyperLogLog",
    "LinearCounter",
    "SampledNetFlow",
    "SpaceSaving",
    "linear_counting_estimate",
]
