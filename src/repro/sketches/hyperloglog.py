"""HyperLogLog cardinality estimator (Flajolet et al. 2007).

An alternative to the linear counting the paper's algorithms use for
flow counting.  Linear counting is very accurate while the bitmap has
empty cells but saturates at load ~ ln(m); HyperLogLog's relative error
is a constant ~1.04/sqrt(m) at *any* cardinality.  Provided so
downstream users can pick the estimator matching their flow regime, and
used by the tests to cross-check the ancillary table's estimates.
"""

from __future__ import annotations

import math

from repro.hashing.families import HashFunction

_MIN_PRECISION = 4
_MAX_PRECISION = 18


def _alpha(m: int) -> float:
    """Bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


class HyperLogLog:
    """HyperLogLog with the standard small/large-range corrections.

    Args:
        precision: ``p``; the sketch uses ``m = 2**p`` 6-bit registers
            and has standard error ~ ``1.04 / sqrt(m)``.
        seed: hash seed.
    """

    def __init__(self, precision: int = 12, seed: int = 0):
        if not _MIN_PRECISION <= precision <= _MAX_PRECISION:
            raise ValueError(
                f"precision must be in [{_MIN_PRECISION}, {_MAX_PRECISION}], "
                f"got {precision}"
            )
        self.precision = precision
        self.m = 1 << precision
        self._hash = HashFunction(seed)
        self._registers = bytearray(self.m)

    def add(self, key: int) -> None:
        """Record one key (idempotent for duplicates)."""
        h = self._hash(key)
        idx = h >> (64 - self.precision)
        remainder = h & ((1 << (64 - self.precision)) - 1)
        # Rank: position of the leftmost 1-bit in the remainder, 1-based,
        # within the (64 - p)-bit suffix; all-zero suffix ranks maximal.
        width = 64 - self.precision
        rank = width - remainder.bit_length() + 1
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def estimate(self) -> float:
        """Current cardinality estimate with range corrections."""
        m = self.m
        inverse_sum = 0.0
        zeros = 0
        for register in self._registers:
            inverse_sum += 2.0**-register
            if register == 0:
                zeros += 1
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            # Small-range correction: fall back to linear counting.
            return m * math.log(m / zeros)
        two_to_32 = 2.0**32
        if raw > two_to_32 / 30.0:
            # Large-range correction for 32-bit hash spaces; with 64-bit
            # hashes this is effectively unreachable but kept for parity
            # with the published algorithm.
            return -two_to_32 * math.log(1.0 - raw / two_to_32)
        return raw

    def merge(self, other: HyperLogLog) -> None:
        """Union this sketch with another (register-wise max).

        Raises:
            ValueError: if precisions or seeds differ (registers would
                not be comparable).
        """
        if self.precision != other.precision:
            raise ValueError("cannot merge HLLs with different precisions")
        if self._hash.seed != other._hash.seed:
            raise ValueError("cannot merge HLLs built with different seeds")
        for i, register in enumerate(other._registers):
            if register > self._registers[i]:
                self._registers[i] = register

    def standard_error(self) -> float:
        """Theoretical relative standard error ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def reset(self) -> None:
        """Clear all registers."""
        self._registers = bytearray(self.m)

    @property
    def memory_bits(self) -> int:
        """Footprint at the canonical 6 bits per register."""
        return self.m * 6
