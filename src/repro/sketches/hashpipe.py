"""HashPipe (Sivaraman et al., SOSR 2017).

A pipeline of ``d`` hash tables (4 equal-size tables in the paper's
configuration).  The first stage *always* inserts the incoming packet's
flow, evicting any existing record; evicted records travel down the
pipeline, and at each later stage the record with the smaller count is
evicted and carried onward.  A record evicted from the last stage is
discarded.

As the HashFlow paper points out (Section II), this strategy frequently
splits one flow into multiple partial records in different tables, which
wastes memory and makes counts inaccurate — exactly the behaviour this
implementation reproduces (packets of an evicted flow that arrive later
re-insert it at stage 1 with a fresh count).
"""

from __future__ import annotations

import numpy as np

from repro.flow.batch import KeyBatch
from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFamily
from repro.hashing.mixers import MASK64, low_halves, mix128
from repro.native import resolve_kernel
from repro.sketches.base import FlowCollector
from repro.specs import register

_COUNTER_BITS = 32
_EMPTY = 0  # cell key sentinel: packed flow keys are never all-zero in practice

DEFAULT_STAGES = 4


@register("hashpipe")
class HashPipe(FlowCollector):
    """HashPipe with ``d`` equal-size stages.

    Args:
        cells_per_stage: buckets in each stage table.
        stages: number of pipeline stages (paper default: 4).
        seed: hash family seed.
        kernel: execution tier — ``"native"``, ``"numpy"``, or None to
            follow ``REPRO_KERNEL``.  Bit-identical either way; an
            explicit choice is recorded in the spec.
    """

    name = "HashPipe"

    def __init__(
        self,
        cells_per_stage: int,
        stages: int = DEFAULT_STAGES,
        seed: int = 0,
        kernel: str | None = None,
    ):
        super().__init__()
        if cells_per_stage <= 0:
            raise ValueError(f"cells_per_stage must be positive, got {cells_per_stage}")
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        params = dict(cells_per_stage=cells_per_stage, stages=stages, seed=seed)
        if kernel is not None:
            params["kernel"] = kernel
        self._record_spec(**params)
        self.kernel, self._native = resolve_kernel(kernel)
        self.cells_per_stage = cells_per_stage
        self.stages = stages
        self.seed = seed
        self._hashes = HashFamily(stages, master_seed=seed)
        # Seeds prebound for the hot path: `mix128(key, seed) % n` inline
        # skips the HashFunction.bucket call per stage.
        self._seeds = [h.seed for h in self._hashes]
        if self._native is not None:
            # SoA storage: stage-major flat planes the C kernel mutates
            # in place (stage s owns cells [s*n, (s+1)*n)).
            self._seeds_arr = np.array(self._seeds, dtype=np.uint64)
            n_total = stages * cells_per_stage
            self._k_lo = np.zeros(n_total, dtype=np.uint64)
            self._k_hi = np.zeros(n_total, dtype=np.uint64)
            self._counts_arr = np.zeros(n_total, dtype=np.int64)
            self._keys = None
            self._counts = None
            return
        self._keys = [[_EMPTY] * cells_per_stage for _ in range(stages)]
        self._counts = [[0] * cells_per_stage for _ in range(stages)]

    def _native_update(self, batch: KeyBatch) -> None:
        """Run a batch through the compiled pipeline-walk kernel."""
        lo, hi = batch.halves()
        hashes, reads, writes = self._native.hashpipe_update(
            lo, hi, self._seeds_arr, self.stages, self.cells_per_stage,
            self._k_lo, self._k_hi, self._counts_arr,
        )
        self.meter.add(
            packets=len(batch), hashes=hashes, reads=reads, writes=writes
        )

    def process(self, key: int) -> None:
        """Push one packet through the pipeline (HashPipe update rule)."""
        if self._native is not None:
            # Batch of one through the kernel: bit-identical walk and
            # meter deltas, one implementation per tier.
            self._native_update(KeyBatch([key]))
            return
        meter = self.meter
        meter.packets += 1
        n = self.cells_per_stage
        seeds = self._seeds
        keys = self._keys
        counts = self._counts

        # Stage 1: always insert, evicting whatever is there.
        idx = mix128(key, seeds[0]) % n
        meter.hashes += 1
        meter.reads += 1
        stage_keys = keys[0]
        stage_counts = counts[0]
        occupant_count = stage_counts[idx]
        if occupant_count == 0:
            stage_keys[idx] = key
            stage_counts[idx] = 1
            meter.writes += 1
            return
        if stage_keys[idx] == key:
            stage_counts[idx] = occupant_count + 1
            meter.writes += 1
            return
        carry_key, carry_count = stage_keys[idx], occupant_count
        stage_keys[idx] = key
        stage_counts[idx] = 1
        meter.writes += 1

        # Later stages: keep the larger record, carry the smaller onward.
        for s in range(1, self.stages):
            idx = mix128(carry_key, seeds[s]) % n
            meter.hashes += 1
            meter.reads += 1
            stage_keys = keys[s]
            stage_counts = counts[s]
            occupant_count = stage_counts[idx]
            if occupant_count == 0:
                stage_keys[idx] = carry_key
                stage_counts[idx] = carry_count
                meter.writes += 1
                return
            if stage_keys[idx] == carry_key:
                stage_counts[idx] = occupant_count + carry_count
                meter.writes += 1
                return
            if occupant_count < carry_count:
                stage_keys[idx], carry_key = carry_key, stage_keys[idx]
                stage_counts[idx], carry_count = carry_count, occupant_count
                meter.writes += 1
        # Carry evicted from the final stage is discarded.

    def process_batch(self, keys) -> None:
        """Batched HashPipe update.

        Stage-1 indices depend only on the incoming keys, so they are
        precomputed for the whole batch in one vectorized pass.  Later
        stages hash the *evicted carry* record, which depends on table
        state and cannot be precomputed — those hashes run inline with
        prebound seeds.  Packet order is preserved and the meter is
        settled once per batch, so results are bit-identical to the
        scalar path.
        """
        batch = KeyBatch.coerce(keys)
        if not len(batch):
            return
        if self._native is not None:
            self._native_update(batch)
            return
        n = self.cells_per_stage
        seeds = self._seeds
        row0 = self._hashes[0].buckets_batch(batch, n).tolist()
        keys_ = self._keys
        counts_ = self._counts
        stages = self.stages
        mix = mix128
        hashes = reads = writes = 0
        stage0_keys = keys_[0]
        stage0_counts = counts_[0]
        for i, key in enumerate(batch.keys):
            # Stage 1: always insert, evicting whatever is there.
            idx = row0[i]
            hashes += 1
            reads += 1
            occupant_count = stage0_counts[idx]
            if occupant_count == 0:
                stage0_keys[idx] = key
                stage0_counts[idx] = 1
                writes += 1
                continue
            if stage0_keys[idx] == key:
                stage0_counts[idx] = occupant_count + 1
                writes += 1
                continue
            carry_key, carry_count = stage0_keys[idx], occupant_count
            stage0_keys[idx] = key
            stage0_counts[idx] = 1
            writes += 1

            # Later stages: keep the larger record, carry the smaller.
            for s in range(1, stages):
                idx = mix(carry_key, seeds[s]) % n
                hashes += 1
                reads += 1
                stage_keys = keys_[s]
                stage_counts = counts_[s]
                occupant_count = stage_counts[idx]
                if occupant_count == 0:
                    stage_keys[idx] = carry_key
                    stage_counts[idx] = carry_count
                    writes += 1
                    break
                if stage_keys[idx] == carry_key:
                    stage_counts[idx] = occupant_count + carry_count
                    writes += 1
                    break
                if occupant_count < carry_count:
                    stage_keys[idx], carry_key = carry_key, stage_keys[idx]
                    stage_counts[idx], carry_count = carry_count, occupant_count
                    writes += 1
            # Carry evicted from the final stage is discarded.
        self.meter.add(
            packets=len(batch), hashes=hashes, reads=reads, writes=writes
        )

    def records(self) -> dict[int, int]:
        """Reported records: per-flow sums of the (possibly split) cells."""
        result: dict[int, int] = {}
        if self._native is not None:
            # Ascending flat index == stage-major cell order, the same
            # iteration order as the list tier.
            for idx in np.nonzero(self._counts_arr)[0].tolist():
                key = (int(self._k_hi[idx]) << 64) | int(self._k_lo[idx])
                result[key] = result.get(key, 0) + int(self._counts_arr[idx])
            return result
        for stage_keys, stage_counts in zip(self._keys, self._counts):
            for key, count in zip(stage_keys, stage_counts):
                if count > 0:
                    result[key] = result.get(key, 0) + count
        return result

    def query(self, key: int) -> int:
        """Sum the flow's counts across all stages (0 if absent)."""
        if self._native is not None:
            return int(self.query_batch(KeyBatch([key]))[0])
        n = self.cells_per_stage
        total = 0
        for s in range(self.stages):
            idx = self._hashes[s].bucket(key, n)
            if self._counts[s][idx] and self._keys[s][idx] == key:
                total += self._counts[s][idx]
        return total

    def query_batch(self, keys) -> np.ndarray:
        """Batched :meth:`query`: vectorized per-stage partial-record sum.

        All stage indices come from one ``bucket_matrix`` pass over the
        batch's 64-bit halves.  Each stage's stored keys are compared
        against the batch's ``lo`` halves vectorized; only candidates
        (occupied bucket, matching low half) pay for the exact
        Python-int comparison, and matches accumulate — a split flow's
        partial records sum exactly as in the scalar query.
        """
        batch = KeyBatch.coerce(keys)
        n = len(batch)
        out = np.zeros(n, dtype=np.int64)
        if not n:
            return out
        if self._native is not None:
            lo, hi = batch.halves()
            return self._native.hashpipe_query(
                lo, hi, self._seeds_arr, self.stages, self.cells_per_stage,
                self._k_lo, self._k_hi, self._counts_arr,
            )
        rows = self._hashes.bucket_matrix(batch, self.cells_per_stage)
        lo = batch.lo
        query_keys = batch.keys
        for row, stage_keys, stage_counts in zip(rows, self._keys, self._counts):
            counts_arr = np.fromiter(
                stage_counts, np.int64, count=self.cells_per_stage
            )
            candidates = (counts_arr[row] > 0) & (low_halves(stage_keys)[row] == lo)
            for i in np.nonzero(candidates)[0].tolist():
                idx = int(row[i])
                if stage_keys[idx] == query_keys[i]:
                    out[i] += stage_counts[idx]
        return out

    def estimate_cardinality(self) -> float:
        """Distinct keys currently held.

        HashPipe "does not use any advanced cardinality estimation
        technique to compensate for the flows it drops" (paper §IV-C),
        so this simply counts resident keys and underestimates badly
        under load.
        """
        if self._native is not None:
            occupied = np.nonzero(self._counts_arr)[0]
            pairs = {
                (int(self._k_lo[i]), int(self._k_hi[i])) for i in occupied.tolist()
            }
            return float(len(pairs))
        distinct: set[int] = set()
        for stage_keys, stage_counts in zip(self._keys, self._counts):
            distinct.update(
                k for k, c in zip(stage_keys, stage_counts) if c > 0
            )
        return float(len(distinct))

    def occupancy(self) -> int:
        """Number of non-empty cells across all stages."""
        if self._native is not None:
            return int(np.count_nonzero(self._counts_arr))
        return sum(
            sum(1 for c in stage_counts if c > 0) for stage_counts in self._counts
        )

    def reset(self) -> None:
        """Clear all stages and the meter."""
        if self._native is not None:
            self._k_lo.fill(0)
            self._k_hi.fill(0)
            self._counts_arr.fill(0)
            self.meter.reset()
            return
        n = self.cells_per_stage
        self._keys = [[_EMPTY] * n for _ in range(self.stages)]
        self._counts = [[0] * n for _ in range(self.stages)]
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """``stages * cells`` records of (104-bit key, 32-bit counter)."""
        return self.stages * self.cells_per_stage * (FLOW_KEY_BITS + _COUNTER_BITS)
