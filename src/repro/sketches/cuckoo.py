"""Cuckoo hash table as a flow cache (Pagh & Rodler 2004).

Section II of the paper dismisses classic collision-resolution schemes
for dataplane use: "in the worst case, they need unbounded time for
insertion".  This module implements exactly that alternative — a cuckoo
flow cache with displacement chains — and instruments the displacement
count per insertion, so the claim can be *measured* against HashFlow's
fixed ``d``-probe budget (see ``bench_cuckoo_comparison.py``).

As a collector it is excellent at low load (every resident record is
exact, occupancy can exceed 90% with 2 hashes + 4-way... here 1-way
cells) but its insertion cost explodes near capacity and new flows are
dropped once the kick limit is hit.
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFamily
from repro.sketches.base import FlowCollector, gather_estimates
from repro.specs import register

_COUNTER_BITS = 32

DEFAULT_MAX_KICKS = 500


@register("cuckoo")
class CuckooFlowCache(FlowCollector):
    """A cuckoo-hashed flow cache.

    Args:
        n_cells: total buckets (single-slot).
        n_hashes: candidate positions per key (classic cuckoo: 2).
        max_kicks: displacement budget per insertion; exceeding it
            drops the incoming flow (and counts it in
            :attr:`insert_failures`).
        seed: hash seed.

    Attributes:
        insert_failures: flows dropped because a displacement chain
            exceeded ``max_kicks``.
        total_kicks: displacements performed over the table's lifetime.
        max_chain: longest displacement chain seen (the "unbounded
            time" the paper warns about, observed).
    """

    name = "CuckooFlowCache"

    def __init__(
        self,
        n_cells: int,
        n_hashes: int = 2,
        max_kicks: int = DEFAULT_MAX_KICKS,
        seed: int = 0,
    ):
        super().__init__()
        if n_cells <= 0:
            raise ValueError(f"n_cells must be positive, got {n_cells}")
        if n_hashes < 2:
            raise ValueError(f"n_hashes must be >= 2, got {n_hashes}")
        if max_kicks < 0:
            raise ValueError(f"max_kicks must be >= 0, got {max_kicks}")
        self._record_spec(
            n_cells=n_cells, n_hashes=n_hashes, max_kicks=max_kicks, seed=seed
        )
        self.n_cells = n_cells
        self.n_hashes = n_hashes
        self.max_kicks = max_kicks
        self._hashes = HashFamily(n_hashes, master_seed=seed)
        self._keys = [0] * n_cells
        self._counts = [0] * n_cells
        self.insert_failures = 0
        self.total_kicks = 0
        self.max_chain = 0

    def _positions(self, key: int) -> list[int]:
        n = self.n_cells
        return [h.bucket(key, n) for h in self._hashes]

    def process(self, key: int) -> None:
        """Increment the flow if resident; otherwise cuckoo-insert it."""
        meter = self.meter
        meter.packets += 1
        positions = self._positions(key)
        meter.hashes += self.n_hashes
        meter.reads += self.n_hashes
        for idx in positions:
            if self._counts[idx] and self._keys[idx] == key:
                self._counts[idx] += 1
                meter.writes += 1
                return
        for idx in positions:
            if self._counts[idx] == 0:
                self._keys[idx] = key
                self._counts[idx] = 1
                meter.writes += 1
                return
        self._insert_with_kicks(key, positions[0])

    def _insert_with_kicks(self, key: int, idx: int) -> None:
        """Displace occupants along a cuckoo chain until a hole appears."""
        meter = self.meter
        carry_key, carry_count = key, 1
        chain = 0
        while chain < self.max_kicks:
            # Swap the carried record into idx, pick up the occupant.
            carry_key, self._keys[idx] = self._keys[idx], carry_key
            carry_count, self._counts[idx] = self._counts[idx], carry_count
            meter.reads += 1
            meter.writes += 1
            chain += 1
            # The displaced record tries its alternative positions.
            alternatives = [
                p for p in self._positions(carry_key) if p != idx
            ]
            meter.hashes += self.n_hashes
            placed = False
            for alt in alternatives:
                meter.reads += 1
                if self._counts[alt] == 0:
                    self._keys[alt] = carry_key
                    self._counts[alt] = carry_count
                    meter.writes += 1
                    placed = True
                    break
            if placed:
                self.total_kicks += chain
                self.max_chain = max(self.max_chain, chain)
                return
            idx = alternatives[0] if alternatives else idx
        # Chain exhausted: the carried record is dropped.
        self.total_kicks += chain
        self.max_chain = max(self.max_chain, chain)
        self.insert_failures += 1

    def records(self) -> dict[int, int]:
        """All resident records (each exact)."""
        return {
            k: c for k, c in zip(self._keys, self._counts) if c > 0
        }

    def query(self, key: int) -> int:
        """Exact count if resident, else 0."""
        for idx in self._positions(key):
            if self._counts[idx] and self._keys[idx] == key:
                return self._counts[idx]
        return 0

    def query_batch(self, keys) -> np.ndarray:
        """Batched queries via one records scan + dict-gather.

        Every resident record is exact and a flow occupies at most one
        cell (displacements move a record between its *own* candidate
        positions, never duplicate it), so gathering from the record
        dict is bit-identical to probing per key.
        """
        return gather_estimates(self.records(), keys)

    def occupancy(self) -> int:
        """Occupied buckets."""
        return sum(1 for c in self._counts if c > 0)

    def utilization(self) -> float:
        """Fraction of buckets occupied."""
        return self.occupancy() / self.n_cells

    def reset(self) -> None:
        """Clear the table, the chain statistics and the meter."""
        self._keys = [0] * self.n_cells
        self._counts = [0] * self.n_cells
        self.insert_failures = 0
        self.total_kicks = 0
        self.max_chain = 0
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Buckets of (104-bit key, 32-bit counter)."""
        return self.n_cells * (FLOW_KEY_BITS + _COUNTER_BITS)
