"""FlowRadar (Li et al., NSDI 2016).

A Bloom filter detects new flows; an *encoded flowset* (counting table)
stores, per cell, ``FlowXOR`` (XOR of the IDs of all flows hashed
there), ``FlowCount`` (how many distinct flows) and ``PacketCount``
(packets of all those flows).  Each flow maps to ``k`` counting cells.

Decoding uses singleton peeling (SingleDecode in the FlowRadar paper):
a cell with ``FlowCount == 1`` reveals one flow and its exact packet
count; removing that flow from its ``k`` cells may expose new
singletons.  Decoding succeeds fully only while the load stays under
the ``k``-hypergraph peeling threshold (~0.82 flows/cell for k = 3),
which produces the sharp accuracy cliff the HashFlow paper highlights
(Figs. 6 and 8).

Configuration per the HashFlow paper (Section IV-A): 4 Bloom hash
functions, 3 counting hashes, Bloom bit count = 40 x counting cells.
"""

from __future__ import annotations

import numpy as np

from repro.flow.key import FLOW_KEY_BITS
from repro.hashing.families import HashFamily
from repro.sketches.base import FlowCollector, gather_estimates
from repro.sketches.bloom import BloomFilter
from repro.specs import register

_COUNT_BITS = 32

DEFAULT_COUNTING_HASHES = 3
DEFAULT_BLOOM_HASHES = 4
DEFAULT_BLOOM_RATIO = 40


@register("flowradar")
class FlowRadar(FlowCollector):
    """FlowRadar collector with singleton-peeling decode.

    Args:
        counting_cells: cells in the encoded flowset.
        counting_hashes: hash functions into the flowset (paper: 3).
        bloom_bits: Bloom filter size in bits (paper: 40 x counting_cells).
        bloom_hashes: Bloom hash functions (paper: 4).
        seed: hash seed.
    """

    name = "FlowRadar"

    def __init__(
        self,
        counting_cells: int,
        counting_hashes: int = DEFAULT_COUNTING_HASHES,
        bloom_bits: int | None = None,
        bloom_hashes: int = DEFAULT_BLOOM_HASHES,
        seed: int = 0,
    ):
        super().__init__()
        if counting_cells <= 0:
            raise ValueError(f"counting_cells must be positive, got {counting_cells}")
        if counting_hashes < 1:
            raise ValueError(f"counting_hashes must be >= 1, got {counting_hashes}")
        self._record_spec(
            counting_cells=counting_cells,
            counting_hashes=counting_hashes,
            bloom_bits=(
                bloom_bits
                if bloom_bits is not None
                else DEFAULT_BLOOM_RATIO * counting_cells
            ),
            bloom_hashes=bloom_hashes,
            seed=seed,
        )
        self.counting_cells = counting_cells
        self.counting_hashes = counting_hashes
        self.seed = seed
        self._hashes = HashFamily(counting_hashes, master_seed=seed)
        self.bloom = BloomFilter(
            n_bits=bloom_bits if bloom_bits is not None else DEFAULT_BLOOM_RATIO * counting_cells,
            n_hashes=bloom_hashes,
            seed=seed + 0xB100,
            meter=self.meter,
        )
        self._flow_xor = [0] * counting_cells
        self._flow_count = [0] * counting_cells
        self._packet_count = [0] * counting_cells
        self._decoded: dict[int, int] | None = None

    def _cells(self, key: int) -> list[int]:
        """Distinct counting cells of ``key`` (duplicates collapse, as a
        cell updated twice by one flow would corrupt peeling)."""
        n = self.counting_cells
        seen: list[int] = []
        for h in self._hashes:
            i = h.bucket(key, n)
            if i not in seen:
                seen.append(i)
        return seen

    def process(self, key: int) -> None:
        """Per-packet update: Bloom check, then counting-table update."""
        meter = self.meter
        meter.packets += 1
        self._decoded = None
        is_old = self.bloom.check_and_add(key)
        cells = self._cells(key)
        meter.hashes += self.counting_hashes
        meter.reads += len(cells)
        meter.writes += len(cells)
        if is_old:
            for i in cells:
                self._packet_count[i] += 1
        else:
            for i in cells:
                self._flow_xor[i] ^= key
                self._flow_count[i] += 1
                self._packet_count[i] += 1

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self) -> dict[int, int]:
        """Run singleton peeling; returns ``{flow: packet count}``.

        The result is cached until the next :meth:`process` call.
        Partial decodes are returned as-is when peeling stalls (the
        remaining flows are unrecoverable).
        """
        if self._decoded is not None:
            return self._decoded
        flow_xor = list(self._flow_xor)
        flow_count = list(self._flow_count)
        packet_count = list(self._packet_count)
        decoded: dict[int, int] = {}
        stack = [i for i, c in enumerate(flow_count) if c == 1]
        while stack:
            i = stack.pop()
            if flow_count[i] != 1:
                continue
            key = flow_xor[i]
            size = packet_count[i]
            decoded[key] = size
            for j in self._cells(key):
                flow_xor[j] ^= key
                flow_count[j] -= 1
                packet_count[j] -= size
                if flow_count[j] == 1:
                    stack.append(j)
        self._decoded = decoded
        return decoded

    def decode_fraction(self, total_flows: int) -> float:
        """Fraction of ``total_flows`` recovered by decoding."""
        if total_flows <= 0:
            raise ValueError(f"total_flows must be positive, got {total_flows}")
        return len(self.decode()) / total_flows

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def records(self) -> dict[int, int]:
        """Decoded flow records."""
        return dict(self.decode())

    def query(self, key: int) -> int:
        """Decoded packet count of ``key`` (0 when not recoverable)."""
        return self.decode().get(key, 0)

    def query_batch(self, keys) -> np.ndarray:
        """Batched queries: decode once (cached), then dict-gather."""
        return gather_estimates(self.decode(), keys)

    def estimate_cardinality(self) -> float:
        """Bloom-filter fill-fraction estimate of distinct flows.

        The paper (§IV-C) notes this estimator "is not sensitive to flow
        sizes", which is why FlowRadar's RE stays low even when decode
        fails.
        """
        return self.bloom.estimate_cardinality()

    def reset(self) -> None:
        """Clear the flowset, the Bloom filter and the meter."""
        n = self.counting_cells
        self._flow_xor = [0] * n
        self._flow_count = [0] * n
        self._packet_count = [0] * n
        self.bloom.reset()
        self._decoded = None
        self.meter.reset()

    @property
    def memory_bits(self) -> int:
        """Counting cells of (FlowXOR, FlowCount, PacketCount) + Bloom bits."""
        cell = FLOW_KEY_BITS + 2 * _COUNT_BITS
        return self.counting_cells * cell + self.bloom.memory_bits
