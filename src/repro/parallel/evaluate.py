"""Cell evaluation: materialize a workload, feed a collector, measure.

This is the code that runs *inside* a sweep worker (or inline, for
serial plans).  It owns two caches that make multi-cell plans cheap:

* a per-process **trace cache** — base traces are loaded from the
  engine's on-disk array store (mmap) or generated from their profile,
  once per process;
* a per-process **workload cache** — the materialized
  :class:`~repro.experiments.runner.Workload` (packet ``KeyBatch``,
  truth vectors) is shared by every cell that names the same
  :class:`~repro.parallel.plan.WorkloadRef`, so the paper's
  feed-every-algorithm-the-same-stream structure costs one
  materialization per process, not one per cell.

Imports of the experiment layer happen lazily inside functions:
``repro.parallel`` is imported *by* ``repro.experiments.figures``, so a
module-level import of ``repro.experiments.runner`` would re-enter the
``repro.experiments`` package mid-initialization.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.parallel.plan import CellResult, SweepCell, WorkloadRef
from repro.specs import build
from repro.traces.io import load_trace_arrays
from repro.traces.profiles import PROFILES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traces.trace import Trace

#: Metrics that require a fed collector.
COLLECTOR_METRICS = frozenset(
    {
        "fsc",
        "size_are",
        "cardinality_re",
        "records",
        "accurate_records",
        "hh_sweep",
        "epoch_report",
    }
)

#: Metrics evaluated against the workload (or a deployment) directly.
PLAN_METRICS = frozenset({"stats", "netwide_redundant", "pipeline"})

_ZERO_METER = {"packets": 0, "hashes": 0, "reads": 0, "writes": 0}


class CellWorkload:
    """A materialized workload with lazily-built evaluation vectors.

    Cells that only need the raw trace (Table I statistics, epoch
    reports) never pay for the full
    :class:`~repro.experiments.runner.Workload` construction (packet
    key list, 64-bit halves, truth vectors); cells that do share one
    instance per process.
    """

    __slots__ = ("trace", "_workload", "_batch")

    def __init__(self, trace: "Trace"):
        self.trace = trace
        self._workload = None
        self._batch = None

    @property
    def workload(self):
        if self._workload is None:
            from repro.experiments.runner import Workload

            self._workload = Workload(self.trace)
        return self._workload

    @property
    def batch(self):
        """The packet stream as a :class:`KeyBatch` (shared, cached)."""
        if self._workload is not None:
            return self._workload.batch
        if self._batch is None:
            self._batch = self.trace.key_batch()
        return self._batch


class WorkloadStore:
    """Per-process cache of base traces and materialized workloads.

    Both caches are small LRUs (not unbounded maps): plans visit cells
    grouped by workload, so retaining more than the couple most recent
    workloads would only pin dead multi-hundred-MB key lists for the
    rest of the plan — the pre-engine serial loops rebound one workload
    at a time, and peak memory must not regress relative to them.

    Args:
        trace_root: directory of the on-disk trace-array cache.  When
            set, profile-backed refs are loaded from
            ``trace_root/<cache_token>`` if present (the parallel
            engine materializes them there before fanning out) and
            generated in-process only as a fallback; when None (serial
            execution), traces are always generated in-process and the
            disk is never touched.
        max_cached: materialized workloads (and base traces) retained
            per process.
    """

    def __init__(
        self, trace_root: str | Path | None = None, max_cached: int = 2
    ):
        self.trace_root = None if trace_root is None else Path(trace_root)
        self.max_cached = max(1, max_cached)
        self._traces: OrderedDict[tuple, "Trace"] = OrderedDict()
        self._workloads: OrderedDict[WorkloadRef, CellWorkload] = OrderedDict()

    def _remember(self, cache: OrderedDict, key, value) -> None:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self.max_cached:
            cache.popitem(last=False)

    def base_trace(self, ref: WorkloadRef) -> "Trace":
        """The ref's base trace (before subsetting/slicing), cached."""
        key = ref.base_key()
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            return trace
        if ref.shm is not None:
            from repro.shm import attach_trace

            trace = attach_trace(ref.shm)
        elif ref.path is not None:
            trace = load_trace_arrays(ref.path)
        else:
            trace = None
            if self.trace_root is not None:
                cached = self.trace_root / ref.cache_token()
                try:
                    trace = load_trace_arrays(cached)
                except FileNotFoundError:
                    trace = None
                # A cache entry that does not match the ref (e.g. left
                # by an older layout) must not silently substitute a
                # different trace; regenerate instead.
                if trace is not None and (
                    trace.name != ref.profile
                    or trace.num_flows != ref.generated_flows
                ):
                    trace = None
            if trace is None:
                trace = PROFILES[ref.profile].generate(
                    n_flows=ref.generated_flows,
                    seed=ref.seed,
                    force_max=ref.force_max,
                )
        self._remember(self._traces, key, trace)
        return trace

    def get(self, ref: WorkloadRef) -> CellWorkload:
        """The fully materialized workload for a ref, cached."""
        cw = self._workloads.get(ref)
        if cw is None:
            trace = self.base_trace(ref)
            if ref.start is not None:
                trace = trace.slice_packets(ref.start, min(ref.stop, len(trace)))
            elif ref.n_flows is not None and ref.generated_flows > ref.n_flows:
                # Trial subsetting applies to shm-backed refs too: the
                # engine's shared-trace rewrite carries the original
                # n_flows/base_flows/seed so this subset is exactly the
                # one the profile-backed ref would have taken.
                trace = trace.subset_flows(ref.n_flows, seed=ref.seed + 1)
            cw = CellWorkload(trace)
            self._remember(self._workloads, ref, cw)
        else:
            self._workloads.move_to_end(ref)
        return cw


def _meter_totals(collector) -> dict[str, int]:
    meter = collector.meter
    return {
        "packets": meter.packets,
        "hashes": meter.hashes,
        "reads": meter.reads,
        "writes": meter.writes,
    }


def _eval_netwide_redundant(cell: SweepCell, cw: CellWorkload) -> dict:
    """Run a redundant (path-based) network-wide deployment.

    The cell's spec describes the per-switch collector prototype;
    ``params`` carries the fabric shape and the router seed.
    """
    from repro.netwide.deployment import NetworkDeployment
    from repro.netwide.topology import FlowRouter, fat_tree_core

    params = cell.params
    router = FlowRouter(
        fat_tree_core(params.get("k_edge", 4), params.get("k_core", 2)),
        seed=params.get("router_seed", 0),
    )
    deployment = NetworkDeployment(router, cell.spec_or_kind)
    report = deployment.run(cw.trace)
    truth = cw.trace.true_sizes()
    return {
        "switches": len(report.per_switch_records),
        "fsc": report.coverage(set(truth)),
        "records": len(report.merged_records),
    }


def evaluate_cell(cell: SweepCell, store: WorkloadStore, index: int = 0) -> CellResult:
    """Execute one cell against a workload store.

    This is the *only* execution path — serial plans run it inline,
    parallel plans run it inside worker processes — so equal cells
    always produce equal results regardless of where they execute.

    Raises:
        ValueError: for an unknown metric name.
    """
    from repro.analysis.heavy_hitters import threshold_sweep
    from repro.analysis.metrics import flow_set_coverage, relative_error

    cw = store.get(cell.workload)
    collector = None
    needs_collector = any(m in COLLECTOR_METRICS for m in cell.metrics)
    if needs_collector:
        if cell.spec_or_kind is None:
            raise ValueError(f"cell {cell.label!r} has metrics that need a collector")
        collector = build(
            cell.spec_or_kind, memory_bytes=cell.memory_bytes, seed=cell.seed
        )
        # Touching cw.workload first (when any metric needs truth
        # vectors) makes cw.batch come from it, so the stream batch is
        # materialized exactly once per workload per process.
        if any(m not in ("records", "epoch_report") for m in cell.metrics):
            cw.workload
        collector.process_all(cw.batch)

    base: dict = {}
    sweep_rows: list[dict] | None = None
    for metric in cell.metrics:
        if metric == "fsc":
            base["fsc"] = flow_set_coverage(
                collector.records(), cw.workload.true_sizes
            )
        elif metric == "size_are":
            base["size_are"] = cw.workload.size_are(collector)
        elif metric == "cardinality_re":
            base["cardinality_re"] = relative_error(
                collector.estimate_cardinality(), cw.workload.num_flows
            )
        elif metric == "records":
            base["records"] = len(collector.records())
        elif metric == "accurate_records":
            truth = cw.workload.true_sizes
            base["accurate_records"] = sum(
                1 for k, v in collector.records().items() if truth.get(k) == v
            )
        elif metric == "hh_sweep":
            sweep_rows = [
                {
                    "threshold": hh.threshold,
                    "f1": hh.f1,
                    "are": hh.are,
                    "recall": hh.recall,
                    "actual": hh.actual,
                }
                for hh in threshold_sweep(
                    collector,
                    cw.workload.true_sizes,
                    cell.params["thresholds"],
                )
            ]
        elif metric == "epoch_report":
            base["packets"] = len(cw.trace)
            base["flows"] = cw.trace.num_flows
            base["records"] = collector.records()
        elif metric == "stats":
            stats = cw.trace.stats()
            base["flows"] = stats.flows
            base["packets"] = stats.packets
            base["max_flow_size"] = stats.max_flow_size
            base["mean_flow_size"] = stats.mean_flow_size
        elif metric == "netwide_redundant":
            base.update(_eval_netwide_redundant(cell, cw))
        elif metric == "pipeline":
            # The cell's params carry a whole PipelineSpec; the pipeline
            # runs over the store-materialized workload, which is the
            # exact trace its source would generate (the spec's
            # workload_ref mirrors the source), so serial and parallel
            # runs stay bit-identical.
            from repro.stream.pipeline import Pipeline
            from repro.stream.spec import PipelineSpec

            spec = PipelineSpec.from_dict(cell.params["pipeline"])
            base.update(Pipeline.from_spec(spec).run(trace=cw.trace).summary())
        else:
            raise ValueError(f"unknown sweep metric {metric!r}")

    if sweep_rows is None:
        rows: tuple[dict, ...] = (base,)
    else:
        rows = tuple({**base, **sr} for sr in sweep_rows)
    meter = _meter_totals(collector) if collector is not None else dict(_ZERO_METER)
    return CellResult(key=(index, cell.label), rows=rows, meter=meter)
