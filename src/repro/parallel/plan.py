"""Sweep plans: the data model of the parallel execution engine.

A figure/benchmark grid becomes an explicit *plan* — an ordered list of
independent :class:`SweepCell`\\ s.  Each cell is pure data: a workload
descriptor (:class:`WorkloadRef`), an optional collector description (a
registry kind name or a :class:`~repro.specs.CollectorSpec` dict — the
currency PR 3 made JSON-round-trippable), a memory budget, a seed, and
the metric names to evaluate.  Because cells are data, they can be
executed in-process or shipped to a worker process and rebuilt
bit-identically; the engine (:mod:`repro.parallel.engine`) guarantees
that the assembled results are byte-for-byte the same either way.

Workloads are deliberately *not* shipped as pickled traces: a
:class:`WorkloadRef` names either a calibrated profile (regenerated or
mmap-loaded from the trace cache), a saved trace-array directory
(:func:`repro.traces.io.save_trace_arrays`), optionally restricted to a
packet slice (the epoch-replay case), or a shared-memory trace segment
(:func:`repro.shm.share_trace` — the zero-copy path for traces that are
expensive or impossible to regenerate, e.g. netwide vantage streams).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.specs import CollectorSpec


@dataclass(frozen=True)
class WorkloadRef:
    """A lightweight, process-portable workload description.

    Exactly one of ``profile`` / ``path`` / ``shm`` must be set:

    * ``profile`` — a calibrated trace profile name
      (:data:`repro.traces.profiles.PROFILES`); the trace is generated
      at ``max(base_flows, n_flows)`` flows and subset to ``n_flows``,
      matching :func:`repro.experiments.runner.make_workload` exactly.
    * ``path`` — a trace-array directory written by
      :func:`repro.traces.io.save_trace_arrays`, mmap-loaded by
      workers.  ``start``/``stop`` optionally restrict the workload to
      a packet slice (epoch replay); slicing matches
      :func:`repro.traces.replay` epoch construction exactly.
    * ``shm`` — a :class:`repro.shm.SharedTraceRef` (as a plain tuple,
      keeping the dataclass hashable): the trace already sits in a
      named shared-memory segment owned by the coordinating process,
      and workers attach zero-copy.  The segment must outlive the run.

    Attributes:
        profile: trace profile name, or None for file/shm-backed refs.
        n_flows: flows in the trial (profile refs only).
        seed: generation seed (the subset seed is ``seed + 1``, as in
            ``make_workload``).
        base_flows: optional larger base-trace size to subset from.
        force_max: pin the largest flow to the profile's Table I max
            (Table I regeneration at paper scale).
        path: saved trace-array directory (file-backed refs only).
        start: first packet of the slice (file-backed refs only).
        stop: one past the last packet of the slice.
        shm: shared-trace descriptor tuple (shm-backed refs only).
    """

    profile: str | None = None
    n_flows: int | None = None
    seed: int = 0
    base_flows: int | None = None
    force_max: bool = False
    path: str | None = None
    start: int | None = None
    stop: int | None = None
    shm: tuple | None = None

    def __post_init__(self):
        backings = sum(
            x is not None for x in (self.profile, self.path, self.shm)
        )
        if backings != 1:
            raise ValueError(
                "exactly one of profile/path/shm must be set, got "
                f"profile={self.profile!r} path={self.path!r} "
                f"shm={self.shm!r}"
            )
        if self.shm is not None:
            # Normalize to a plain tuple so the frozen dataclass stays
            # hashable/comparable regardless of the caller's NamedTuple.
            object.__setattr__(self, "shm", tuple(self.shm))
        if self.profile is not None and self.n_flows is None:
            raise ValueError("profile workload refs require n_flows")
        if (self.start is None) != (self.stop is None):
            raise ValueError("start and stop must be provided together")
        if self.path is None and self.start is not None:
            raise ValueError(
                "start/stop packet slicing requires a file-backed ref; "
                "profile refs select their trial via n_flows/base_flows"
            )

    @property
    def generated_flows(self) -> int:
        """Flows in the generated base trace (before subsetting)."""
        if self.base_flows is None:
            return self.n_flows
        return max(self.base_flows, self.n_flows)

    def base_key(self) -> tuple:
        """Identity of the *base trace* this ref materializes from.

        Refs that differ only in their trial subset (``n_flows`` below
        a shared ``base_flows``) or packet slice share a base key, so
        the trace is generated/saved exactly once per plan.
        """
        if self.shm is not None:
            return ("shm", self.shm[0])  # the segment name
        if self.path is not None:
            return ("path", self.path)
        return ("profile", self.profile, self.generated_flows, self.seed,
                self.force_max)

    def cache_token(self) -> str:
        """Filesystem-safe name of the base trace in the trace cache.

        The token embeds a fingerprint of the generator version and the
        profile's calibration parameters, so recalibrating a profile or
        changing the generation algorithm (bumping
        ``GENERATION_VERSION``) invalidates stale cache entries instead
        of silently breaking the serial==parallel bit-identity
        contract.
        """
        if self.path is not None:
            raise ValueError("file-backed refs are already on disk")
        if self.shm is not None:
            raise ValueError(
                "shm-backed refs live in shared memory, not the trace cache"
            )
        from repro.traces.profiles import PROFILES
        from repro.traces.synthetic import GENERATION_VERSION

        fingerprint = hashlib.sha1(
            repr((GENERATION_VERSION, PROFILES[self.profile])).encode()
        ).hexdigest()[:10]
        suffix = "-max" if self.force_max else ""
        return (
            f"{self.profile}-f{self.generated_flows}-s{self.seed}{suffix}"
            f"-g{fingerprint}"
        )


def _canonical_spec(spec_or_kind: Any) -> Any:
    """Normalize a cell's collector description to JSON-native data."""
    if spec_or_kind is None or isinstance(spec_or_kind, str):
        return spec_or_kind
    if isinstance(spec_or_kind, CollectorSpec):
        return spec_or_kind.to_dict()
    if isinstance(spec_or_kind, Mapping):
        return CollectorSpec.from_dict(spec_or_kind).to_dict()
    spec = getattr(spec_or_kind, "spec", None)
    if isinstance(spec, CollectorSpec):
        return spec.to_dict()
    raise TypeError(
        f"cannot interpret {spec_or_kind!r} as a collector kind or spec"
    )


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    Attributes:
        workload: what packet stream to feed.
        spec_or_kind: registry kind name, spec dict, or
            :class:`~repro.specs.CollectorSpec` describing the
            collector (normalized to JSON-native data); None for cells
            that only evaluate the workload itself (e.g. Table I
            statistics).
        memory_bytes: optional budget, sized in the worker through the
            kind's registered sizing rule — exactly what
            ``build(kind, memory_bytes=...)`` does in-process.
        seed: optional hash-seed override forwarded to ``build``.
        metrics: metric names evaluated against the fed collector (see
            :mod:`repro.parallel.evaluate` for the vocabulary).
        params: extra metric parameters (e.g. heavy-hitter
            ``thresholds``); must be JSON-native.
        label: optional opaque tag echoed back in the cell's result
            key, for caller-side bookkeeping.
    """

    workload: WorkloadRef
    spec_or_kind: Any = None
    memory_bytes: int | None = None
    seed: int | None = None
    metrics: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Any = None

    def __post_init__(self):
        object.__setattr__(self, "spec_or_kind", _canonical_spec(self.spec_or_kind))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "params", dict(self.params))
        if self.spec_or_kind is None:
            from repro.parallel.evaluate import COLLECTOR_METRICS

            needy = [m for m in self.metrics if m in COLLECTOR_METRICS]
            if needy:
                raise ValueError(
                    f"metrics {needy} need a collector but the cell has "
                    "no spec_or_kind"
                )


@dataclass(frozen=True)
class CellResult:
    """What comes back from executing one cell.

    Attributes:
        key: ``(plan_index, label)`` — the cell's position in the plan
            plus its caller-provided label.
        rows: evaluated metric rows, one dict per output row (most
            metrics yield one row; sweeping metrics such as
            ``hh_sweep`` yield one per grid point).  Values are
            unrounded; presentation-layer rounding stays with the
            caller so it is applied identically in serial and parallel
            runs.
        meter: the fed collector's cost-meter totals
            (``packets``/``hashes``/``reads``/``writes``), all zero for
            collector-less cells.  Totals are exact under any worker
            assignment: each cell owns a fresh collector, so plan-level
            totals are a sum of independent integer counters.
    """

    key: tuple
    rows: tuple[dict, ...]
    meter: Mapping[str, int]
