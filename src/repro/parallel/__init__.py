"""Parallel sweep execution: figure grids as explicit plans of cells.

The paper's evaluation is a grid — algorithms × traces × flow-count and
memory sweeps — whose cells are mutually independent.  This package
turns each grid into data (:class:`SweepCell` over a
:class:`WorkloadRef`) and executes it either inline or across a process
pool (:func:`run_plan`), with a hard bit-identity contract between the
two: same specs, same seeds, same rows, same order.

Quickstart::

    from repro.parallel import SweepCell, WorkloadRef, run_plan

    ref = WorkloadRef(profile="caida", n_flows=20_000, seed=1)
    cells = [
        SweepCell(workload=ref, spec_or_kind=kind, memory_bytes=1 << 20,
                  seed=0, metrics=("fsc", "size_are"))
        for kind in ("hashflow", "hashpipe", "elastic", "flowradar")
    ]
    results = run_plan(cells, jobs=4)       # or REPRO_JOBS=4 in the env

Serial execution (``jobs=1``) is the default, touches no disk, and is
exactly the pre-engine behavior; see DESIGN.md §6 for the contract.
"""

from repro.parallel.engine import (
    JOBS_ENV,
    SHM_TRACES_ENV,
    TRACE_CACHE_ENV,
    default_trace_root,
    materialize_refs,
    merge_meters,
    resolve_jobs,
    run_plan,
    share_plan_traces,
    shm_traces_enabled,
)
from repro.parallel.evaluate import CellWorkload, WorkloadStore, evaluate_cell
from repro.parallel.plan import CellResult, SweepCell, WorkloadRef

__all__ = [
    "CellResult",
    "CellWorkload",
    "JOBS_ENV",
    "SHM_TRACES_ENV",
    "SweepCell",
    "TRACE_CACHE_ENV",
    "WorkloadRef",
    "WorkloadStore",
    "default_trace_root",
    "evaluate_cell",
    "materialize_refs",
    "merge_meters",
    "resolve_jobs",
    "run_plan",
    "share_plan_traces",
    "shm_traces_enabled",
]
