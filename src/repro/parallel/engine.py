"""The sweep-execution engine: serial or multi-process plan execution.

``run_plan`` executes an ordered list of
:class:`~repro.parallel.plan.SweepCell`\\ s and returns one
:class:`~repro.parallel.plan.CellResult` per cell, **in plan order**,
under a hard contract: the assembled results are bit-identical whether
the plan ran inline (``jobs=1``, the default) or across a
``ProcessPoolExecutor``.  The contract holds because

* every cell is evaluated by the same code
  (:func:`repro.parallel.evaluate.evaluate_cell`) against a fresh
  collector built from the cell's spec — identical params, identical
  seeds, identical integer/float arithmetic;
* workloads are rebuilt from descriptors, and the on-disk trace-array
  round trip (:mod:`repro.traces.io`) is exact — same keys, same
  order, same timestamps — so a worker's workload equals the parent's;
* results are keyed by plan index and assembled in plan order, never
  in completion order.

Worker processes never receive traces over the pipe: the parent
materializes each distinct base trace into the trace cache once
(generation is vectorized and cheap relative to collection), and
workers memory-map the per-packet arrays from disk, so an N-way fan-out
does not pay N× trace construction.

The worker count comes from the ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 — serial remains the
default, so tier-1 behavior is unchanged.  ``jobs=0`` (or
``REPRO_JOBS=0``) means "one worker per CPU".
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Sequence

import multiprocessing as mp

from repro.parallel.evaluate import WorkloadStore, evaluate_cell
from repro.parallel.plan import CellResult, SweepCell, WorkloadRef

#: Environment variable selecting the default worker count (default 1).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the on-disk trace cache location.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Environment variable gating shared-memory trace hand-off for
#: parallel plans (default on; set to ``0`` to force the disk path).
SHM_TRACES_ENV = "REPRO_SHM_TRACES"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: argument, else ``REPRO_JOBS``, else 1.

    ``0`` or a negative count means "one worker per available CPU".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"{JOBS_ENV}={raw!r} is not an integer") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def default_trace_root() -> Path:
    """The on-disk trace cache: ``REPRO_TRACE_CACHE`` or a tmpdir."""
    env = os.environ.get(TRACE_CACHE_ENV, "").strip()
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / f"repro-trace-cache-{os.getuid()}"


def materialize_refs(
    cells: Iterable[SweepCell], trace_root: str | Path | None = None
) -> Path:
    """Ensure every distinct base trace in a plan exists on disk.

    Called by the engine before fanning out (and by benchmarks to
    pre-warm the cache outside the timed region).  Generation happens
    at most once per distinct base key; already-cached traces cost one
    ``meta.json`` stat.

    Returns:
        The trace-cache root the workers should read from.
    """
    from repro.traces.io import save_trace_arrays
    from repro.traces.profiles import PROFILES

    root = Path(trace_root) if trace_root is not None else default_trace_root()
    seen: set[tuple] = set()
    for cell in cells:
        ref = cell.workload
        if ref.path is not None or ref.shm is not None:
            # Already on disk / already in shared memory.
            continue
        key = ref.base_key()
        if key in seen:
            continue
        seen.add(key)
        dest = root / ref.cache_token()
        if not (dest / "meta.json").exists():
            trace = PROFILES[ref.profile].generate(
                n_flows=ref.generated_flows,
                seed=ref.seed,
                force_max=ref.force_max,
            )
            save_trace_arrays(trace, dest)
    return root


def shm_traces_enabled() -> bool:
    """Whether parallel plans park base traces in shared memory.

    On by default: workers attach the parent's segment zero-copy
    instead of re-reading (and re-building flow keys from) the disk
    cache once per process.  ``REPRO_SHM_TRACES=0`` forces the disk
    path — the two are bit-identical, this is purely a transport knob.
    """
    return os.environ.get(SHM_TRACES_ENV, "").strip() not in ("0", "false", "no")


def share_plan_traces(
    cells: Sequence[SweepCell], trace_root: Path
) -> tuple[list[SweepCell], list]:
    """Rewrite profile-backed refs onto shared-memory trace segments.

    Each distinct base trace (already materialized on disk by
    :func:`materialize_refs`) is copied into one owned segment via
    :func:`repro.shm.share_trace`; every cell naming it gets a
    ``shm``-backed :class:`~repro.parallel.plan.WorkloadRef` carrying
    the original ``n_flows``/``base_flows``/``seed``, so trial
    subsetting in the worker stays exactly what the profile ref would
    have done.  Cells whose base trace cannot be shared (e.g. the
    segment would not fit) keep their original ref — the disk path
    still works.

    Returns:
        ``(cells, segments)`` — the rewritten plan plus the owned
        segments, which the caller must keep alive until every worker
        is done and then unlink.
    """
    from dataclasses import replace

    from repro.shm import share_trace
    from repro.traces.io import load_trace_arrays

    shared: dict[tuple, tuple | None] = {}
    segments: list = []
    rewritten: list[SweepCell] = []
    for cell in cells:
        ref = cell.workload
        if ref.profile is None:
            rewritten.append(cell)
            continue
        key = ref.base_key()
        if key not in shared:
            try:
                trace = load_trace_arrays(trace_root / ref.cache_token())
                shm_ref, segment = share_trace(trace, label="plan-trace")
            except OSError:
                shared[key] = None
            else:
                shared[key] = tuple(shm_ref)
                segments.append(segment)
        shm_ref = shared[key]
        if shm_ref is None:
            rewritten.append(cell)
        else:
            rewritten.append(
                replace(
                    cell,
                    workload=WorkloadRef(
                        shm=shm_ref,
                        n_flows=ref.n_flows,
                        base_flows=ref.base_flows,
                        seed=ref.seed,
                    ),
                )
            )
    return rewritten, segments


# ----------------------------------------------------------------------
# Worker-side state
# ----------------------------------------------------------------------
_WORKER_STORE: WorkloadStore | None = None


def _init_worker(trace_root: str) -> None:
    """Pool initializer: one WorkloadStore per worker process."""
    global _WORKER_STORE
    _WORKER_STORE = WorkloadStore(trace_root=trace_root)


def _execute_in_worker(index: int, cell: SweepCell) -> CellResult:
    """Top-level (picklable) worker entry point."""
    assert _WORKER_STORE is not None, "worker pool initializer did not run"
    return evaluate_cell(cell, _WORKER_STORE, index=index)


def _mp_context():
    """Prefer fork (cheap, inherits loaded numpy); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Plan execution
# ----------------------------------------------------------------------
def run_plan(
    cells: Sequence[SweepCell],
    jobs: int | None = None,
    trace_root: str | Path | None = None,
) -> list[CellResult]:
    """Execute a sweep plan serially or across a process pool.

    Args:
        cells: the plan, in output order.
        jobs: worker processes (see :func:`resolve_jobs`); 1 executes
            inline with no pool, no disk, and no extra processes.
        trace_root: trace-cache directory for parallel runs (default:
            :func:`default_trace_root`).

    Returns:
        One :class:`CellResult` per cell, in plan order — bit-identical
        at any job count.

    Raises:
        The original exception of the first failing cell (re-raised in
        the caller's process); remaining queued cells are cancelled, so
        a crashing cell never hangs the pool.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        store = WorkloadStore()
        return [evaluate_cell(cell, store, index=i) for i, cell in enumerate(cells)]

    root = materialize_refs(cells, trace_root)
    segments: list = []
    if shm_traces_enabled():
        cells, segments = share_plan_traces(cells, root)
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)),
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(str(root),),
        ) as pool:
            futures = [
                pool.submit(_execute_in_worker, i, cell)
                for i, cell in enumerate(cells)
            ]
            try:
                return [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                raise
    finally:
        for segment in segments:
            segment.unlink()


def merge_meters(results: Iterable[CellResult]) -> dict[str, int]:
    """Sum per-cell meter totals into plan totals.

    The merge is *exact*, not approximate: every cell owns a fresh
    collector whose counters are plain integers, so the plan total is
    an order-independent integer sum — the same number the serial run
    would report.
    """
    totals = {"packets": 0, "hashes": 0, "reads": 0, "writes": 0}
    for result in results:
        for field in totals:
            totals[field] += result.meter[field]
    return totals
