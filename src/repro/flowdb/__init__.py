"""Hierarchical flow query layer: vantage × time-window summary store.

The daemon's first consumer (ROADMAP "Network-wide hierarchical query
layer"): rotation archives — durable sink directories, in-memory
pipeline archives, raw NetFlow v5 captures — ingest into an on-disk
:class:`FlowStore` of exact, canonically-sorted
:class:`FlowSummary` leaves indexed by vantage and time window, with a
fan-out hierarchy of pre-merged parents above them.  Top-k heavy
hitters, per-key drill-down, cardinality, and cross-vantage
aggregation over "the last N windows" all answer from summaries —
never by replaying traces — with the bit-identity contract that the
answers equal the offline pipeline's (DESIGN §12).

Quickstart::

    from repro.flowdb import FlowStore, QuerySpec, execute

    store = FlowStore("/tmp/flowstore")
    store.ingest_archive("pop-a", "/var/run/archives/pop-a")
    store.merge_up("pop-a")
    answer = execute(store, QuerySpec(op="topk", k=10, last=8))
"""

from repro.flowdb.query import MERGE_MODES, OPS, QuerySpec, execute
from repro.flowdb.sink import FlowStoreSink
from repro.flowdb.store import (
    DEFAULT_FANOUT,
    STORE_SCHEMA,
    FlowStore,
    NodeRef,
    StoreError,
    StoreSpec,
)
from repro.flowdb.summary import UNMEASURED, FlowSummary, merge_summaries

__all__ = [
    "DEFAULT_FANOUT",
    "FlowStore",
    "FlowStoreSink",
    "FlowSummary",
    "MERGE_MODES",
    "NodeRef",
    "OPS",
    "QuerySpec",
    "STORE_SCHEMA",
    "StoreError",
    "StoreSpec",
    "UNMEASURED",
    "execute",
    "merge_summaries",
]
