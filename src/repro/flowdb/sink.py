"""A pipeline/daemon sink that lands rotations in a flow store.

The live handoff from collection to analysis: attach
``{"kind": "store", "params": {"root": ..., "vantage": ...}}`` to a
pipeline or serve spec and every rotation the collector exports
becomes a leaf window of the store, degraded flags included, with the
merge hierarchy rebuilt at close — so ``repro-experiments query``
answers over the run the moment the daemon drains.

The sink buffers in memory and writes only at :meth:`close`, for the
same reason the durable archives finalize late (DESIGN §11): degraded
flags can arrive *after* a rotation was emitted (the supervisor learns
of a worker death when the next export limps in), and a failed run
must leave no half-stored windows — :meth:`abort` simply discards.
"""

from __future__ import annotations

from typing import Any

from repro.stream.records import FlowRecord
from repro.stream.sinks import Sink


class FlowStoreSink(Sink):
    """Feed exported rotations into a :class:`~repro.flowdb.store.FlowStore`.

    Args:
        root: store directory (created on first close if missing).
        vantage: vantage name these rotations are recorded under.
        merge: also rebuild the vantage's parent hierarchy at close
            (on by default — a freshly served store should answer
            top-k from parents immediately).
    """

    kind = "store"

    def __init__(self, root: str, vantage: str = "default", merge: bool = True):
        self.root = str(root)
        self.vantage = str(vantage)
        self.merge = bool(merge)
        self.by_rotation: dict[int, list[FlowRecord]] = {}
        self.windows: list[int] = []
        self._closed = False

    def spec_params(self) -> dict[str, Any]:
        return {"root": self.root, "vantage": self.vantage, "merge": self.merge}

    def emit(self, records: list[FlowRecord], rotation: int, now: float) -> None:
        if records:
            self.by_rotation.setdefault(int(rotation), []).extend(records)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self.by_rotation:
            return
        from repro.flowdb.store import FlowStore

        store = FlowStore(self.root)
        self.windows = store.ingest_rotations(
            self.vantage, self.by_rotation, self.degraded, append=True
        )
        if self.merge:
            store.merge_up(self.vantage)

    def abort(self) -> None:
        """Discard the buffered rotations — a crashed run stores nothing."""
        self._closed = True
        self.by_rotation.clear()

    def summary(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "vantage": self.vantage,
            "rotations": len(self.by_rotation),
            "windows": list(self.windows),
            **self._degraded_fields(),
        }
