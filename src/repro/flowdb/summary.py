"""Vectorized flow summaries: the leaf unit of the flowdb store.

A :class:`FlowSummary` is one window's (or one merged span's) flow
table flattened into sorted numpy arrays — the Flowyager insight
(PAPERS.md) applied to HashFlow exports: once a rotation's records are
canonically sorted by flow key, every query the store answers (top-k,
per-key lookup, cardinality, cross-window/cross-vantage merges)
becomes an array scan or a ``searchsorted``, and merging two summaries
is a concatenate + lexsort + ``reduceat``, never a Python-dict walk.

Counts are exact, not sketched: the store's bit-identity contract
(DESIGN §12) says querying merged summaries returns *exactly* what
replaying the underlying traces offline would, so packets are plain
``int64`` sums and merge semantics mirror :mod:`repro.netwide.merge`
(``sum`` for disjoint observation shares, ``max`` for multi-switch
duplicate sightings).

Octets carry an ``UNMEASURED`` sentinel (−1): pipelines without
measured byte counts export synthesized dOctets, and a merge where any
participant is unmeasured poisons the group to −1 rather than mixing
real and synthetic bytes into a number nobody can trust.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.hashing.mixers import MASK64

#: Octet-count sentinel: this summary never measured byte counts for
#: the flow.  Propagates through merges (any −1 in a group → −1).
UNMEASURED = -1


def _empty_u64() -> np.ndarray:
    return np.empty(0, dtype=np.uint64)


def _empty_i64() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class FlowSummary:
    """One window's flows as canonically-sorted columnar arrays.

    Invariants (enforced by the constructors, assumed everywhere):

    * ``lo``/``hi`` are ``uint64`` halves of the packed 104-bit flow
      key, sorted ascending by the full key (``np.lexsort((lo, hi))``
      order) with no duplicates;
    * ``packets``/``octets`` are ``int64`` aligned with the keys;
      octets may be :data:`UNMEASURED`;
    * ``degraded_windows`` lists the leaf window indices whose content
      a fault made incomplete (propagated from archive manifests, PR 9)
      — empty means every contributing window was whole.

    Attributes:
        lo: low 64 bits of each flow key.
        hi: high 40 bits of each flow key (in a uint64).
        packets: exact packet count per flow.
        octets: exact byte count per flow, or :data:`UNMEASURED`.
        degraded_windows: contributing leaf windows flagged degraded.
    """

    lo: np.ndarray = field(default_factory=_empty_u64)
    hi: np.ndarray = field(default_factory=_empty_u64)
    packets: np.ndarray = field(default_factory=_empty_i64)
    octets: np.ndarray = field(default_factory=_empty_i64)
    degraded_windows: tuple[int, ...] = ()

    def __post_init__(self):
        n = len(self.lo)
        if not (len(self.hi) == len(self.packets) == len(self.octets) == n):
            raise ValueError("summary columns disagree on length")

    def __len__(self) -> int:
        return len(self.lo)

    @property
    def degraded(self) -> bool:
        """True when any contributing window was flagged incomplete."""
        return bool(self.degraded_windows)

    @property
    def total_packets(self) -> int:
        return int(self.packets.sum())

    # -- construction -------------------------------------------------

    @classmethod
    def from_counts(
        cls,
        counts: dict[int, int],
        octets: dict[int, int] | None = None,
        degraded_windows: Iterable[int] = (),
    ) -> "FlowSummary":
        """Build from a ``{key: packets}`` dict (and optional octets)."""
        keys = sorted(counts)
        n = len(keys)
        lo = np.fromiter((k & MASK64 for k in keys), np.uint64, count=n)
        hi = np.fromiter((k >> 64 for k in keys), np.uint64, count=n)
        pkts = np.fromiter((counts[k] for k in keys), np.int64, count=n)
        if octets is None:
            octs = np.full(n, UNMEASURED, dtype=np.int64)
        else:
            octs = np.fromiter(
                (octets.get(k, UNMEASURED) for k in keys), np.int64, count=n
            )
        return cls(lo, hi, pkts, octs, tuple(sorted(set(map(int, degraded_windows)))))

    @classmethod
    def from_records(
        cls, records: Iterable[Any], degraded_windows: Iterable[int] = ()
    ) -> "FlowSummary":
        """Build from record objects exposing ``key``/``packets``/``octets``.

        Accepts :class:`~repro.stream.records.FlowRecord` and
        :class:`~repro.export.netflow_v5.NetFlowV5Record` alike.
        Duplicate keys sum (several exports of one flow in a window);
        a missing/None octet count marks the flow :data:`UNMEASURED`.
        """
        counts: dict[int, int] = {}
        octets: dict[int, int] = {}
        for record in records:
            key = int(record.key)
            counts[key] = counts.get(key, 0) + int(record.packets)
            measured = getattr(record, "octets", None)
            if measured is None or octets.get(key, 0) == UNMEASURED:
                octets[key] = UNMEASURED
            else:
                octets[key] = octets.get(key, 0) + int(measured)
        return cls.from_counts(counts, octets, degraded_windows)

    # -- scalar views (tests, text output) ----------------------------

    def keys(self) -> Iterator[int]:
        """Packed flow keys, ascending."""
        for lo, hi in zip(self.lo.tolist(), self.hi.tolist()):
            yield (hi << 64) | lo

    def counts(self) -> dict[int, int]:
        """``{key: packets}`` — the shape netwide/merge and tests speak."""
        return dict(zip(self.keys(), self.packets.tolist()))

    def octet_counts(self) -> dict[int, int]:
        """``{key: octets}`` with :data:`UNMEASURED` sentinels intact."""
        return dict(zip(self.keys(), self.octets.tolist()))

    # -- queries ------------------------------------------------------

    def lookup(self, key: int) -> tuple[int, int] | None:
        """Exact-key lookup: ``(packets, octets)`` or None.

        Two ``searchsorted`` probes — the hi half bounds a slice, the
        lo half resolves within it; no hashing, no Python scan.
        """
        key = int(key)
        lo = np.uint64(key & MASK64)
        hi = np.uint64(key >> 64)
        left = int(np.searchsorted(self.hi, hi, side="left"))
        right = int(np.searchsorted(self.hi, hi, side="right"))
        if left == right:
            return None
        idx = left + int(np.searchsorted(self.lo[left:right], lo, side="left"))
        if idx >= right or self.lo[idx] != lo:
            return None
        return int(self.packets[idx]), int(self.octets[idx])

    def top_k(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` heaviest flows as ``(key, packets)``, deterministic.

        Order is descending packets with ascending key breaking ties —
        exactly ``sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))``,
        so CLI output and offline ground truth compare bit-for-bit.
        A partition pass bounds the candidate set before the full sort
        touches only ~k rows.
        """
        n = len(self)
        k = int(k)
        if k <= 0 or n == 0:
            return []
        if k < n:
            threshold = np.partition(self.packets, n - k)[n - k]
            candidates = np.flatnonzero(self.packets >= threshold)
        else:
            candidates = np.arange(n)
        order = np.lexsort(
            (self.lo[candidates], self.hi[candidates], -self.packets[candidates])
        )
        chosen = candidates[order[:k]]
        keys_hi = self.hi[chosen].tolist()
        keys_lo = self.lo[chosen].tolist()
        pkts = self.packets[chosen].tolist()
        return [
            ((hi << 64) | lo, int(p)) for lo, hi, p in zip(keys_lo, keys_hi, pkts)
        ]

    def cardinality(self) -> int:
        """Distinct flows (exact — the summary is deduplicated)."""
        return len(self)


def merge_summaries(
    summaries: Sequence[FlowSummary], mode: str = "sum"
) -> FlowSummary:
    """Merge summaries into one, exactly.

    Args:
        summaries: any number of summaries (zero → empty summary).
        mode: ``"sum"`` for disjoint observation shares (windows of one
            vantage, sharded workers) or ``"max"`` for multi-vantage
            duplicate sightings — the two semantics of
            :mod:`repro.netwide.merge`, vectorized.

    Packet counts group by flow key via one lexsort + ``reduceat``;
    octets follow the same grouping but any :data:`UNMEASURED`
    participant poisons its group.  Degraded-window provenance is the
    union of the inputs'.
    """
    if mode not in ("sum", "max"):
        raise ValueError(f"unknown merge mode {mode!r}; use 'sum' or 'max'")
    summaries = [s for s in summaries if s is not None]
    degraded: set[int] = set()
    for summary in summaries:
        degraded.update(summary.degraded_windows)
    nonempty = [s for s in summaries if len(s)]
    if not nonempty:
        return FlowSummary(degraded_windows=tuple(sorted(degraded)))
    if len(nonempty) == 1:
        only = nonempty[0]
        return FlowSummary(
            only.lo, only.hi, only.packets, only.octets, tuple(sorted(degraded))
        )
    lo = np.concatenate([s.lo for s in nonempty])
    hi = np.concatenate([s.hi for s in nonempty])
    packets = np.concatenate([s.packets for s in nonempty])
    octets = np.concatenate([s.octets for s in nonempty])
    order = np.lexsort((lo, hi))
    lo, hi, packets, octets = lo[order], hi[order], packets[order], octets[order]
    boundary = np.empty(len(lo), dtype=bool)
    boundary[0] = True
    np.logical_or(lo[1:] != lo[:-1], hi[1:] != hi[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    if mode == "sum":
        merged_packets = np.add.reduceat(packets, starts)
        merged_octets = np.add.reduceat(octets, starts)
    else:
        merged_packets = np.maximum.reduceat(packets, starts)
        merged_octets = np.maximum.reduceat(octets, starts)
    # Any unmeasured participant poisons its group's octet count: the
    # group minimum is UNMEASURED exactly when one member is.
    poisoned = np.minimum.reduceat(octets, starts) == UNMEASURED
    merged_octets[poisoned] = UNMEASURED
    return FlowSummary(
        lo[starts],
        hi[starts],
        merged_packets,
        merged_octets,
        tuple(sorted(degraded)),
    )
