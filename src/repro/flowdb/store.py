"""The on-disk flow store: summaries indexed by vantage × time window.

Layout (DESIGN §12)::

    <root>/
      STORE.json                      # frozen StoreSpec (schema, fanout)
      vantages/<vantage>/
        L0/w00000000.flow             # leaf: one rotation window
        L0/w00000003.flow             # leaves are sparse (empty windows
        L1/w00000000.flow             #   export nothing, PR 5 rotation)
        L2/w00000000.flow             # parents: fanout**level windows

Every ``.flow`` file is an atomically-written (write-then-rename +
fsync, :mod:`repro.stream.durable`) numpy ``.npz`` holding the four
:class:`~repro.flowdb.summary.FlowSummary` columns plus a JSON meta
blob naming exactly which leaf windows the node covers and which of
them were degraded.  A parent node is *derived* data: it is the exact
:func:`~repro.flowdb.summary.merge_summaries` (``sum`` — windows of
one vantage are disjoint in time) of the leaves it names, so queries
answer from the highest node whose coverage matches the request and
never re-read children (the leaf files can even be deleted after
:meth:`FlowStore.merge_up`, as cold-tiering would).

Freshness is structural, not timestamped: a leaf ingested *after* a
parent was built breaks the parent's coverage-equality check in
:meth:`FlowStore.plan`, so the planner transparently falls back to
finer nodes until the next ``merge_up``.
"""

from __future__ import annotations

import io
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.flowdb.summary import FlowSummary, merge_summaries
from repro.specs import SpecError
from repro.stream.durable import atomic_write_bytes, read_archive

#: Store layout version; readers reject stores written by a different one.
STORE_SCHEMA = 1

#: Name of the store's spec file at the root.
STORE_SPEC_NAME = "STORE.json"

#: Default merge fan-out: windows per parent at each level step.
DEFAULT_FANOUT = 8

#: Node file naming: ``w<start:08d>.flow``.
_NODE_FILE_RE = re.compile(r"^w(\d{8,})\.flow$")

#: Vantage names must be path-safe single components.
_VANTAGE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

_SPEC_FIELDS = {"schema", "fanout"}


class StoreError(ValueError):
    """A flow store failed validation or an operation was inconsistent."""


@dataclass(frozen=True)
class StoreSpec:
    """Frozen, JSON-round-trippable store configuration.

    Attributes:
        fanout: leaf windows per level-1 parent; each further level
            multiplies coverage by ``fanout`` again.
    """

    fanout: int = DEFAULT_FANOUT

    def __post_init__(self):
        if not isinstance(self.fanout, int) or self.fanout < 2:
            raise SpecError(f"fanout must be an int >= 2, got {self.fanout!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"schema": STORE_SCHEMA, "fanout": self.fanout}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"not a store spec mapping: {data!r}")
        extra = set(data) - _SPEC_FIELDS
        if extra:
            raise SpecError(f"unknown store spec fields {sorted(extra)} in {data!r}")
        schema = data.get("schema", STORE_SCHEMA)
        if schema != STORE_SCHEMA:
            raise SpecError(
                f"store schema {schema!r} is not this reader's {STORE_SCHEMA}"
            )
        return cls(fanout=data.get("fanout", DEFAULT_FANOUT))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StoreSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid store spec JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclass(frozen=True)
class NodeRef:
    """One stored summary node: where it lives and what it covers."""

    vantage: str
    level: int
    start: int
    windows: tuple[int, ...]
    degraded_windows: tuple[int, ...]
    count: int
    packets: int

    @property
    def span(self) -> int:
        """Leaf-window indices this node's slot may cover (not all
        need exist — empty windows export nothing)."""
        return self.windows[-1] - self.windows[0] + 1 if self.windows else 0


def _check_vantage(vantage: str) -> str:
    vantage = str(vantage)
    if not _VANTAGE_RE.match(vantage):
        raise StoreError(
            f"vantage {vantage!r} is not a path-safe name "
            "(letters/digits/._- only, no leading dot)"
        )
    return vantage


def _encode_node(summary: FlowSummary, meta: dict[str, Any]) -> bytes:
    buffer = io.BytesIO()
    meta_blob = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez(
        buffer,
        lo=summary.lo,
        hi=summary.hi,
        packets=summary.packets,
        octets=summary.octets,
        meta=meta_blob,
    )
    return buffer.getvalue()


def _read_meta(path: Path) -> dict[str, Any]:
    """Read only a node's JSON meta blob (npz members load lazily, so
    the summary arrays stay untouched on disk)."""
    try:
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
    except (OSError, KeyError, ValueError) as exc:
        raise StoreError(f"unreadable store node {path}: {exc}") from exc
    if meta.get("schema") != STORE_SCHEMA:
        raise StoreError(
            f"store node {path} has schema {meta.get('schema')!r}, "
            f"not {STORE_SCHEMA}"
        )
    return meta


def _decode_node(path: Path) -> tuple[FlowSummary, dict[str, Any]]:
    try:
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
            summary = FlowSummary(
                lo=npz["lo"].astype(np.uint64, copy=False),
                hi=npz["hi"].astype(np.uint64, copy=False),
                packets=npz["packets"].astype(np.int64, copy=False),
                octets=npz["octets"].astype(np.int64, copy=False),
                degraded_windows=tuple(meta.get("degraded_windows", ())),
            )
    except (OSError, KeyError, ValueError) as exc:
        raise StoreError(f"unreadable store node {path}: {exc}") from exc
    if meta.get("schema") != STORE_SCHEMA:
        raise StoreError(
            f"store node {path} has schema {meta.get('schema')!r}, "
            f"not {STORE_SCHEMA}"
        )
    return summary, meta


class FlowStore:
    """An open vantage × time-window summary store rooted at a directory.

    Args:
        root: store directory.  An existing ``STORE.json`` is validated
            against this reader's schema; a missing one is written
            (open-or-create), so sinks and the CLI share one entry
            point.
        spec: configuration for a store being created; must not
            contradict an existing ``STORE.json``.
    """

    def __init__(self, root, spec: StoreSpec | None = None):
        self.root = Path(root)
        spec_path = self.root / STORE_SPEC_NAME
        if spec_path.exists():
            existing = StoreSpec.from_json(spec_path.read_text(encoding="utf-8"))
            if spec is not None and spec != existing:
                raise StoreError(
                    f"store at {self.root} was created with {existing.to_dict()}; "
                    f"refusing to reopen with {spec.to_dict()}"
                )
            self.spec = existing
        else:
            self.spec = spec or StoreSpec()
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(spec_path, self.spec.to_json().encode("utf-8"))

    # -- layout helpers ------------------------------------------------

    def _vantage_dir(self, vantage: str) -> Path:
        return self.root / "vantages" / _check_vantage(vantage)

    def _node_path(self, vantage: str, level: int, start: int) -> Path:
        return self._vantage_dir(vantage) / f"L{int(level)}" / f"w{int(start):08d}.flow"

    def vantages(self) -> list[str]:
        """Vantage names present in the store, sorted."""
        base = self.root / "vantages"
        if not base.is_dir():
            return []
        return sorted(p.name for p in base.iterdir() if p.is_dir())

    def levels(self, vantage: str) -> list[int]:
        """Hierarchy levels present for a vantage, ascending (0 = leaf)."""
        base = self._vantage_dir(vantage)
        if not base.is_dir():
            return []
        levels = []
        for path in base.iterdir():
            if path.is_dir() and path.name.startswith("L"):
                try:
                    levels.append(int(path.name[1:]))
                except ValueError:
                    continue
        return sorted(levels)

    def nodes(self, vantage: str, level: int) -> list[NodeRef]:
        """Node refs at one level, ascending start (meta only — the
        summary arrays are not read)."""
        directory = self._vantage_dir(vantage) / f"L{int(level)}"
        if not directory.is_dir():
            return []
        refs = []
        for path in sorted(directory.iterdir()):
            match = _NODE_FILE_RE.match(path.name)
            if match is None:
                continue
            meta = _read_meta(path)
            refs.append(
                NodeRef(
                    vantage=str(vantage),
                    level=int(level),
                    start=int(match.group(1)),
                    windows=tuple(meta["windows"]),
                    degraded_windows=tuple(meta.get("degraded_windows", ())),
                    count=int(meta.get("count", 0)),
                    packets=int(meta.get("packets", 0)),
                )
            )
        return refs

    def leaf_windows(self, vantage: str) -> list[int]:
        """Every leaf window index with data, from leaves *or* parents.

        Parents name the leaves they merged, so a store whose L0 files
        were tiered away (deleted after :meth:`merge_up`) still knows —
        and can answer for — its full window set.
        """
        windows: set[int] = set()
        for level in self.levels(vantage):
            for ref in self.nodes(vantage, level):
                windows.update(ref.windows)
        return sorted(windows)

    def load_node(self, vantage: str, level: int, start: int) -> FlowSummary:
        """Read one node's summary arrays."""
        summary, _ = _decode_node(self._node_path(vantage, level, start))
        return summary

    # -- ingest --------------------------------------------------------

    def _write_leaf(
        self, vantage: str, window: int, summary: FlowSummary
    ) -> None:
        path = self._node_path(vantage, 0, window)
        if path.exists():
            raise StoreError(
                f"window {window} already ingested for vantage {vantage!r} "
                "(use append=True to offset a new run past existing windows)"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": STORE_SCHEMA,
            "vantage": str(vantage),
            "level": 0,
            "start": int(window),
            "windows": [int(window)],
            "degraded_windows": sorted(summary.degraded_windows),
            "count": len(summary),
            "packets": summary.total_packets,
        }
        atomic_write_bytes(path, _encode_node(summary, meta))

    def _append_base(self, vantage: str) -> int:
        existing = self.leaf_windows(vantage)
        return existing[-1] + 1 if existing else 0

    def ingest_rotations(
        self,
        vantage: str,
        by_rotation: Mapping[int, Iterable[Any]],
        degraded: Iterable[int] = (),
        append: bool = False,
    ) -> list[int]:
        """Ingest per-rotation record lists as leaf windows.

        The handoff from the streaming side: ``by_rotation`` is exactly
        the shape of :attr:`~repro.stream.sinks.ArchiveSink.by_rotation`
        (rotation index → that window's exported records), ``degraded``
        the sink's flagged rotations.

        Args:
            vantage: which vantage observed these rotations.
            by_rotation: rotation index → iterable of record objects
                (``key``/``packets``/``octets``).
            degraded: rotation indices whose content is incomplete.
            append: shift incoming rotation indices past the vantage's
                existing windows (for successive runs into one store);
                without it a window collision is an error.

        Returns:
            The leaf window indices written, ascending.
        """
        _check_vantage(vantage)
        degraded = {int(r) for r in degraded}
        base = self._append_base(vantage) if append else 0
        rotations = sorted(int(r) for r in by_rotation)
        offset = base - rotations[0] if (append and rotations) else base
        written = []
        for rotation in rotations:
            window = rotation + offset
            tainted = (rotation in degraded)
            summary = FlowSummary.from_records(
                by_rotation[rotation],
                degraded_windows=(window,) if tainted else (),
            )
            self._write_leaf(vantage, window, summary)
            written.append(window)
        return written

    def ingest_archive(
        self, vantage: str, directory, append: bool = False
    ) -> list[int]:
        """Ingest a durable rotation archive (PR 9 sinks) as leaf windows.

        The archive is validated end to end
        (:func:`repro.stream.durable.read_archive`) and its per-rotation
        degraded flags become per-window taint — the propagation the
        manifest format exists for.  ``.nfv5`` archives decode through
        the v5 codec (octets preserved); ``.jsonl``/``.csv`` archives
        through the text-sink row format.

        Returns:
            The leaf window indices written, ascending.

        Raises:
            ArchiveError: if the directory is not a whole archive.
            StoreError: on window collisions (without ``append``) or an
                archive suffix no decoder understands.
        """
        view = read_archive(directory)
        decoder = _PAYLOAD_DECODERS.get(view.suffix)
        if decoder is None:
            raise StoreError(
                f"no decoder for archive suffix {view.suffix!r}; "
                f"understood: {', '.join(sorted(_PAYLOAD_DECODERS))}"
            )
        by_rotation: dict[int, list[Any]] = {}
        degraded: set[int] = set()
        for rotation, payloads, tainted in view.rotations():
            records: list[Any] = []
            for payload in payloads:
                records.extend(decoder(payload))
            by_rotation[rotation] = records
            if tainted:
                degraded.add(rotation)
        if not by_rotation:
            return []
        return self.ingest_rotations(vantage, by_rotation, degraded, append)

    def ingest_netflow_file(
        self, vantage: str, path, append: bool = False
    ) -> list[int]:
        """Ingest a raw concatenated NetFlow v5 capture as one window.

        For v5 files that did not come from a rotation archive (a
        single export dump, an ``nfcapd``-style capture): the whole
        file becomes one leaf window, since the stream itself carries
        no rotation boundaries.
        """
        data = Path(path).read_bytes()
        records = _decode_nfv5(data)
        window = self._append_base(vantage) if append else 0
        summary = FlowSummary.from_records(records)
        self._write_leaf(vantage, window, summary)
        return [window]

    # -- hierarchy -----------------------------------------------------

    def merge_up(self, vantage: str) -> list[NodeRef]:
        """(Re)build parent levels for a vantage; returns written refs.

        Level ``L`` groups level ``L−1`` nodes by aligned spans of
        ``fanout**L`` leaf windows and writes one exact-sum merge per
        group with ≥ 2 children (a lone child gains nothing from a
        copy).  Existing parents are rewritten only when their coverage
        changed, so re-running after new ingests is cheap and
        idempotent.  Building stops at the first level that would hold
        fewer than two nodes.
        """
        _check_vantage(vantage)
        fanout = self.spec.fanout
        written: list[NodeRef] = []
        level = 1
        while True:
            children = self.nodes(vantage, level - 1)
            if len(children) < 2:
                break
            span = fanout ** level
            groups: dict[int, list[NodeRef]] = {}
            for child in children:
                groups.setdefault((child.start // span) * span, []).append(child)
            made_any = False
            for start, members in sorted(groups.items()):
                if len(members) < 2:
                    continue
                windows = sorted({w for m in members for w in m.windows})
                path = self._node_path(vantage, level, start)
                if path.exists():
                    meta = _read_meta(path)
                    if list(meta["windows"]) == windows:
                        made_any = True
                        continue
                merged = merge_summaries(
                    [
                        self.load_node(vantage, member.level, member.start)
                        for member in members
                    ],
                    mode="sum",
                )
                meta = {
                    "schema": STORE_SCHEMA,
                    "vantage": str(vantage),
                    "level": level,
                    "start": int(start),
                    "windows": windows,
                    "degraded_windows": sorted(merged.degraded_windows),
                    "count": len(merged),
                    "packets": merged.total_packets,
                }
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_bytes(path, _encode_node(merged, meta))
                written.append(
                    NodeRef(
                        vantage=str(vantage),
                        level=level,
                        start=int(start),
                        windows=tuple(windows),
                        degraded_windows=tuple(sorted(merged.degraded_windows)),
                        count=len(merged),
                        packets=merged.total_packets,
                    )
                )
                made_any = True
            if not made_any:
                break
            level += 1
        return written

    # -- planning / reading --------------------------------------------

    def plan(self, vantage: str, windows: Iterable[int]) -> list[NodeRef]:
        """Choose the fewest, highest nodes that exactly cover ``windows``.

        Levels are walked top-down; a node is taken when the leaf
        windows it covers are precisely the still-uncovered targets
        inside its span — the equality that both keeps parents exact
        (never answering with windows the query excluded) and detects
        staleness (a leaf ingested after the parent was built falls
        through to finer nodes).  Chosen parents are answered from
        their own arrays; children are **not** re-read.

        Raises:
            StoreError: when some target window exists in no node.
        """
        target = {int(w) for w in windows}
        if not target:
            return []
        fanout = self.spec.fanout
        chosen: list[NodeRef] = []
        for level in sorted(self.levels(vantage), reverse=True):
            span = fanout ** level if level else 1
            for ref in self.nodes(vantage, level):
                covered = set(ref.windows)
                in_span = {w for w in target if ref.start <= w < ref.start + span}
                if covered and covered == in_span:
                    chosen.append(ref)
                    target -= covered
            if not target:
                break
        if target:
            raise StoreError(
                f"no stored summary covers windows {sorted(target)} "
                f"for vantage {vantage!r}"
            )
        return sorted(chosen, key=lambda ref: (ref.start, ref.level))

    def summarize(self, vantage: str, windows: Iterable[int]) -> FlowSummary:
        """Exact merged summary of a vantage over ``windows`` (sum —
        windows of one vantage are disjoint in time)."""
        refs = self.plan(vantage, windows)
        return merge_summaries(
            [self.load_node(vantage, ref.level, ref.start) for ref in refs],
            mode="sum",
        )

    def describe(self) -> dict[str, Any]:
        """Store-wide inventory for ``query ls``: per-vantage levels,
        node/window counts, packet totals, degraded windows."""
        out: dict[str, Any] = {"root": str(self.root), "fanout": self.spec.fanout}
        vantages = {}
        for vantage in self.vantages():
            levels = {}
            degraded: set[int] = set()
            for level in self.levels(vantage):
                refs = self.nodes(vantage, level)
                levels[level] = {
                    "nodes": len(refs),
                    "flows": sum(ref.count for ref in refs),
                    "packets": sum(ref.packets for ref in refs),
                }
                for ref in refs:
                    degraded.update(ref.degraded_windows)
            vantages[vantage] = {
                "windows": self.leaf_windows(vantage),
                "levels": levels,
                "degraded_windows": sorted(degraded),
            }
        out["vantages"] = vantages
        return out


# ---------------------------------------------------------------------
# Archive payload decoders (suffix → records with key/packets/octets)
# ---------------------------------------------------------------------

def _decode_nfv5(payload: bytes) -> list[Any]:
    from repro.export.netflow_v5 import parse_stream_records, split_stream

    return parse_stream_records(iter(split_stream(payload)))


def _row_record(row: Mapping[str, Any]) -> Any:
    from repro.flow.key import pack_key, parse_ip
    from repro.stream.records import FlowRecord

    octets = row.get("octets")
    return FlowRecord(
        key=pack_key(
            parse_ip(str(row["src_ip"])),
            parse_ip(str(row["dst_ip"])),
            int(row["src_port"]),
            int(row["dst_port"]),
            int(row["proto"]),
        ),
        packets=int(row["packets"]),
        octets=None if octets in (None, "", "None") else int(octets),
    )


def _decode_jsonl(payload: bytes) -> list[Any]:
    return [
        _row_record(json.loads(line))
        for line in payload.decode("utf-8").splitlines()
        if line.strip()
    ]


def _decode_csv(payload: bytes) -> list[Any]:
    import csv as _csv

    from repro.stream.sinks import TextSink

    reader = _csv.reader(io.StringIO(payload.decode("utf-8")))
    header = next(reader, None)
    if header != list(TextSink.CSV_COLUMNS):
        raise StoreError(f"unexpected archive CSV header: {header}")
    return [_row_record(dict(zip(header, row))) for row in reader if row]


_PAYLOAD_DECODERS = {
    ".nfv5": _decode_nfv5,
    ".jsonl": _decode_jsonl,
    ".csv": _decode_csv,
}
