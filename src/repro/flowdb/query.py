"""Query planning and execution over a :class:`~repro.flowdb.store.FlowStore`.

A :class:`QuerySpec` is the frozen, JSON-round-trippable description of
one question — *which* operation (top-k / lookup / cardinality), over
*which* vantages, across *which* window range — in the same currency
as every other spec in the repo, so queries can live in config files
and CI assertions.  :func:`execute` resolves it against a store:

1. per vantage, the requested windows are covered by the fewest,
   highest hierarchy nodes (:meth:`FlowStore.plan`) and merged with
   ``sum`` — one vantage's windows are disjoint shares of time;
2. vantages merge with the spec's cross-vantage mode — ``max`` by
   default (several switches sighting the *same* flow, the
   :func:`repro.netwide.merge.merge_max` convention) or ``sum`` for
   genuinely disjoint vantages;
3. the operation runs as a vectorized scan of the merged summary.

Every answer carries its provenance: which windows per vantage it
covered and which of those were degraded (a fault made their content
incomplete, PR 9) — a number computed over a tainted window says so
instead of pretending.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.flowdb.store import FlowStore, StoreError
from repro.flowdb.summary import UNMEASURED, FlowSummary, merge_summaries
from repro.specs import SpecError

#: Query operations :func:`execute` understands.
OPS = ("topk", "lookup", "cardinality")

#: Cross-vantage merge modes (see :mod:`repro.netwide.merge`).
MERGE_MODES = ("max", "sum")

_FIELDS = {"op", "k", "key", "vantages", "last", "start", "stop", "merge"}


@dataclass(frozen=True, eq=False)
class QuerySpec:
    """One frozen query: operation × vantage set × window range.

    Attributes:
        op: ``"topk"`` / ``"lookup"`` / ``"cardinality"``.
        k: result size for ``topk``.
        key: packed flow key for ``lookup``.
        vantages: vantage names to cover; empty = every vantage.
        last: answer over the most recent N windows (per vantage).
        start: lowest window index included (with ``stop``; ignored
            when ``last`` is set).
        stop: highest window index included, inclusive.
        merge: cross-vantage merge mode, ``"max"`` or ``"sum"``.
    """

    op: str = "topk"
    k: int = 10
    key: int | None = None
    vantages: tuple = ()
    last: int | None = None
    start: int | None = None
    stop: int | None = None
    merge: str = "max"

    def __post_init__(self):
        if self.op not in OPS:
            raise SpecError(f"unknown query op {self.op!r}; one of {OPS}")
        if self.merge not in MERGE_MODES:
            raise SpecError(
                f"unknown merge mode {self.merge!r}; one of {MERGE_MODES}"
            )
        object.__setattr__(self, "k", int(self.k))
        if self.op == "topk" and self.k <= 0:
            raise SpecError(f"topk needs k >= 1, got {self.k}")
        if self.op == "lookup":
            if self.key is None:
                raise SpecError("lookup needs a flow key")
            object.__setattr__(self, "key", int(self.key))
        object.__setattr__(
            self, "vantages", tuple(str(v) for v in self.vantages)
        )
        for name in ("last", "start", "stop"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        if self.last is not None and self.last <= 0:
            raise SpecError(f"last must be >= 1, got {self.last}")
        if (
            self.start is not None
            and self.stop is not None
            and self.stop < self.start
        ):
            raise SpecError(f"window range [{self.start}, {self.stop}] is empty")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "k": self.k,
            "key": self.key,
            "vantages": list(self.vantages),
            "last": self.last,
            "start": self.start,
            "stop": self.stop,
            "merge": self.merge,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"not a query spec mapping: {data!r}")
        extra = set(data) - _FIELDS
        if extra:
            raise SpecError(f"unknown query spec fields {sorted(extra)} in {data!r}")
        kwargs = {k: data[k] for k in _FIELDS & set(data)}
        kwargs["vantages"] = tuple(kwargs.get("vantages", ()))
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SpecError(f"invalid query spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def over(self, **overrides: Any) -> "QuerySpec":
        """A new spec with some fields replaced."""
        return replace(self, **overrides)


def _select_windows(store: FlowStore, vantage: str, spec: QuerySpec) -> list[int]:
    """The vantage's existing windows the spec's range selects."""
    existing = store.leaf_windows(vantage)
    if spec.last is not None:
        return existing[-spec.last:]
    lo = spec.start if spec.start is not None else (existing[0] if existing else 0)
    hi = spec.stop if spec.stop is not None else (existing[-1] if existing else -1)
    return [w for w in existing if lo <= w <= hi]


def _flow_text(key: int) -> str:
    from repro.flow.key import format_ip, unpack_key

    src_ip, dst_ip, src_port, dst_port, proto = unpack_key(key)
    return f"{format_ip(src_ip)}:{src_port}-{format_ip(dst_ip)}:{dst_port}/{proto}"


def execute(store: FlowStore, spec: QuerySpec) -> dict[str, Any]:
    """Run one query against a store; returns a JSON-native result.

    Every result dict carries ``op``, ``merge``, ``vantages`` (name →
    ``{"windows": [...], "degraded_windows": [...], "nodes": N}``) and
    ``degraded`` (True when any covered window was tainted).  Per-op
    payload:

    * ``topk`` — ``results``: ``[{"key", "flow", "packets"}, ...]``,
      descending packets, ties broken by ascending key (the exact
      ground-truth order tests replay offline).
    * ``lookup`` — total ``packets``/``octets`` for the key, the
      per-vantage split, and a per-window ``series`` drill-down for
      every selected window still answerable at leaf grain.
    * ``cardinality`` — distinct flow count of the merged summary.

    Raises:
        StoreError: unknown vantages or uncoverable windows.
    """
    vantages = list(spec.vantages) or store.vantages()
    if not vantages:
        raise StoreError(f"store at {store.root} holds no vantages")
    unknown = [v for v in vantages if v not in store.vantages()]
    if unknown:
        raise StoreError(
            f"unknown vantages {unknown}; store holds {store.vantages()}"
        )

    per_vantage: dict[str, FlowSummary] = {}
    provenance: dict[str, Any] = {}
    for vantage in vantages:
        windows = _select_windows(store, vantage, spec)
        refs = store.plan(vantage, windows)
        summary = merge_summaries(
            [store.load_node(vantage, ref.level, ref.start) for ref in refs],
            mode="sum",
        )
        per_vantage[vantage] = summary
        provenance[vantage] = {
            "windows": windows,
            "degraded_windows": sorted(summary.degraded_windows),
            "nodes": len(refs),
            "levels": sorted({ref.level for ref in refs}),
        }

    merged = merge_summaries(list(per_vantage.values()), mode=spec.merge)
    result: dict[str, Any] = {
        "op": spec.op,
        "merge": spec.merge,
        "vantages": provenance,
        "degraded": merged.degraded,
    }

    if spec.op == "topk":
        result["results"] = [
            {"key": key, "flow": _flow_text(key), "packets": packets}
            for key, packets in merged.top_k(spec.k)
        ]
    elif spec.op == "lookup":
        hit = merged.lookup(spec.key)
        result["key"] = spec.key
        result["flow"] = _flow_text(spec.key)
        result["found"] = hit is not None
        result["packets"] = hit[0] if hit else 0
        result["octets"] = (
            hit[1] if hit is not None and hit[1] != UNMEASURED else None
        )
        result["by_vantage"] = {}
        for vantage in vantages:
            vhit = per_vantage[vantage].lookup(spec.key)
            series = []
            for window in provenance[vantage]["windows"]:
                try:
                    leaf = store.load_node(vantage, 0, window)
                except StoreError:
                    continue  # leaf tiered away; totals still exact above
                whit = leaf.lookup(spec.key)
                if whit is not None:
                    series.append({"window": window, "packets": whit[0]})
            result["by_vantage"][vantage] = {
                "packets": vhit[0] if vhit else 0,
                "series": series,
            }
    else:  # cardinality
        result["flows"] = merged.cardinality()
        result["by_vantage"] = {
            vantage: per_vantage[vantage].cardinality() for vantage in vantages
        }
    return result
