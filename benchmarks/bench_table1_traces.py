"""Table I: traces used for evaluation (max / mean flow size).

Regenerates the paper's trace-statistics table from the calibrated
synthetic profiles and checks the calibration against the published
numbers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import table1


def test_table1(benchmark, emit):
    result = run_once(benchmark, table1)
    emit(result)
    rows = {r["trace"]: r for r in result.rows}
    assert set(rows) == {"caida", "campus", "isp1", "isp2"}
    for name, row in rows.items():
        # Mean flow size within 35% of Table I (heavy-tail sample noise).
        assert row["mean_flow_size"] == pytest.approx(row["paper_mean"], rel=0.35), name
        assert row["max_flow_size"] <= row["paper_max"], name
    # The ordering of traffic intensity from the paper holds.
    assert rows["campus"]["mean_flow_size"] > rows["isp1"]["mean_flow_size"]
    assert rows["isp1"]["mean_flow_size"] > rows["isp2"]["mean_flow_size"]
