"""Arrival-pattern robustness (extension; not a paper figure).

The paper evaluates on real traces with real arrival patterns; our
default workloads use a uniform interleave.  This bench re-runs the
core comparison under *temporal* (bursty) arrivals — flows live in
bounded bursts, so eviction-based designs feel churn the uniform mix
hides — and checks the paper's conclusions survive the change.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR
from repro.analysis.metrics import flow_set_coverage
from repro.specs import build_evaluated
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, Workload
from repro.traces.profiles import CAMPUS

MEMORY = 96 * 1024
N_FLOWS = 12_000


def test_interleave_robustness(benchmark, emit):
    result = ExperimentResult(
        experiment_id="interleave_robustness",
        title="Uniform vs temporal packet arrivals (Campus workload)",
        columns=["interleave", "algorithm", "fsc", "size_are"],
        params={"memory_bytes": MEMORY, "n_flows": N_FLOWS},
    )

    def run():
        for mode in ("uniform", "temporal"):
            trace = CAMPUS.generate(n_flows=N_FLOWS, seed=17, interleave=mode)
            workload = Workload(trace)
            for name, collector in build_evaluated(MEMORY, seed=4).items():
                workload.feed(collector)
                result.add_row(
                    interleave=mode,
                    algorithm=name,
                    fsc=round(
                        flow_set_coverage(collector.records(), workload.true_sizes), 4
                    ),
                    # Batched query sweep over the cached truth batch.
                    size_are=round(workload.size_are(collector), 4),
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    # The paper's conclusion must hold under both arrival patterns.
    for mode in ("uniform", "temporal"):
        rows = {r["algorithm"]: r for r in result.filter_rows(interleave=mode)}
        for algo in ("HashPipe", "ElasticSketch", "FlowRadar"):
            assert rows["HashFlow"]["size_are"] <= rows[algo]["size_are"] + 0.02, (
                mode,
                algo,
            )
        assert rows["HashFlow"]["fsc"] >= rows["ElasticSketch"]["fsc"], mode
