"""Fig. 4: flow-size estimation ARE vs main-table pipeline depth.

Paper: increasing d from 1 to 3 cuts the ARE by ~3x; 3 -> 4 adds only a
minor improvement, so d = 3 is the default.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig4
from repro.experiments.report import pivot


def test_fig4(benchmark, emit):
    result = run_once(benchmark, fig4)
    emit(result)
    series = pivot(result, index="depth", series="trace", value="are")
    for trace, by_depth in series.items():
        # Deeper probing reduces estimation error.
        assert by_depth[3] < by_depth[1], trace
        # Diminishing returns: the d 1->3 gain dwarfs the 3->4 gain.
        gain_13 = by_depth[1] - by_depth[3]
        gain_34 = by_depth[3] - by_depth[4]
        assert gain_13 >= gain_34, trace
