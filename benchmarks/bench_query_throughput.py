"""Point-query throughput of every collector: scalar vs batched.

Not a paper figure: the query-side twin of ``bench_update_throughput``.
Regenerating the paper's evaluation queries the same flow set against
every algorithm at every memory point (§IV), so the read path's speed
matters as much as the update path's.  Two paths are measured per
collector (see DESIGN.md §2b):

* **scalar** — one ``query(key)`` call per true flow, the seed path;
* **batched** — one ``query_batch`` call over the workload's cached
  truth batch, which engages the vectorized batch-query engine
  (precomputed hash rows, dict-gather, masked selects).

``test_query_speedup_recorded`` persists the scalar/batched ratios
under ``benchmarks/results/`` — a rendered table plus
``BENCH_query_throughput.json`` for the perf trajectory — and fails if
the engine regresses below the floor.  The workload defaults to the
1M-flow sweep the acceptance numbers quote; CI smoke runs shrink it
through ``QUERY_BENCH_FLOWS``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, update_headline
from repro.native import native_available
from repro.specs import build, build_evaluated
from repro.experiments.report import save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.sketches.countmin import CountMinSketch
from repro.traces.profiles import CAIDA

#: Flows in the query sweep (= distinct keys queried per path).
N_FLOWS = int(os.environ.get("QUERY_BENCH_FLOWS", "1000000"))

#: Memory budget growing with the flow count so the table load factor
#: (flows per cell) matches the update bench's 4000-flow / 64 KB setup.
MEMORY = max(64 * 1024, N_FLOWS * 16)

#: Minimum acceptable batched/scalar query speedup for HashFlow and
#: count-min.  Measured well above 4x at the default 1M-flow sweep; the
#: default floor only guards against outright regressions (< 1x) so
#: small CI workloads, where fixed numpy call overhead weighs more, do
#: not flake.
SPEEDUP_FLOOR = float(os.environ.get("QUERY_SPEEDUP_FLOOR", "1.0"))

JSON_PATH = RESULTS_DIR / "BENCH_query_throughput.json"


@pytest.fixture(scope="module")
def workload():
    return make_workload(CAIDA, N_FLOWS, seed=1)


def _best_of(n_rounds, run):
    best = float("inf")
    for _ in range(n_rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(collector, workload) -> tuple[float, float]:
    """Best-of-3 scalar and batched sweep times over all true flows."""
    truth_keys = workload.truth_batch.keys

    def run_scalar():
        query = collector.query
        for key in truth_keys:
            query(key)

    def run_batched():
        collector.query_batch(workload.truth_batch)

    scalar = _best_of(3, run_scalar)
    batched = _best_of(3, run_batched)
    # The speedup only counts if the answers are identical; spot-check a
    # slice here (tests/test_query_batch.py enforces the full contract).
    sample = truth_keys[:512]
    assert collector.query_batch(sample).tolist() == [
        collector.query(k) for k in sample
    ]
    return scalar, batched


def test_query_speedup_recorded(workload):
    """Record the batched/scalar speedup of every batched query path."""
    n = len(workload.truth_batch)
    result = ExperimentResult(
        experiment_id="query_throughput_batch_speedup",
        title="Batched vs scalar point-query throughput (best of 3)",
        columns=["algorithm", "scalar_mqps", "batched_mqps", "speedup"],
        params={"memory_bytes": MEMORY, "n_flows": n},
        notes="scalar = per-flow query(); batched = one query_batch() "
        "sweep over the workload's cached truth batch.",
    )
    speedups: dict[str, float] = {}

    collectors = build_evaluated(MEMORY, seed=0)
    collectors["CountMinSketch"] = CountMinSketch(
        width=MEMORY // 4, depth=3, counter_bits=8, seed=0
    )
    for algo, collector in collectors.items():
        if hasattr(collector, "process_all"):
            workload.feed(collector)
        else:
            collector.add_batch(workload.batch)
        scalar, batched = _measure(collector, workload)
        speedups[algo] = scalar / batched
        result.add_row(
            algorithm=algo,
            scalar_mqps=round(n / scalar / 1e6, 3),
            batched_mqps=round(n / batched / 1e6, 3),
            speedup=round(scalar / batched, 2),
        )

    save_result(result, RESULTS_DIR)
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "query_throughput",
                "memory_bytes": MEMORY,
                "n_flows": n,
                "rows": result.rows,
            },
            indent=2,
        )
        + "\n"
    )
    for algo in ("HashFlow", "CountMinSketch"):
        assert speedups[algo] >= SPEEDUP_FLOOR, (
            f"{algo} batched query path is only {speedups[algo]:.2f}x the "
            f"scalar path (floor {SPEEDUP_FLOOR}x) — batch-query engine "
            "regression"
        )


def test_native_query_speedup_recorded(workload):
    """Record the native/numpy batched-query speedup for HashFlow.

    The query side of the native tier's headline claim; merged into
    ``BENCH_headline.json`` alongside the update-side ratio.
    """
    if not native_available():
        pytest.skip("native kernel tier unavailable (no C compiler)")
    n = len(workload.truth_batch)
    times = {}
    for tier in ("numpy", "native"):
        collector = build("hashflow", memory_bytes=MEMORY, seed=0, kernel=tier)
        workload.feed(collector)

        def run():
            collector.query_batch(workload.truth_batch)

        times[tier] = _best_of(3, run)
    speedup = times["numpy"] / times["native"]
    print(
        f"\nnative query: numpy {n / times['numpy'] / 1e6:.2f} Mqps, "
        f"native {n / times['native'] / 1e6:.2f} Mqps ({speedup:.2f}x)"
    )
    update_headline(
        native_query_qps=round(n / times["native"]),
        native_query_speedup=round(speedup, 2),
    )
    # Record-only by default: bit-identity already gates correctness and
    # the update-side floor gates the native tier's health in CI.
    assert speedup > 0
