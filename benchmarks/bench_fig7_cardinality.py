"""Fig. 7: Relative Error of flow cardinality estimation.

Paper: HashFlow, ElasticSketch and FlowRadar achieve similar accuracy
(FlowRadar slightly better — its Bloom filter ignores flow sizes);
HashPipe, with no compensation for dropped flows, performs badly.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.experiments.figures import fig7
from repro.experiments.report import pivot


def test_fig7(benchmark, emit):
    result = run_once(benchmark, fig7)
    emit(result)
    for trace in ("caida", "campus", "isp1", "isp2"):
        rows = [r for r in result.rows if r["trace"] == trace]
        series = pivot(
            type(result)(
                experiment_id="x", title="", columns=result.columns, rows=rows
            ),
            index="n_flows",
            series="algorithm",
            value="cardinality_re",
        )
        heaviest = max(series["HashFlow"])
        # The three estimator-equipped algorithms stay accurate.
        for algo in ("HashFlow", "ElasticSketch", "FlowRadar"):
            re = series[algo][heaviest]
            assert math.isfinite(re) and re < 0.4, (trace, algo, re)
        # HashPipe underestimates badly under load.
        assert series["HashPipe"][heaviest] > 0.5, trace
        assert (
            series["HashPipe"][heaviest] > series["HashFlow"][heaviest]
        ), trace
