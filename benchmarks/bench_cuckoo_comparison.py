"""Cuckoo hashing vs HashFlow's bounded collision resolution.

Section II of the paper rules out classic schemes ("in the worst case,
they need unbounded time for insertion or lookup, thus are not adequate
for our purpose").  This bench measures that claim: a cuckoo flow cache
and HashFlow at the same memory, same workload — comparing worst-case
per-packet work and what each gives up.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR
from repro.core.hashflow import HashFlow
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.sketches.cuckoo import CuckooFlowCache
from repro.traces.profiles import CAIDA

CELLS = 8192


def test_cuckoo_vs_hashflow(benchmark, emit):
    result = ExperimentResult(
        experiment_id="cuckoo_comparison",
        title="Cuckoo flow cache vs HashFlow at equal cells (Section II claim)",
        columns=[
            "load",
            "algorithm",
            "records",
            "worst_case_ops",
            "avg_hashes",
            "drops",
        ],
    )

    def run():
        for load in (0.4, 0.8, 1.5):
            n_flows = int(load * CELLS)
            workload = make_workload(CAIDA, n_flows, seed=31)
            cuckoo = CuckooFlowCache(n_cells=CELLS, max_kicks=500, seed=7)
            hashflow = HashFlow(main_cells=CELLS, seed=7)
            workload.feed(cuckoo)
            workload.feed(hashflow)
            result.add_row(
                load=load,
                algorithm="Cuckoo",
                records=len(cuckoo.records()),
                worst_case_ops=cuckoo.max_chain,
                avg_hashes=round(cuckoo.meter.per_packet()["hashes"], 3),
                drops=cuckoo.insert_failures,
            )
            result.add_row(
                load=load,
                algorithm="HashFlow",
                records=len(hashflow.records()),
                worst_case_ops=hashflow.main.depth + 2,  # fixed by design
                avg_hashes=round(hashflow.meter.per_packet()["hashes"], 3),
                drops=0,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    # HashFlow's worst case is constant; cuckoo's grows with load.
    cuckoo_rows = sorted(
        result.filter_rows(algorithm="Cuckoo"), key=lambda r: r["load"]
    )
    assert cuckoo_rows[-1]["worst_case_ops"] > cuckoo_rows[0]["worst_case_ops"]
    assert cuckoo_rows[-1]["worst_case_ops"] > 20
    for row in result.filter_rows(algorithm="HashFlow"):
        assert row["worst_case_ops"] == 5
    # Above capacity, cuckoo drops flows outright.
    assert cuckoo_rows[-1]["drops"] > 0
