"""Fig. 9: F1 score for heavy-hitter detection vs threshold.

250K flows (scaled) per trace; per-trace threshold grids follow the
paper's x-axes.  Paper: HashFlow reaches F1 ~ 1 over a wide threshold
range, beating HashPipe (designed for this task) and ElasticSketch;
FlowRadar is not a candidate under such load.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig9
from repro.experiments.report import pivot


def test_fig9(benchmark, emit):
    result = run_once(benchmark, fig9)
    emit(result)
    for trace in ("caida", "campus", "isp1"):
        rows = [r for r in result.rows if r["trace"] == trace]
        series = pivot(
            type(result)(
                experiment_id="x", title="", columns=result.columns, rows=rows
            ),
            index="threshold",
            series="algorithm",
            value="f1",
        )
        top_threshold = max(series["HashFlow"])
        # HashFlow: near-perfect detection at the top threshold.
        assert series["HashFlow"][top_threshold] > 0.9, trace
        # And at least as good as every competitor there.
        for algo in ("HashPipe", "ElasticSketch", "FlowRadar"):
            assert (
                series["HashFlow"][top_threshold]
                >= series[algo][top_threshold] - 0.02
            ), (trace, algo)
        # FlowRadar is not a viable heavy-hitter detector at this load.
        assert series["FlowRadar"][top_threshold] < 0.5, trace
