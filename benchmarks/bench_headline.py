"""Headline claims from the paper's abstract (Section I).

* ~55K accurately recorded flows per MB, more than the competitors;
* lowest size-estimation ARE at 50K flows, best competitor much worse;
* near-perfect heavy-hitter detection out of 250K flows with low ARE.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.experiments.figures import headline


def _by_claim(result, claim):
    return {
        r["algorithm"]: r["value"] for r in result.rows if r["claim"] == claim
    }


def test_headline(benchmark, emit):
    result = run_once(benchmark, headline)
    emit(result)

    # Claim 1: HashFlow accurately records the most flows.
    accurate = _by_claim(result, "accurate_records")
    assert accurate["HashFlow"] == max(accurate.values())
    others = [v for k, v in accurate.items() if k != "HashFlow"]
    # "often 12.5% higher than the others" — require a clear margin.
    assert accurate["HashFlow"] >= 1.05 * max(others)

    # Claim 2: lowest ARE at 50K flows with a clear competitor gap.
    are = _by_claim(result, "size_are_50k")
    assert are["HashFlow"] == min(are.values())
    best_other = min(v for k, v in are.items() if k != "HashFlow")
    # "the estimation error of the best competitor is 42.9% higher".
    assert best_other >= 1.2 * are["HashFlow"]

    # Claim 3: heavy-hitter detection rate ~96%+ with low size error.
    detection = _by_claim(result, "hh_detection_rate")
    assert detection["HashFlow"] > 0.9
    hh_are = _by_claim(result, "hh_size_are")
    assert math.isfinite(hh_are["HashFlow"]) and hh_are["HashFlow"] < 0.1
    for algo in ("HashPipe", "ElasticSketch"):
        if math.isfinite(hh_are[algo]):
            assert hh_are["HashFlow"] <= hh_are[algo] + 0.01, algo
