"""Fig. 10: ARE of heavy-hitter size estimation vs threshold.

Paper: HashFlow makes near-perfect size estimates for detected heavy
hitters (ARE ~ 0), while HashPipe sits around 0.15-0.2 and
ElasticSketch around 0.2-0.25.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.experiments.figures import fig10
from repro.experiments.report import pivot


def test_fig10(benchmark, emit):
    result = run_once(benchmark, fig10)
    emit(result)
    for trace in ("caida", "campus", "isp1"):
        rows = [r for r in result.rows if r["trace"] == trace]
        series = pivot(
            type(result)(
                experiment_id="x", title="", columns=result.columns, rows=rows
            ),
            index="threshold",
            series="algorithm",
            value="are",
        )
        top = max(series["HashFlow"])
        hashflow_are = series["HashFlow"][top]
        # Near-perfect size estimates for the heavy hitters HashFlow reports.
        assert math.isfinite(hashflow_are) and hashflow_are < 0.06, trace
        for algo in ("HashPipe", "ElasticSketch"):
            other = series[algo][top]
            if math.isfinite(other):
                assert hashflow_are <= other + 0.02, (trace, algo)
