"""Fig. 8: Average Relative Error of flow size estimation.

Paper: HashFlow achieves a clearly lower ARE than its competitors
across the 20K-100K flow sweep; FlowRadar degrades sharply once decode
fails; HashPipe is unstable.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig8
from repro.experiments.report import pivot


def test_fig8(benchmark, emit):
    result = run_once(benchmark, fig8)
    emit(result)
    wins = 0
    cases = 0
    for trace in ("caida", "campus", "isp1", "isp2"):
        rows = [r for r in result.rows if r["trace"] == trace]
        series = pivot(
            type(result)(
                experiment_id="x", title="", columns=result.columns, rows=rows
            ),
            index="n_flows",
            series="algorithm",
            value="size_are",
        )
        heaviest = max(series["HashFlow"])
        for algo in ("HashPipe", "ElasticSketch", "FlowRadar"):
            cases += 1
            if series["HashFlow"][heaviest] <= series[algo][heaviest]:
                wins += 1
        # ARE grows with load for HashFlow (fixed memory).
        lightest = min(series["HashFlow"])
        assert series["HashFlow"][lightest] <= series["HashFlow"][heaviest] + 0.02
    # HashFlow wins the overwhelming majority of heaviest-load match-ups.
    assert wins >= cases - 1, f"HashFlow won only {wins}/{cases}"
