"""Fig. 2: occupancy-model validation (theory vs simulation).

2a — multi-hash table utilization for m/n in {1..4}, d = 1..10.
2b — pipelined tables at m/n = 1.0 for α in {0.5..0.8}.
2c — pipelined tables at m/n = 2.0.
2d — utilization improvement of pipelined tables at d = 3.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig2a, fig2b, fig2c, fig2d
from repro.experiments.report import pivot


def test_fig2a(benchmark, emit):
    result = run_once(benchmark, fig2a)
    emit(result)
    for row in result.rows:
        # Model vs simulation: near-perfect for m/n >= 2 (paper).
        tolerance = 0.05 if row["load"] < 2 else 0.02
        assert row["sim"] == pytest.approx(row["theory"], abs=tolerance)
    # Utilization grows with depth for every load.
    series = pivot(result, index="depth", series="load", value="sim")
    for load, by_depth in series.items():
        depths = sorted(by_depth)
        assert by_depth[depths[-1]] >= by_depth[depths[0]]


def test_fig2b(benchmark, emit):
    result = run_once(benchmark, fig2b)
    emit(result)
    for row in result.rows:
        assert row["sim"] == pytest.approx(row["theory"], abs=0.03)


def test_fig2c(benchmark, emit):
    result = run_once(benchmark, fig2c)
    emit(result)
    for row in result.rows:
        assert row["sim"] == pytest.approx(row["theory"], abs=0.03)


def test_fig2d(benchmark, emit):
    result = run_once(benchmark, fig2d)
    emit(result)
    # Pipelined tables improve utilization at every load for α ~ 0.7
    # (at very heavy load both organizations saturate near 1.0, so the
    # gain shrinks to numerical zero but never goes meaningfully negative).
    by_load = pivot(result, index="alpha", series="load", value="improvement")
    for load, by_alpha in by_load.items():
        assert by_alpha[0.7] > -1e-3, f"regression at load {load}"
        if float(load) <= 2.0:
            assert by_alpha[0.7] > 0.0, f"no improvement at load {load}"
    # The α maximizing improvement at m/n = 1.0 is near the paper's 0.7.
    gains = by_load["1.0"]
    best_alpha = max(gains, key=gains.get)
    assert 0.6 <= best_alpha <= 0.8
