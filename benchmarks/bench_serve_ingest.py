"""Live-daemon ingest throughput for ``repro.serve`` (not a paper
figure).

Replays an unpaced NetFlow v5 stream over loopback UDP into a running
:class:`~repro.serve.daemon.ServeDaemon` and measures the sustained
decode-route-ring-feed rate, asserting the delivered record set still
matches the offline ``Pipeline.run`` ground truth (the determinism
contract holds at speed, not just in the unit tests).  Persists:

* ``benchmarks/results/BENCH_serve_ingest.json`` — the full record
  (wall clock, pps, drop rate, per-worker meters);
* ``BENCH_headline.json`` at the repo root — ``serve_pps`` and
  ``serve_drop_rate`` join the headline perf trajectory.

The daemon's parent (listener) and worker are separate processes, so a
meaningful rate needs at least 2 CPUs: on a single-core container the
listener and worker time-slice, measuring the scheduler rather than
the pipeline.  With fewer than 2 CPUs the timed run is *skipped with
an explicit reason* and the headline records ``serve_pps = null`` plus
that reason (the ``shard_skip_reason`` convention), instead of a
number a future PR might mistake for a regression.  Stream size
follows ``REPRO_SCALE``.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, update_headline
from repro.native import kernel_info
from repro.serve import ServeDaemon, ServeSpec, replay_datagrams, trace_datagrams
from repro.specs import resolve_scale
from repro.stream.pipeline import Pipeline
from repro.traces.profiles import CAIDA

JSON_PATH = RESULTS_DIR / "BENCH_serve_ingest.json"

#: Synthetic clock rate; a whole-millisecond period (2 ms) keeps the
#: replayed timestamps bit-identical to the offline pipeline clock.
PACKET_RATE = 500.0


def _serve_spec(scale: float) -> ServeSpec:
    cells = max(4096, int(round(262_144 * scale)))
    return ServeSpec(
        pipeline={
            "source": {"kind": "udp", "params": {"host": "127.0.0.1", "port": 0}},
            "collector": {"kind": "hashflow", "params": {"main_cells": cells, "seed": 5}},
            "rotation": {"kind": "interval", "params": {"window": 10.0}},
            "sinks": [{"kind": "archive"}],
            "packet_rate": PACKET_RATE,
        },
        workers=1,
        backpressure="block",
        stats_interval=60.0,
    )


def _environment_fields() -> dict:
    """The measurement environment every headline record must carry."""
    info = kernel_info()
    return {
        "cpus": os.cpu_count(),
        "kernel": info["requested"],
        "native_available": info["available"],
        "compiler": info["compiler"],
    }


def test_serve_ingest_recorded():
    """Record the daemon's sustained loopback ingest rate."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        reason = (
            f"serve ingest rate not measurable on {cpus} CPU: the "
            "listener and worker processes time-slice one core"
        )
        update_headline(
            serve_pps=None,
            serve_drop_rate=None,
            serve_skip_reason=reason,
            **_environment_fields(),
        )
        pytest.skip(reason)

    scale = resolve_scale(None)
    n_flows = max(20_000, int(round(1_000_000 * scale)))
    trace = CAIDA.generate(n_flows=n_flows, seed=23)
    # Encode outside the timed region: the bench measures the daemon,
    # not the replayer's encoder.
    datagrams = trace_datagrams(trace, packet_rate=PACKET_RATE)

    spec = _serve_spec(scale)
    daemon = ServeDaemon(spec, quiet=True)
    address = daemon.bind()
    sent = {}
    timing = {}

    def feed() -> None:
        start = time.perf_counter()
        sent["packets"] = replay_datagrams(datagrams, address)
        deadline = time.monotonic() + 300.0
        while (
            daemon.packets_received < sent["packets"]
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        # Ingest complete: everything is off the socket and in (or
        # through) the ring.  The drain that follows is shutdown cost,
        # not steady-state throughput, so the clock stops here.
        timing["ingest_s"] = time.perf_counter() - start
        daemon.request_stop()

    feeder = threading.Thread(target=feed, daemon=True)
    feeder.start()
    result = daemon.run(duration=300.0)
    feeder.join(timeout=30.0)

    offline = Pipeline.from_spec(
        spec.pipeline_spec.with_stages(
            source={"kind": "synthetic", "params": {"profile": "caida", "n_flows": 1}}
        )
    ).run(trace=trace)
    assert result.packets == sent["packets"] == len(trace)
    assert result.drops == 0, "block back-pressure must be lossless"
    assert result.records == offline.records, "live records diverged from offline"

    ingest_s = timing["ingest_s"]
    pps = result.packets / ingest_s
    drop_rate = result.drops / result.packets
    record = {
        "experiment": "serve_ingest",
        "n_flows": n_flows,
        "n_packets": result.packets,
        "datagrams": result.datagrams,
        "cpus": cpus,
        "scale": scale,
        "kernel": kernel_info()["requested"],
        "workers": spec.workers,
        "backpressure": spec.backpressure,
        "ingest_s": round(ingest_s, 3),
        "serve_pps": round(pps),
        "drop_rate": drop_rate,
        "rotations": result.rotations,
        "exported": result.exported,
        "meters": {str(w): m for w, m in result.meters.items()},
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nserve ingest: {result.packets} packets in {ingest_s:.2f}s "
        f"({pps:,.0f} pps, {result.drops} drops)"
    )

    update_headline(
        serve_pps=round(pps),
        serve_drop_rate=drop_rate,
        serve_skip_reason=None,
        **_environment_fields(),
    )


RECOVERY_JSON_PATH = RESULTS_DIR / "BENCH_serve_recovery.json"


def test_serve_recovery_recorded():
    """Record how fast supervision restores a killed worker.

    A ``kill_worker`` fault (:mod:`repro.faults`) SIGKILLs the worker
    mid-stream; with a restart budget the daemon quarantines the ring,
    respawns, and replays the resident packets.  ``recovery_ms`` is
    the supervisor's own measurement: death detection to the respawn's
    first ring consumption.  Needs the same >= 2 CPUs as the ingest
    bench — on one core the "recovery" time is scheduler time-slicing.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        reason = (
            f"serve recovery latency not measurable on {cpus} CPU: the "
            "listener and worker processes time-slice one core"
        )
        update_headline(
            serve_recovery_ms=None,
            serve_recovery_skip_reason=reason,
            **_environment_fields(),
        )
        pytest.skip(reason)

    scale = resolve_scale(None)
    n_flows = max(20_000, int(round(200_000 * scale)))
    trace = CAIDA.generate(n_flows=n_flows, seed=29)
    datagrams = trace_datagrams(trace, packet_rate=PACKET_RATE)

    base = _serve_spec(scale)
    spec = ServeSpec.from_dict(
        {
            **base.to_dict(),
            "max_restarts": 2,
            "faults": [
                {
                    "kind": "kill_worker",
                    "worker": 0,
                    "at_packets": len(trace) // 2,
                }
            ],
        }
    )
    daemon = ServeDaemon(spec, quiet=True)
    address = daemon.bind()
    sent = {}

    def feed() -> None:
        sent["packets"] = replay_datagrams(datagrams, address)
        deadline = time.monotonic() + 300.0
        while (
            daemon.packets_received < sent["packets"]
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        daemon.request_stop()

    feeder = threading.Thread(target=feed, daemon=True)
    feeder.start()
    result = daemon.run(duration=300.0)
    feeder.join(timeout=30.0)

    assert result.packets == sent["packets"] == len(trace)
    assert result.accounting_exact, "fed + drops + lost must equal received"
    assert len(result.restarts) == 1, "the kill fault must fire exactly once"
    recovery_ms = result.restarts[0]["recovery_ms"]
    assert recovery_ms is not None and recovery_ms > 0

    record = {
        "experiment": "serve_recovery",
        "n_flows": n_flows,
        "n_packets": result.packets,
        "cpus": cpus,
        "scale": scale,
        "kernel": kernel_info()["requested"],
        "workers": spec.workers,
        "kill_at_packets": spec.faults[0]["at_packets"],
        "disposition": result.restarts[0]["disposition"],
        "resident_replayed": result.restarts[0]["resident"],
        "degraded_rotations": result.degraded,
        "recovery_ms": round(recovery_ms, 3),
    }
    RECOVERY_JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nserve recovery: worker restored in {recovery_ms:.1f} ms "
        f"({result.restarts[0]['resident']} resident packets replayed)"
    )

    update_headline(
        serve_recovery_ms=round(recovery_ms, 3),
        serve_recovery_skip_reason=None,
        **_environment_fields(),
    )
