"""Ablation benches for HashFlow's design choices (DESIGN.md section 3).

Not paper figures; they quantify the contribution of each mechanism the
paper argues for:

* record promotion on/off — promotion is what keeps late-blooming
  elephants accurate (Section II, design choice 1);
* ancillary digest width — 8 bits trades a 1/256 mix-up chance for
  memory (Section III-A);
* clearing promoted ancillary cells — the literal Algorithm 1 leaves
  them stale; measure whether it matters;
* ancillary/main size split — the paper uses equal cell counts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.analysis.heavy_hitters import evaluate_heavy_hitters
from repro.analysis.metrics import flow_set_coverage
from repro.core.hashflow import HashFlow
from repro.experiments.runner import ExperimentResult, make_workload
from repro.experiments.report import render_table, save_result
from repro.traces.profiles import CAMPUS

MAIN_CELLS = 4096
N_FLOWS = 3 * MAIN_CELLS  # heavy overload: promotion pressure is real


@pytest.fixture(scope="module")
def workload():
    return make_workload(CAMPUS, N_FLOWS, seed=11)


def _evaluate(collector, workload):
    workload.feed(collector)
    truth = workload.true_sizes
    hh = evaluate_heavy_hitters(collector, truth, threshold=50)
    return {
        "fsc": round(flow_set_coverage(collector.records(), truth), 4),
        # ARE through the batch-query engine (one query_batch sweep).
        "are": round(workload.size_are(collector), 4),
        "hh_f1": round(hh.f1, 4),
        "promotions": collector.promotions,
    }


def test_ablation_promotion(benchmark):
    """Promotion exists for *late-blooming elephants*: flows that start
    after the main table has filled.  Without promotion they are stuck
    in the ancillary table forever (no reportable ID, capped 8-bit
    count); with it they displace a small sentinel.  Note that under a
    uniform interleave promotion barely matters — elephants win main
    slots on their first packets — which is why this ablation feeds all
    mice *first*."""
    result = ExperimentResult(
        experiment_id="ablation_promotion",
        title="Ablation: promotion on/off, elephants arriving after table fill",
        columns=["config", "hh_f1", "hh_recall", "promotions"],
    )
    from repro.analysis.metrics import precision_recall_f1
    from repro.flow.stats import heavy_hitters as true_hh

    # 3x overload of mice, then 50 elephants of 120 packets each,
    # interleaved with more mice so ancillary churn is realistic.
    import random

    rng = random.Random(7)
    mice_first = [1_000_000 + i for i in range(3 * MAIN_CELLS)]
    elephants = list(range(1, 51))
    late = elephants * 120 + [2_000_000 + i for i in range(2 * MAIN_CELLS)]
    rng.shuffle(late)
    stream = mice_first + late
    truth = {}
    for key in stream:
        truth[key] = truth.get(key, 0) + 1
    actual_hh = true_hh(truth, 100)

    rows = {}

    def run():
        for promote in (True, False):
            collector = HashFlow(main_cells=MAIN_CELLS, promote=promote, seed=5)
            collector.process_all(stream)
            reported = collector.heavy_hitters(100)
            precision, recall, f1 = precision_recall_f1(reported, actual_hh)
            rows[promote] = recall
            result.add_row(
                config=f"promote={promote}",
                hh_f1=round(f1, 4),
                hh_recall=round(recall, 4),
                promotions=collector.promotions,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(result))
    save_result(result, RESULTS_DIR)
    on = result.filter_rows(config="promote=True")[0]
    off = result.filter_rows(config="promote=False")[0]
    assert on["promotions"] > 0
    assert off["promotions"] == 0
    # The design claim: promotion rescues the late elephants.
    assert on["hh_recall"] > 0.9
    assert on["hh_recall"] > off["hh_recall"] + 0.3


def test_ablation_digest_width(benchmark, workload):
    """Wider digests reduce ancillary mix-ups; 8 bits is already close to
    the 16-bit ceiling, which is why the paper stops there."""
    result = ExperimentResult(
        experiment_id="ablation_digest_width",
        title="Ablation: ancillary digest width",
        columns=["digest_bits", "are", "fsc"],
    )

    def run():
        for bits in (2, 4, 8, 16):
            collector = HashFlow(main_cells=MAIN_CELLS, digest_bits=bits, seed=5)
            metrics = _evaluate(collector, workload)
            result.add_row(digest_bits=bits, are=metrics["are"], fsc=metrics["fsc"])

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(result))
    save_result(result, RESULTS_DIR)
    by_bits = {r["digest_bits"]: r["are"] for r in result.rows}
    assert by_bits[8] <= by_bits[2] + 0.02  # narrow digests mix flows up


def test_ablation_clear_promoted(benchmark, workload):
    """Clearing promoted cells vs the literal (stale) Algorithm 1 —
    the difference should be digest-collision noise only."""
    result = ExperimentResult(
        experiment_id="ablation_clear_promoted",
        title="Ablation: clear ancillary cell on promotion",
        columns=["config", "fsc", "are", "hh_f1", "promotions"],
    )

    def run():
        for clear in (False, True):
            collector = HashFlow(
                main_cells=MAIN_CELLS, clear_promoted=clear, seed=5
            )
            metrics = _evaluate(collector, workload)
            result.add_row(config=f"clear={clear}", **metrics)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(result))
    save_result(result, RESULTS_DIR)
    stale = result.filter_rows(config="clear=False")[0]
    clear = result.filter_rows(config="clear=True")[0]
    assert abs(stale["are"] - clear["are"]) < 0.05


def test_ablation_ancillary_ratio(benchmark, workload):
    """Splitting memory between main and ancillary tables: the paper's
    equal-cells choice against smaller/larger ancillary tables at a
    fixed total memory budget."""
    result = ExperimentResult(
        experiment_id="ablation_ancillary_ratio",
        title="Ablation: ancillary/main cell ratio at fixed memory",
        columns=["ratio", "main_cells", "anc_cells", "fsc", "are", "hh_f1"],
    )
    total_bits = MAIN_CELLS * (136 + 16)  # the equal-cells baseline budget

    def run():
        for ratio in (0.25, 0.5, 1.0, 2.0, 4.0):
            # main*136 + main*ratio*16 = total
            main = int(total_bits / (136 + 16 * ratio))
            anc = max(1, int(main * ratio))
            collector = HashFlow(main_cells=main, ancillary_cells=anc, seed=5)
            metrics = _evaluate(collector, workload)
            result.add_row(
                ratio=ratio,
                main_cells=main,
                anc_cells=anc,
                fsc=metrics["fsc"],
                are=metrics["are"],
                hh_f1=metrics["hh_f1"],
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(result))
    save_result(result, RESULTS_DIR)
    # The split is a clean tradeoff: more ancillary cells buy lower ARE
    # (mice summarized better) at the cost of FSC (fewer main cells).
    ordered = sorted(result.rows, key=lambda r: r["ratio"])
    fscs = [r["fsc"] for r in ordered]
    ares = [r["are"] for r in ordered]
    assert fscs == sorted(fscs, reverse=True)
    assert ares == sorted(ares, reverse=True)
    # The paper's 1:1 point sits strictly inside the Pareto frontier.
    mid = next(r for r in ordered if r["ratio"] == 1.0)
    assert ordered[0]["fsc"] > mid["fsc"] > ordered[-1]["fsc"]
    assert ordered[0]["are"] > mid["are"] > ordered[-1]["are"]
