"""Memory/accuracy tradeoff sweep (extension; not a paper figure).

Fixes the workload and sweeps the memory budget across a factor of 16,
reporting FSC and size-ARE for all four algorithms.  Complements the
paper's fixed-1MB evaluation: it shows *where* each algorithm's
accuracy budget goes as memory shrinks, and that HashFlow's advantage
holds across budgets, not just at the paper's operating point.

The budget × algorithm grid runs as an explicit plan through the
parallel sweep engine (``REPRO_JOBS`` selects the worker count; rows
are bit-identical at any job count).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.parallel import SweepCell, WorkloadRef, run_plan
from repro.specs import EVALUATED_KINDS, display_name
from repro.traces.profiles import CAIDA

N_FLOWS = 20_000
BUDGETS = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024]


def test_memory_sweep(benchmark, emit):
    result = ExperimentResult(
        experiment_id="memory_sweep",
        title="FSC and ARE vs memory budget (CAIDA workload, 20K flows)",
        columns=["memory_kb", "algorithm", "fsc", "are"],
        params={"n_flows": N_FLOWS},
    )
    workload_ref = WorkloadRef(profile=CAIDA.name, n_flows=N_FLOWS, seed=21)
    cells = [
        SweepCell(
            workload=workload_ref,
            spec_or_kind=kind,
            memory_bytes=budget,
            seed=3,
            metrics=("fsc", "size_are"),
            label=(budget // 1024, display_name(kind)),
        )
        for budget in BUDGETS
        for kind in EVALUATED_KINDS
    ]

    def run():
        for cell, cell_result in zip(cells, run_plan(cells)):
            kb, name = cell.label
            values = cell_result.rows[0]
            result.add_row(
                memory_kb=kb,
                algorithm=name,
                fsc=round(values["fsc"], 4),
                are=round(values["size_are"], 4),
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    # More memory never hurts any algorithm's coverage...
    for algo in ("HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"):
        fscs = [r["fsc"] for r in result.rows if r["algorithm"] == algo]
        assert fscs == sorted(fscs), algo
    # ...and HashFlow leads or ties the field at every budget on ARE.
    for budget in BUDGETS:
        kb = budget // 1024
        rows = {r["algorithm"]: r for r in result.rows if r["memory_kb"] == kb}
        best_other = min(
            rows[a]["are"] for a in ("HashPipe", "ElasticSketch", "FlowRadar")
        )
        assert rows["HashFlow"]["are"] <= best_other + 0.02, kb
