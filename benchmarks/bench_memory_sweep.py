"""Memory/accuracy tradeoff sweep (extension; not a paper figure).

Fixes the workload and sweeps the memory budget across a factor of 16,
reporting FSC and size-ARE for all four algorithms.  Complements the
paper's fixed-1MB evaluation: it shows *where* each algorithm's
accuracy budget goes as memory shrinks, and that HashFlow's advantage
holds across budgets, not just at the paper's operating point.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR
from repro.analysis.metrics import flow_set_coverage
from repro.specs import build_evaluated
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.traces.profiles import CAIDA

N_FLOWS = 20_000
BUDGETS = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024]


def test_memory_sweep(benchmark, emit):
    workload = make_workload(CAIDA, N_FLOWS, seed=21)
    result = ExperimentResult(
        experiment_id="memory_sweep",
        title="FSC and ARE vs memory budget (CAIDA workload, 20K flows)",
        columns=["memory_kb", "algorithm", "fsc", "are"],
        params={"n_flows": N_FLOWS},
    )

    def run():
        for budget in BUDGETS:
            for name, collector in build_evaluated(budget, seed=3).items():
                workload.feed(collector)
                result.add_row(
                    memory_kb=budget // 1024,
                    algorithm=name,
                    fsc=round(
                        flow_set_coverage(collector.records(), workload.true_sizes), 4
                    ),
                    # Batched query sweep over the cached truth batch.
                    are=round(workload.size_are(collector), 4),
                )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    # More memory never hurts any algorithm's coverage...
    for algo in ("HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"):
        fscs = [r["fsc"] for r in result.rows if r["algorithm"] == algo]
        assert fscs == sorted(fscs), algo
    # ...and HashFlow leads or ties the field at every budget on ARE.
    for budget in BUDGETS:
        kb = budget // 1024
        rows = {r["algorithm"]: r for r in result.rows if r["memory_kb"] == kb}
        best_other = min(
            rows[a]["are"] for a in ("HashPipe", "ElasticSketch", "FlowRadar")
        )
        assert rows["HashFlow"]["are"] <= best_other + 0.02, kb
