"""Serial vs multi-core sweep execution (not a paper figure).

Times the memory-sweep grid (budgets × the four evaluated algorithms
on one CAIDA workload) through ``repro.parallel.run_plan`` at 1, 2 and
4 workers, asserts the parallel rows are bit-identical to the serial
ones, and persists the measured speedups:

* ``benchmarks/results/BENCH_parallel_sweep.json`` — this bench's full
  record (per-job-count wall clock and speedup);
* ``BENCH_headline.json`` at the repo root — the repo's headline perf
  trajectory (update packets/sec, query ops/sec, parallel speedup), a
  single file future PRs can diff against.

Speedup floors are environment-driven because they are *hardware*
claims: ``PARALLEL_SPEEDUP_FLOOR`` (default 0 = record only) is
asserted against the 2-worker speedup — CI sets it on multi-core
runners.  On a single-core container a multi-worker speedup is not an
aspirational number that came in low, it is unmeasurable: process-pool
overhead guarantees < 1x.  So with fewer than 2 CPUs the timed
comparison is *skipped with an explicit reason* and the headline
records ``parallel_speedup_* = null`` plus that reason, instead of
silently persisting a sub-1x figure a future PR might mistake for a
regression.  Grid sizes follow ``REPRO_SCALE``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, update_headline
from repro.experiments.runner import make_workload
from repro.native import kernel_info
from repro.parallel import SweepCell, WorkloadRef, materialize_refs, run_plan
from repro.specs import EVALUATED_KINDS, build, resolve_scale
from repro.traces.profiles import CAIDA

JSON_PATH = RESULTS_DIR / "BENCH_parallel_sweep.json"

BUDGETS = [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024]

#: Minimum acceptable 2-worker speedup (0 = record only; CI sets 1.2).
SPEEDUP_FLOOR = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "0"))

JOB_COUNTS = (2, 4)


def _timed_plan(cells, jobs):
    start = time.perf_counter()
    results = run_plan(cells, jobs=jobs)
    return time.perf_counter() - start, results


def _measure_headline_rates() -> dict[str, float]:
    """Quick single-collector update/query rates for the trajectory."""
    workload = make_workload(CAIDA, 4000, seed=1)
    collector = build("hashflow", memory_bytes=64 * 1024, seed=0)
    start = time.perf_counter()
    workload.feed(collector)
    update_s = time.perf_counter() - start
    start = time.perf_counter()
    workload.query_estimates(collector)
    query_s = time.perf_counter() - start
    return {
        "update_pps": round(workload.num_packets / update_s),
        "query_qps": round(len(workload.truth_batch) / query_s),
    }


def _environment_fields() -> dict:
    """The measurement environment every headline record must carry."""
    info = kernel_info()
    return {
        "cpus": os.cpu_count(),
        "kernel": info["requested"],
        "native_available": info["available"],
        "compiler": info["compiler"],
    }


def test_parallel_sweep_recorded():
    """Record serial-vs-parallel wall clock on the memory-sweep grid."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        # The headline still gets the single-collector rates and an
        # honest explanation of why the parallel fields are absent.
        reason = (
            f"multi-worker speedup not measurable on {cpus} CPU: "
            "process-pool overhead guarantees < 1x"
        )
        update_headline(
            **_measure_headline_rates(),
            parallel_speedup_2=None,
            parallel_speedup_4=None,
            parallel_skip_reason=reason,
            **_environment_fields(),
        )
        pytest.skip(reason)
    scale = resolve_scale(None)
    n_flows = max(2000, int(round(200_000 * scale)))
    workload_ref = WorkloadRef(profile=CAIDA.name, n_flows=n_flows, seed=21)
    cells = [
        SweepCell(
            workload=workload_ref,
            spec_or_kind=kind,
            memory_bytes=budget,
            seed=3,
            metrics=("fsc", "size_are"),
            label=(budget, kind),
        )
        for budget in BUDGETS
        for kind in EVALUATED_KINDS
    ]
    # Warm the on-disk trace cache so the timed parallel runs measure
    # execution, not one-off trace materialization; the serial run
    # still pays in-process generation, as any serial caller would.
    materialize_refs(cells)

    serial_s, serial = _timed_plan(cells, jobs=1)
    timings: dict[int, float] = {}
    for jobs in JOB_COUNTS:
        elapsed, results = _timed_plan(cells, jobs=jobs)
        timings[jobs] = elapsed
        assert [r.rows for r in results] == [r.rows for r in serial], (
            f"parallel rows at jobs={jobs} diverged from serial rows"
        )
        assert [r.meter for r in results] == [r.meter for r in serial], (
            f"parallel meter totals at jobs={jobs} diverged from serial"
        )

    speedups = {jobs: serial_s / timings[jobs] for jobs in JOB_COUNTS}
    record = {
        "experiment": "parallel_sweep",
        "n_cells": len(cells),
        "n_flows": n_flows,
        "budgets": BUDGETS,
        "cpus": cpus,
        "scale": scale,
        "serial_s": round(serial_s, 3),
        "parallel_s": {str(j): round(t, 3) for j, t in timings.items()},
        "speedup": {str(j): round(s, 2) for j, s in speedups.items()},
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nparallel sweep: serial {serial_s:.2f}s, " + ", ".join(
        f"{j} workers {timings[j]:.2f}s ({speedups[j]:.2f}x)" for j in JOB_COUNTS
    ))

    update_headline(
        **_measure_headline_rates(),
        parallel_speedup_2=round(speedups[2], 2),
        parallel_speedup_4=round(speedups[4], 2),
        parallel_skip_reason=None,
        **_environment_fields(),
    )

    if SPEEDUP_FLOOR > 0:
        assert speedups[2] >= SPEEDUP_FLOOR, (
            f"2-worker sweep speedup is only {speedups[2]:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x) on {cpus} CPUs — "
            "parallel engine regression"
        )
