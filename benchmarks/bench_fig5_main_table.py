"""Fig. 5: multi-hash vs pipelined main tables on the Campus trace.

5a — Flow Set Coverage; 5b — size-estimation ARE, for a multi-hash main
table and pipelined tables with α in {0.6, 0.7, 0.8}, as the number of
concurrent flows grows.  Paper: pipelined with α ~ 0.7 is best.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig5
from repro.experiments.report import pivot


def test_fig5(benchmark, emit):
    result = run_once(benchmark, fig5)
    emit(result)
    fsc = pivot(result, index="n_flows", series="config", value="fsc")
    are = pivot(result, index="n_flows", series="config", value="are")
    heaviest = max(fsc["multihash"])

    # FSC decreases with load for every configuration.
    for config, by_n in fsc.items():
        ns = sorted(by_n)
        assert by_n[ns[0]] >= by_n[ns[-1]] - 0.02, config

    # At the heaviest load, α = 0.7 pipelining does not lose to multi-hash
    # (paper: it improves FSC by ~3% and ARE by ~37%).
    assert fsc["alpha=0.7"][heaviest] >= fsc["multihash"][heaviest] - 0.01
    assert are["alpha=0.7"][heaviest] <= are["multihash"][heaviest] + 0.01
