"""Fig. 11: throughput (a), hash operations (b), memory accesses (c).

Each algorithm is loaded into the P4-style software switch and the same
trace is replayed; 11b/11c are *measured* per-packet operation counts
and 11a is the bmv2-calibrated cost model applied to them (DESIGN.md
documents this substitution).  Paper: HashFlow performs comparably to
HashPipe and ElasticSketch, and much better than FlowRadar.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figures import fig11


def test_fig11(benchmark, emit):
    result = run_once(benchmark, fig11)
    emit(result)
    for trace in ("caida", "campus", "isp1", "isp2"):
        rows = {
            r["algorithm"]: r for r in result.rows if r["trace"] == trace
        }
        # 11b: FlowRadar always computes 7 hashes; the others stay below.
        assert rows["FlowRadar"]["hashes_per_packet"] == pytest.approx(7.0, abs=0.01)
        for algo in ("HashFlow", "HashPipe", "ElasticSketch"):
            assert rows[algo]["hashes_per_packet"] < 5.0, (trace, algo)
        # 11c: FlowRadar performs the most memory accesses.
        for algo in ("HashFlow", "HashPipe", "ElasticSketch"):
            assert (
                rows[algo]["accesses_per_packet"]
                < rows["FlowRadar"]["accesses_per_packet"]
            ), (trace, algo)
        # 11a: therefore FlowRadar has the lowest modelled throughput.
        for algo in ("HashFlow", "HashPipe", "ElasticSketch"):
            assert (
                rows[algo]["throughput_kpps"]
                > rows["FlowRadar"]["throughput_kpps"]
            ), (trace, algo)
        # HashFlow is comparable to HashPipe/ElasticSketch (within 2x).
        hf = rows["HashFlow"]["throughput_kpps"]
        for algo in ("HashPipe", "ElasticSketch"):
            assert hf > 0.5 * rows[algo]["throughput_kpps"], (trace, algo)
