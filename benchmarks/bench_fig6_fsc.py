"""Fig. 6: Flow Set Coverage for flow record report.

Four traces x four algorithms under an equal memory budget, sweeping
the number of flows to 250K (scaled).  Paper: HashFlow nearly always
wins; FlowRadar leads only while underloaded, then collapses.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig6
from repro.experiments.report import pivot


def test_fig6(benchmark, emit):
    result = run_once(benchmark, fig6)
    emit(result)
    for trace in ("caida", "campus", "isp1", "isp2"):
        rows = [r for r in result.rows if r["trace"] == trace]
        series = pivot(
            type(result)(
                experiment_id="x", title="", columns=result.columns, rows=rows
            ),
            index="n_flows",
            series="algorithm",
            value="fsc",
        )
        heaviest = max(series["HashFlow"])
        # HashFlow beats ElasticSketch and FlowRadar everywhere.
        for algo in ("ElasticSketch", "FlowRadar"):
            assert series["HashFlow"][heaviest] >= series[algo][heaviest], (
                trace,
                algo,
            )
        # ... and HashPipe on every trace with elephants.  On the
        # all-mice ISP2 trace HashPipe's ~10% extra cells (it pays for
        # no ancillary table) can edge ahead on raw coverage — the one
        # regime where the paper's "nearly always" hedge applies.
        if trace == "isp2":
            assert (
                series["HashFlow"][heaviest] >= 0.85 * series["HashPipe"][heaviest]
            ), trace
        else:
            assert series["HashFlow"][heaviest] >= series["HashPipe"][heaviest], trace
        # FlowRadar's decode cliff: its FSC collapses under heavy load.
        assert series["FlowRadar"][heaviest] < 0.2, trace
        # Coverage shrinks with flow count for HashFlow (fixed table).
        lightest = min(series["HashFlow"])
        assert series["HashFlow"][lightest] >= series["HashFlow"][heaviest]
