"""Per-packet update throughput of every collector (pure Python).

Not a paper figure: measures this implementation's raw update speed so
regressions in the hot paths are visible.  Absolute numbers are Python
numbers, not line-rate claims — the paper's throughput experiment is
``bench_fig11_throughput.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import build_all
from repro.experiments.runner import make_workload
from repro.sketches.exact import ExactCollector
from repro.sketches.sampled import SampledNetFlow
from repro.sketches.spacesaving import SpaceSaving
from repro.traces.profiles import CAIDA

MEMORY = 64 * 1024
N_FLOWS = 4000


@pytest.fixture(scope="module")
def stream() -> list[int]:
    return make_workload(CAIDA, N_FLOWS, seed=1).keys


def _bench_collector(benchmark, collector, stream):
    def run():
        collector.reset()
        collector.process_all(stream)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert collector.meter.packets == len(stream)


@pytest.mark.parametrize("algo", ["HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"])
def test_update_throughput(benchmark, stream, algo):
    collector = build_all(MEMORY, seed=0)[algo]
    _bench_collector(benchmark, collector, stream)


def test_update_throughput_exact(benchmark, stream):
    _bench_collector(benchmark, ExactCollector(), stream)


def test_update_throughput_sampled(benchmark, stream):
    _bench_collector(benchmark, SampledNetFlow(every_n=100), stream)


def test_update_throughput_spacesaving(benchmark, stream):
    _bench_collector(benchmark, SpaceSaving(capacity=MEMORY * 8 // 168), stream)
