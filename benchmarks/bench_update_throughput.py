"""Per-packet update throughput of every collector (pure Python).

Not a paper figure: measures this implementation's raw update speed so
regressions in the hot paths are visible.  Absolute numbers are Python
numbers, not line-rate claims — the paper's throughput experiment is
``bench_fig11_throughput.py``.

Two paths are measured per collector (see DESIGN.md §2):

* **scalar** — one ``process(key)`` call per packet, the seed code path;
* **batched** — ``process_all``, which chunks the stream through
  ``process_batch`` and engages the vectorized batch-update engine for
  collectors that implement it (HashFlow, HashPipe, CountMinSketch).

``test_batch_speedup_recorded`` persists the scalar/batched ratio under
``benchmarks/results/`` and fails if the engine regresses below the
floor, so hot-path slowdowns are caught loudly.

``test_native_update_speedup_recorded`` measures the native C kernel
tier against the numpy tier on the same workload (the tiers are
bit-identical, so this ratio is pure speed) and merges the result into
``BENCH_headline.json``.  ``NATIVE_SPEEDUP_FLOOR`` (default 0 = record
only; the CI native-smoke job sets 3) turns the ratio into a gate.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, update_headline
from repro.native import native_available
from repro.specs import build, build_evaluated
from repro.experiments.report import save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.sketches.countmin import CountMinSketch
from repro.sketches.exact import ExactCollector
from repro.sketches.sampled import SampledNetFlow
from repro.sketches.spacesaving import SpaceSaving
from repro.traces.profiles import CAIDA

MEMORY = 64 * 1024
N_FLOWS = 4000

#: Minimum acceptable batched/scalar speedup for HashFlow.  Measured
#: ~4-5x; the floor is deliberately lower so slower CI machines do not
#: flake, while a real engine regression (ratio -> ~1) still fails.
SPEEDUP_FLOOR = 1.5

#: Minimum acceptable native/numpy update speedup for HashFlow
#: (0 = record only; the CI native-smoke job sets 3).  Measured ~9x.
NATIVE_SPEEDUP_FLOOR = float(os.environ.get("NATIVE_SPEEDUP_FLOOR", "0"))


@pytest.fixture(scope="module")
def workload():
    return make_workload(CAIDA, N_FLOWS, seed=1)


@pytest.fixture(scope="module")
def stream(workload) -> list[int]:
    return workload.keys


def _bench_collector(benchmark, collector, stream):
    def run():
        collector.reset()
        collector.process_all(stream)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert collector.meter.packets == len(stream)


@pytest.mark.parametrize("algo", ["HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"])
def test_update_throughput(benchmark, stream, algo):
    """Batched path: process_all chunks through the batch engine."""
    collector = build_evaluated(MEMORY, seed=0)[algo]
    _bench_collector(benchmark, collector, stream)


@pytest.mark.parametrize("algo", ["HashFlow", "HashPipe"])
def test_update_throughput_scalar(benchmark, stream, algo):
    """Scalar path: one process() call per packet (the seed code path)."""
    collector = build_evaluated(MEMORY, seed=0)[algo]

    def run():
        collector.reset()
        process = collector.process
        for key in stream:
            process(key)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert collector.meter.packets == len(stream)


def test_update_throughput_exact(benchmark, stream):
    _bench_collector(benchmark, ExactCollector(), stream)


def test_update_throughput_sampled(benchmark, stream):
    _bench_collector(benchmark, SampledNetFlow(every_n=100), stream)


def test_update_throughput_spacesaving(benchmark, stream):
    _bench_collector(benchmark, SpaceSaving(capacity=MEMORY * 8 // 168), stream)


# ----------------------------------------------------------------------
# Scalar-vs-batched speedup, persisted under benchmarks/results/
# ----------------------------------------------------------------------
def _best_of(n_rounds, run):
    best = float("inf")
    for _ in range(n_rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_speedup_recorded(stream):
    """Record the batched/scalar speedup of every batched update path.

    The batched engine must produce bit-identical state (enforced by
    ``tests/test_batch_engine.py``); this bench guards its reason to
    exist — the speedup — and persists the measured ratios.
    """
    result = ExperimentResult(
        experiment_id="update_throughput_batch_speedup",
        title="Batched vs scalar update throughput (best of 3)",
        columns=["algorithm", "scalar_mpps", "batched_mpps", "speedup"],
        params={"memory_bytes": MEMORY, "n_flows": N_FLOWS, "packets": len(stream)},
        notes="scalar = per-packet process()/add(); batched = "
        "process_all()/add_batch() through the batch-update engine.",
    )
    n = len(stream)
    speedups = {}
    for algo in ["HashFlow", "HashPipe"]:
        collector = build_evaluated(MEMORY, seed=0)[algo]

        def run_scalar():
            collector.reset()
            process = collector.process
            for key in stream:
                process(key)

        def run_batched():
            collector.reset()
            collector.process_all(stream)

        scalar = _best_of(3, run_scalar)
        batched = _best_of(3, run_batched)
        speedups[algo] = scalar / batched
        result.add_row(
            algorithm=algo,
            scalar_mpps=round(n / scalar / 1e6, 3),
            batched_mpps=round(n / batched / 1e6, 3),
            speedup=round(scalar / batched, 2),
        )

    sketch_args = dict(width=MEMORY // 4, depth=3, counter_bits=8, seed=0)
    cms = CountMinSketch(**sketch_args)

    def cms_scalar():
        cms.reset()
        add = cms.add
        for key in stream:
            add(key)

    def cms_batched():
        cms.reset()
        cms.add_batch(stream)

    scalar = _best_of(3, cms_scalar)
    batched = _best_of(3, cms_batched)
    result.add_row(
        algorithm="CountMinSketch",
        scalar_mpps=round(n / scalar / 1e6, 3),
        batched_mpps=round(n / batched / 1e6, 3),
        speedup=round(scalar / batched, 2),
    )

    save_result(result, RESULTS_DIR)
    assert speedups["HashFlow"] >= SPEEDUP_FLOOR, (
        f"HashFlow batched path is only {speedups['HashFlow']:.2f}x the "
        f"scalar path (floor {SPEEDUP_FLOOR}x) — batch engine regression"
    )


# ----------------------------------------------------------------------
# Native kernel tier vs the numpy tier, persisted into the headline
# ----------------------------------------------------------------------
def test_native_update_speedup_recorded(workload):
    """Record the native/numpy update speedup per batched collector.

    Bit-identity is enforced by ``tests/test_native_kernels.py``; this
    bench guards the native tier's reason to exist — the speedup — and
    merges HashFlow's ratio into the headline trajectory.  Both tiers
    consume the workload's cached :class:`KeyBatch` (presplit halves),
    so the ratio measures the table walk, not Python-int coercion both
    tiers would pay identically.
    """
    if not native_available():
        pytest.skip("native kernel tier unavailable (no C compiler)")
    batch = workload.batch
    n = len(batch)
    result = ExperimentResult(
        experiment_id="update_throughput_native_speedup",
        title="Native vs numpy update throughput (best of 3)",
        columns=["algorithm", "numpy_mpps", "native_mpps", "speedup"],
        params={"memory_bytes": MEMORY, "n_flows": N_FLOWS, "packets": n},
        notes="Both tiers run process_all over the same presplit "
        "KeyBatch; the tiers are bit-identical, so the ratio is pure "
        "speed.",
    )
    speedups: dict[str, float] = {}
    rates: dict[str, float] = {}
    for kind, algo in (("hashflow", "HashFlow"), ("hashpipe", "HashPipe")):
        times = {}
        for tier in ("numpy", "native"):
            collector = build(kind, memory_bytes=MEMORY, seed=0, kernel=tier)

            def run():
                collector.reset()
                collector.process_all(batch)

            times[tier] = _best_of(3, run)
        speedups[algo] = times["numpy"] / times["native"]
        rates[algo] = n / times["native"]
        result.add_row(
            algorithm=algo,
            numpy_mpps=round(n / times["numpy"] / 1e6, 3),
            native_mpps=round(n / times["native"] / 1e6, 3),
            speedup=round(speedups[algo], 2),
        )

    cms_times = {}
    for tier in ("numpy", "native"):
        cms = CountMinSketch(
            width=MEMORY // 4, depth=3, counter_bits=8, seed=0, kernel=tier
        )

        def run_cms():
            cms.reset()
            cms.add_batch(batch)

        cms_times[tier] = _best_of(3, run_cms)
    result.add_row(
        algorithm="CountMinSketch",
        numpy_mpps=round(n / cms_times["numpy"] / 1e6, 3),
        native_mpps=round(n / cms_times["native"] / 1e6, 3),
        speedup=round(cms_times["numpy"] / cms_times["native"], 2),
    )

    save_result(result, RESULTS_DIR)
    update_headline(
        native_update_pps=round(rates["HashFlow"]),
        native_update_speedup=round(speedups["HashFlow"], 2),
    )
    if NATIVE_SPEEDUP_FLOOR > 0:
        assert speedups["HashFlow"] >= NATIVE_SPEEDUP_FLOOR, (
            f"HashFlow native tier is only {speedups['HashFlow']:.2f}x the "
            f"numpy tier (floor {NATIVE_SPEEDUP_FLOOR}x) — native kernel "
            "regression"
        )
