"""Network-wide measurement benches (extension; the paper's future work).

Two deployment models over the same overloaded workload:

* *redundant* — every switch on a flow's path measures it; the central
  collector max-merges (recovers flows any one switch dropped);
* *sharded* — each flow has one owner switch; capacity sums.

Both must beat a single switch with the same per-switch memory.  The
three deployments are described as plan cells (per-switch collectors by
spec, the fabric by metric params) and executed through the parallel
sweep engine — each deployment is one independent cell, so
``REPRO_JOBS=3`` runs them concurrently with bit-identical rows.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.parallel import SweepCell, WorkloadRef, run_plan
from repro.specs import CollectorSpec
from repro.traces.profiles import CAIDA

CELLS_PER_SWITCH = 2048
N_FLOWS = 4 * 2048  # 4x one switch's capacity


def test_network_wide_coverage(benchmark, emit):
    workload_ref = WorkloadRef(profile=CAIDA.name, n_flows=N_FLOWS, seed=23)
    result = ExperimentResult(
        experiment_id="netwide_coverage",
        title="Single switch vs redundant vs sharded deployments",
        columns=["deployment", "switches", "fsc", "records"],
        params={"cells_per_switch": CELLS_PER_SWITCH, "n_flows": N_FLOWS},
    )
    cells = [
        # Single switch baseline.
        SweepCell(
            workload=workload_ref,
            spec_or_kind=CollectorSpec(
                "hashflow", {"main_cells": CELLS_PER_SWITCH, "seed": 7}
            ),
            metrics=("fsc", "records"),
            label=("single", 1),
        ),
        # Redundant path-based deployment over a 4+2 fabric: one spec
        # describes every switch, seeds derived from switch names.
        SweepCell(
            workload=workload_ref,
            spec_or_kind=CollectorSpec(
                "hashflow", {"main_cells": CELLS_PER_SWITCH, "seed": 23}
            ),
            metrics=("netwide_redundant",),
            params={"k_edge": 4, "k_core": 2, "router_seed": 23},
            label=("redundant", None),
        ),
        # Sharded deployment: 6 owner switches from one spec.
        SweepCell(
            workload=workload_ref,
            spec_or_kind=CollectorSpec(
                "sharded",
                {
                    "collector": CollectorSpec(
                        "hashflow", {"main_cells": CELLS_PER_SWITCH, "seed": 100}
                    ).to_dict(),
                    "n_shards": 6,
                    "seed": 23,
                },
            ),
            metrics=("fsc", "records"),
            label=("sharded", 6),
        ),
    ]

    def run():
        for cell, cell_result in zip(cells, run_plan(cells)):
            deployment, switches = cell.label
            values = cell_result.rows[0]
            result.add_row(
                deployment=deployment,
                switches=values.get("switches", switches),
                fsc=round(values["fsc"], 4),
                records=values["records"],
            )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    rows = {r["deployment"]: r for r in result.rows}
    assert rows["redundant"]["fsc"] > rows["single"]["fsc"]
    assert rows["sharded"]["fsc"] > rows["redundant"]["fsc"]
    # Sharding pools capacity: 6 x 2048 cells > 4x-overloaded flow count,
    # so coverage should approach 1.
    assert rows["sharded"]["fsc"] > 0.9
