"""Network-wide measurement benches (extension; the paper's future work).

Two deployment models over the same overloaded workload:

* *redundant* — every switch on a flow's path measures it; the central
  collector max-merges (recovers flows any one switch dropped);
* *sharded* — each flow has one owner switch; capacity sums.

Both must beat a single switch with the same per-switch memory.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR
from repro.analysis.metrics import flow_set_coverage
from repro.core.hashflow import HashFlow
from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult, make_workload
from repro.netwide.deployment import NetworkDeployment
from repro.netwide.sharding import ShardedCollector
from repro.netwide.topology import FlowRouter, fat_tree_core
from repro.specs import CollectorSpec
from repro.traces.profiles import CAIDA

CELLS_PER_SWITCH = 2048
N_FLOWS = 4 * 2048  # 4x one switch's capacity


def test_network_wide_coverage(benchmark, emit):
    workload = make_workload(CAIDA, N_FLOWS, seed=23)
    truth = workload.true_sizes
    result = ExperimentResult(
        experiment_id="netwide_coverage",
        title="Single switch vs redundant vs sharded deployments",
        columns=["deployment", "switches", "fsc", "records"],
        params={"cells_per_switch": CELLS_PER_SWITCH, "n_flows": N_FLOWS},
    )

    def run():
        # Single switch baseline.
        single = HashFlow(main_cells=CELLS_PER_SWITCH, seed=7)
        single.process_all(workload.keys)
        result.add_row(
            deployment="single",
            switches=1,
            fsc=round(flow_set_coverage(single.records(), truth), 4),
            records=len(single.records()),
        )
        # Redundant path-based deployment over a 4+2 fabric: one spec
        # describes every switch, seeds derived from switch names.
        router = FlowRouter(fat_tree_core(4, 2), seed=23)
        deployment = NetworkDeployment(
            router,
            CollectorSpec("hashflow", {"main_cells": CELLS_PER_SWITCH, "seed": 23}),
        )
        report = deployment.run(workload.trace)
        result.add_row(
            deployment="redundant",
            switches=len(report.per_switch_records),
            fsc=round(report.coverage(set(truth)), 4),
            records=len(report.merged_records),
        )
        # Sharded deployment: 6 owner switches from one spec.
        sharded = ShardedCollector(
            CollectorSpec("hashflow", {"main_cells": CELLS_PER_SWITCH, "seed": 100}),
            n_shards=6,
            seed=23,
        )
        sharded.process_all(workload.keys)
        result.add_row(
            deployment="sharded",
            switches=6,
            fsc=round(flow_set_coverage(sharded.records(), truth), 4),
            records=len(sharded.records()),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)

    rows = {r["deployment"]: r for r in result.rows}
    assert rows["redundant"]["fsc"] > rows["single"]["fsc"]
    assert rows["sharded"]["fsc"] > rows["redundant"]["fsc"]
    # Sharding pools capacity: 6 x 2048 cells > 4x-overloaded flow count,
    # so coverage should approach 1.
    assert rows["sharded"]["fsc"] > 0.9
