"""Serial vs shard-parallel ingest for ``ShardedCollector`` (not a
paper figure).

Times one large owner-routed ingest through ``ShardedCollector`` at
``jobs=1`` (serial sub-batch routing) and ``jobs=2/4`` (shared-memory
plane ingest, :mod:`repro.shm`), asserts the parallel collector is
bit-identical to the serial one (records, per-shard merged meters,
batched query answers), and persists the measured rates:

* ``benchmarks/results/BENCH_shard_ingest.json`` — this bench's full
  record (per-job-count wall clock, pps and speedup);
* ``BENCH_headline.json`` at the repo root — ``shard_ingest_pps`` and
  ``shard_speedup_2/4`` join the headline perf trajectory.

Speedup floors are environment-driven because they are *hardware*
claims: ``SHARD_SPEEDUP_FLOOR`` (default 0 = record only) is asserted
against the 2-worker speedup — CI sets it on multi-core runners.  On a
single-core container a multi-worker speedup is not an aspirational
number that came in low, it is unmeasurable: process-pool overhead
guarantees < 1x.  So with fewer than 2 CPUs the timed comparison is
*skipped with an explicit reason* and the headline records
``shard_speedup_* = null`` plus that reason (the established
``parallel_skip_reason`` convention), instead of silently persisting a
sub-1x figure a future PR might mistake for a regression.  Stream
sizes follow ``REPRO_SCALE``; the measured kernel tier is whatever
``REPRO_KERNEL`` resolves to (CI measures the native tier).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import RESULTS_DIR, update_headline
from repro.native import kernel_info
from repro.netwide.sharding import ShardedCollector
from repro.specs import CollectorSpec, resolve_scale
from repro.traces.profiles import CAIDA

JSON_PATH = RESULTS_DIR / "BENCH_shard_ingest.json"

#: Minimum acceptable 2-worker ingest speedup (0 = record only; CI
#: sets 1.5 on multi-core runners).
SPEEDUP_FLOOR = float(os.environ.get("SHARD_SPEEDUP_FLOOR", "0"))

JOB_COUNTS = (2, 4)
N_SHARDS = 8
CHUNK = 65_536

#: Passes over the stream per timed run.  Repetition amplifies the
#: timed ingest work without paying more trace generation, keeping the
#: measured region large relative to per-batch dispatch overhead (the
#: serial and parallel collectors see identical packet sequences, so
#: the bit-identity checks still hold).
REPEATS = 4


def _shard_spec(scale: float) -> CollectorSpec:
    cells = max(4096, int(round(262_144 * scale)))
    return CollectorSpec("hashflow", {"main_cells": cells, "seed": 5})


def _build(spec: CollectorSpec, jobs: int) -> ShardedCollector:
    return ShardedCollector(spec, n_shards=N_SHARDS, seed=17, jobs=jobs)


def _timed_ingest(collector: ShardedCollector, batch) -> float:
    """Feed the stream ``REPEATS`` times in chunks, timing wall clock."""
    from repro.flow.batch import KeyBatch

    lo, hi = batch.halves()
    keys = batch.keys
    start = time.perf_counter()
    for _ in range(REPEATS):
        for pos in range(0, len(batch), CHUNK):
            stop = pos + CHUNK
            collector.process_batch(
                KeyBatch(keys[pos:stop], lo[pos:stop], hi[pos:stop])
            )
    return time.perf_counter() - start


def _environment_fields() -> dict:
    """The measurement environment every headline record must carry."""
    info = kernel_info()
    return {
        "cpus": os.cpu_count(),
        "kernel": info["requested"],
        "native_available": info["available"],
        "compiler": info["compiler"],
    }


def test_shard_ingest_recorded():
    """Record serial-vs-parallel shard ingest wall clock."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        reason = (
            f"shard-parallel speedup not measurable on {cpus} CPU: "
            "process-pool overhead guarantees < 1x"
        )
        update_headline(
            shard_ingest_pps=None,
            shard_speedup_2=None,
            shard_speedup_4=None,
            shard_skip_reason=reason,
            **_environment_fields(),
        )
        pytest.skip(reason)
    scale = resolve_scale(None)
    n_flows = max(50_000, int(round(2_500_000 * scale)))
    trace = CAIDA.generate(n_flows=n_flows, seed=23)
    batch = trace.key_batch()
    spec = _shard_spec(scale)

    serial = _build(spec, jobs=1)
    serial_s = _timed_ingest(serial, batch)

    timings: dict[int, float] = {}
    parallels: dict[int, ShardedCollector] = {}
    for jobs in JOB_COUNTS:
        collector = _build(spec, jobs=jobs)
        # Pool startup happens outside the timed region (a per-
        # collector constant, not a per-packet cost).
        collector.warm()
        timings[jobs] = _timed_ingest(collector, batch)
        parallels[jobs] = collector

    probe = list(serial.records())[:2000]
    for jobs, collector in parallels.items():
        assert collector.records() == serial.records(), (
            f"jobs={jobs} records diverged from serial"
        )
        assert (
            collector.query_batch(probe) == serial.query_batch(probe)
        ).all(), f"jobs={jobs} query answers diverged from serial"
        for s, p in zip(serial.shards, collector.shards):
            assert (
                s.meter.packets,
                s.meter.hashes,
                s.meter.reads,
                s.meter.writes,
            ) == (
                p.meter.packets,
                p.meter.hashes,
                p.meter.reads,
                p.meter.writes,
            ), f"jobs={jobs} merged shard meters diverged from serial"
        collector.close()

    fed = len(batch) * REPEATS
    speedups = {jobs: serial_s / timings[jobs] for jobs in JOB_COUNTS}
    pps = {jobs: fed / timings[jobs] for jobs in JOB_COUNTS}
    record = {
        "experiment": "shard_ingest",
        "n_flows": n_flows,
        "n_packets": len(batch),
        "repeats": REPEATS,
        "n_shards": N_SHARDS,
        "cpus": cpus,
        "scale": scale,
        "kernel": kernel_info()["requested"],
        "serial_s": round(serial_s, 3),
        "serial_pps": round(fed / serial_s),
        "parallel_s": {str(j): round(t, 3) for j, t in timings.items()},
        "parallel_pps": {str(j): round(p) for j, p in pps.items()},
        "speedup": {str(j): round(s, 2) for j, s in speedups.items()},
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nshard ingest: serial {serial_s:.2f}s, " + ", ".join(
        f"{j} workers {timings[j]:.2f}s ({speedups[j]:.2f}x)"
        for j in JOB_COUNTS
    ))

    update_headline(
        shard_ingest_pps=round(pps[2]),
        shard_speedup_2=round(speedups[2], 2),
        shard_speedup_4=round(speedups[4], 2),
        shard_skip_reason=None,
        **_environment_fields(),
    )

    if SPEEDUP_FLOOR > 0:
        assert speedups[2] >= SPEEDUP_FLOOR, (
            f"2-worker shard ingest speedup is only {speedups[2]:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x) on {cpus} CPUs — "
            "shared-memory ingest regression"
        )
