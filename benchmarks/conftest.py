"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures via
``repro.experiments.figures``, prints the rows the paper reports, and
writes them under ``benchmarks/results/``.  Sizes follow the
``REPRO_SCALE`` environment variable (default 0.1; 1.0 = paper scale —
see DESIGN.md §4 "Scaling convention" for why the paper's ratios are
preserved at any scale); sweep-shaped benches execute through
``repro.parallel`` and honour ``REPRO_JOBS`` (DESIGN.md §6).

The repo's headline perf trajectory — update packets/sec, query
ops/sec, native-kernel speedups, parallel speedup — is persisted at the
repo root as ``BENCH_headline.json``, so future PRs have a baseline to
diff against.  Several benches contribute fields; each merges its own
through :func:`update_headline` instead of clobbering the file, and the
record always carries the environment it was measured in (``cpus``,
``kernel`` tier, compiler availability) so a number can never be
mistaken for one from a bigger machine.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.report import render_table, save_result
from repro.experiments.runner import ExperimentResult

RESULTS_DIR = Path(__file__).resolve().parent / "results"

HEADLINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_headline.json"


def update_headline(**fields) -> dict:
    """Merge fields into ``BENCH_headline.json`` (read-modify-write).

    Benches run in any order and each owns a few keys; merging keeps
    one bench's numbers from erasing another's.  Returns the merged
    record.
    """
    record: dict = {}
    if HEADLINE_PATH.exists():
        record = json.loads(HEADLINE_PATH.read_text())
    record.update(fields)
    HEADLINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return record


@pytest.fixture()
def emit():
    """Print a result table and persist it under benchmarks/results/."""

    def _emit(result: ExperimentResult) -> ExperimentResult:
        text = render_table(result)
        print()
        print(text)
        save_result(result, RESULTS_DIR)
        return result

    return _emit


def run_once(benchmark, func, **kwargs):
    """Benchmark a whole-figure regeneration exactly once.

    Figure regenerations are minutes-long at full scale; pedantic mode
    with a single round reports wall time without re-running.
    """
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
