"""Fig. 3: cumulative flow-size distribution of the four traces.

All traces must exhibit the paper's skewness pattern — most flows are
mice, most packets come from a few elephants — with ISP2 the most
extreme (>99% of flows shorter than 5 packets).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import fig3


def test_fig3(benchmark, emit):
    result = run_once(benchmark, fig3)
    emit(result)
    rows = {r["trace"]: r for r in result.rows}
    for name, row in rows.items():
        # Skewed: the bulk of flows are small in every trace.
        assert row["cdf@10"] > 0.75, name
        # CDF reaches 1 at the largest probe.
        assert row["cdf@100000"] == 1.0, name
    # ISP2's sampled shape: >99% of flows below 5 packets.
    assert rows["isp2"]["cdf@5"] > 0.99
    # Campus has the heaviest tail (lowest mass at small sizes).
    assert rows["campus"]["cdf@2"] == min(r["cdf@2"] for r in rows.values())
