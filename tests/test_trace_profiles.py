"""Tests for repro.traces.profiles: Table I calibration."""

from __future__ import annotations

import pytest

from repro.flow.stats import cdf_at, size_cdf, top_fraction_share
from repro.traces.profiles import PROFILES, TraceProfile, get_profile


class TestRegistry:
    def test_all_four_paper_traces_present(self):
        assert set(PROFILES) == {"caida", "campus", "isp1", "isp2"}

    def test_get_profile_case_insensitive(self):
        assert get_profile("CAIDA") is PROFILES["caida"]

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown trace profile"):
            get_profile("nope")

    def test_table1_metadata(self):
        assert PROFILES["caida"].target_mean == 3.2
        assert PROFILES["caida"].max_size == 110_900
        assert PROFILES["campus"].target_mean == 15.1
        assert PROFILES["campus"].max_size == 289_877
        assert PROFILES["isp1"].target_mean == 5.2
        assert PROFILES["isp1"].max_size == 84_357
        assert PROFILES["isp2"].target_mean == 1.3
        assert PROFILES["isp2"].max_size == 2_441


@pytest.mark.parametrize("name", ["caida", "campus", "isp1", "isp2"])
class TestCalibration:
    def test_mean_flow_size_near_table1(self, name):
        profile = PROFILES[name]
        trace = profile.generate(n_flows=20_000, seed=11)
        mean = trace.stats().mean_flow_size
        assert mean == pytest.approx(profile.target_mean, rel=0.25)

    def test_max_respects_cap(self, name):
        profile = PROFILES[name]
        trace = profile.generate(n_flows=5_000, seed=11)
        assert trace.stats().max_flow_size <= profile.max_size

    def test_skewed_cdf(self, name):
        """Fig. 3: most flows are mice in every trace."""
        profile = PROFILES[name]
        trace = profile.generate(n_flows=10_000, seed=11)
        cdf = size_cdf(trace.true_sizes())
        assert cdf_at(cdf, 10) > 0.75


class TestPaperSpecificShape:
    def test_campus_top_flows_dominate(self):
        """Section II: 7.7% of campus flows carry >85% of packets."""
        trace = PROFILES["campus"].generate(n_flows=20_000, seed=13)
        share = top_fraction_share(trace.true_sizes(), 0.077)
        assert share > 0.78

    def test_isp2_nearly_all_mice(self):
        """Section IV-A: >99% of ISP2 flows have fewer than 5 packets."""
        trace = PROFILES["isp2"].generate(n_flows=20_000, seed=13)
        cdf = size_cdf(trace.true_sizes())
        assert cdf_at(cdf, 4) > 0.99

    def test_force_max_pins_table1_maximum(self):
        profile = PROFILES["isp2"]
        trace = profile.generate(n_flows=2_000, seed=5, force_max=True)
        assert trace.stats().max_flow_size == profile.max_size

    def test_profiles_generate_independent_traces(self):
        a = PROFILES["caida"].generate(n_flows=100, seed=0)
        b = PROFILES["isp1"].generate(n_flows=100, seed=0)
        assert set(a.flow_keys) != set(b.flow_keys)


class TestCustomProfile:
    def test_size_model_round_trip(self):
        profile = TraceProfile(
            name="custom",
            date="2026/01/01",
            target_mean=4.0,
            max_size=10_000,
            mice_p=0.7,
            tail_alpha=1.5,
            tail_min=10.0,
        )
        model = profile.size_model()
        assert model.mean() == pytest.approx(4.0, rel=1e-9)
