"""Tests for repro.switchsim: registers, costs, pipeline, switch, programs."""

from __future__ import annotations

import pytest

from repro.core.hashflow import HashFlow
from repro.flow.key import pack_key
from repro.flow.packet import Packet
from repro.sketches.base import CostMeter
from repro.switchsim.costs import BMV2_BASELINE_KPPS, CostModel
from repro.switchsim.pipeline import (
    DROP_PORT,
    AclStage,
    L3ForwardStage,
    MeasurementStage,
    PacketContext,
    ParserStage,
    Pipeline,
)
from repro.switchsim.programs import RegisterHashFlowStage, measurement_switch
from repro.switchsim.registers import RegisterArray
from repro.switchsim.switch import SoftwareSwitch


def make_packet(src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=80, proto=6):
    from repro.flow.key import parse_ip

    return Packet(key=pack_key(parse_ip(src), parse_ip(dst), sport, dport, proto))


class TestRegisterArray:
    def test_read_write(self):
        meter = CostMeter()
        reg = RegisterArray("r", 8, 32, meter)
        reg.write(3, 77)
        assert reg.read(3) == 77
        assert meter.writes == 1
        assert meter.reads == 1

    def test_width_masking(self):
        reg = RegisterArray("r", 4, 8)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF

    def test_read_modify_write(self):
        reg = RegisterArray("r", 4, 32)
        assert reg.read_modify_write(1, 5) == 5
        assert reg.read_modify_write(1, 5) == 10

    def test_bounds(self):
        reg = RegisterArray("r", 4, 32)
        with pytest.raises(IndexError):
            reg.read(4)
        with pytest.raises(IndexError):
            reg.write(-1, 0)

    def test_snapshot_and_reset_not_metered(self):
        meter = CostMeter()
        reg = RegisterArray("r", 4, 32, meter)
        reg.write(0, 1)
        before = meter.memory_accesses
        reg.snapshot()
        reg.reset()
        assert meter.memory_accesses == before
        assert reg.read(0) == 0

    def test_memory_bits(self):
        assert RegisterArray("r", 16, 8).memory_bits == 128

    @pytest.mark.parametrize("kwargs", [{"size": 0, "width_bits": 8}, {"size": 4, "width_bits": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RegisterArray("r", **kwargs)


class TestCostModel:
    def test_baseline_calibration(self):
        """An empty pipeline forwards at bmv2's ~20 Kpps."""
        model = CostModel()
        assert model.throughput_kpps(0, 0) == pytest.approx(BMV2_BASELINE_KPPS)

    def test_more_ops_less_throughput(self):
        model = CostModel()
        assert model.throughput_kpps(7, 20) < model.throughput_kpps(1, 3)

    def test_packet_cost_additive(self):
        model = CostModel(base_us=10, hash_us=2, access_us=1)
        assert model.packet_cost_us(3, 4) == 10 + 6 + 4

    def test_throughput_from_meter(self):
        model = CostModel(base_us=10, hash_us=2, access_us=1)
        meter = CostMeter()
        meter.packets, meter.hashes, meter.reads, meter.writes = 10, 30, 20, 20
        assert model.throughput_from_meter(meter) == pytest.approx(
            1e3 / (10 + 3 * 2 + 4 * 1)
        )

    def test_throughput_from_empty_meter_is_baseline(self):
        """An idle collector predicts the unloaded baseline, not NaN
        (per_packet is all-NaN for a never-fed meter)."""
        model = CostModel(base_us=10, hash_us=2, access_us=1)
        assert model.throughput_from_meter(CostMeter()) == pytest.approx(1e3 / 10)


class TestPipelineStages:
    def test_parser_extracts_fields(self):
        ctx = PacketContext(packet=make_packet(sport=1234, dport=443, proto=17))
        ParserStage().apply(ctx)
        assert ctx.fields["src_port"] == 1234
        assert ctx.fields["dst_port"] == 443
        assert ctx.fields["proto"] == 17

    def test_l3_forwarding_table(self):
        from repro.flow.key import parse_ip

        pipe = Pipeline(
            [ParserStage(), L3ForwardStage({parse_ip("10.0.0.2"): 7}, default_port=1)]
        )
        assert pipe.process(make_packet(dst="10.0.0.2")).egress_port == 7
        assert pipe.process(make_packet(dst="9.9.9.9")).egress_port == 1

    def test_acl_drops(self):
        pipe = Pipeline(
            [ParserStage(), AclStage(blocked_dst_ports={23}), L3ForwardStage()]
        )
        ctx = pipe.process(make_packet(dport=23))
        # L3 stage runs after ACL and would overwrite; ACL marks drop first.
        # The forwarding stage still assigns a port, so ACL must come last
        # or forwarding must respect drops; we assert the ACL-only pipeline.
        acl_only = Pipeline([ParserStage(), AclStage(blocked_dst_ports={23})])
        assert acl_only.process(make_packet(dport=23)).dropped

    def test_acl_blocks_protocol(self):
        pipe = Pipeline([ParserStage(), AclStage(blocked_protos={17})])
        assert pipe.process(make_packet(proto=17)).dropped
        assert pipe.process(make_packet(proto=6)).egress_port is None  # undecided

    def test_measurement_stage_feeds_collector(self):
        hf = HashFlow(main_cells=64)
        pipe = Pipeline([ParserStage(), MeasurementStage(hf), L3ForwardStage()])
        pkt = make_packet()
        pipe.process(pkt)
        pipe.process(pkt)
        assert hf.query(pkt.key) == 2

    def test_measurement_skips_dropped_by_default(self):
        hf = HashFlow(main_cells=64)
        pipe = Pipeline(
            [ParserStage(), AclStage(blocked_protos={6}), MeasurementStage(hf)]
        )
        pipe.process(make_packet(proto=6))
        assert hf.meter.packets == 0

    def test_stage_names(self):
        pipe = Pipeline([ParserStage(), L3ForwardStage()])
        assert pipe.stage_names() == ["parser", "l3_forward"]


class TestSoftwareSwitch:
    def test_run_trace_counts(self, tiny_trace):
        hf = HashFlow(main_cells=64)
        switch = measurement_switch(hf)
        report = switch.run_trace(tiny_trace)
        assert report.packets == len(tiny_trace)
        assert report.forwarded == len(tiny_trace)
        assert report.dropped == 0

    def test_report_uses_measured_costs(self, small_trace):
        hf = HashFlow(main_cells=512)
        switch = measurement_switch(hf)
        report = switch.run_trace(small_trace)
        assert report.hashes_per_packet == pytest.approx(
            hf.meter.per_packet()["hashes"]
        )
        assert 0 < report.throughput_kpps < BMV2_BASELINE_KPPS

    def test_inject_returns_port(self):
        switch = measurement_switch(HashFlow(main_cells=16))
        assert switch.inject(make_packet()) == 0

    def test_reset_counters(self, tiny_trace):
        switch = measurement_switch(HashFlow(main_cells=16))
        switch.run_trace(tiny_trace)
        switch.reset_counters()
        assert switch.packets == 0

    def test_switch_without_measurement_stage(self):
        switch = SoftwareSwitch(Pipeline([ParserStage(), L3ForwardStage()]))
        switch.inject(make_packet())
        report = switch.report()
        assert report.hashes_per_packet == 0.0
        assert report.throughput_kpps == pytest.approx(BMV2_BASELINE_KPPS)


class TestRegisterHashFlowStage:
    def test_register_rendering_matches_collector_main_table(self, small_trace):
        """The register-level multi-hash table must behave exactly like
        the object-level MultiHashTable on the probe path."""
        from repro.core.maintable import MultiHashTable

        stage = RegisterHashFlowStage(n_cells=256, depth=3, seed=9)
        table = MultiHashTable(256, depth=3, seed=9)
        for key in small_trace.keys():
            stage.update(key)
            table.probe(key)
        assert stage.records() == table.records()

    def test_counts_register_accesses(self):
        stage = RegisterHashFlowStage(n_cells=8, depth=2, seed=1)
        stage.update(12345)
        assert stage.meter.reads > 0
        assert stage.meter.writes == 3  # key_hi, key_lo, count on fresh insert

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterHashFlowStage(n_cells=0)
        with pytest.raises(ValueError):
            RegisterHashFlowStage(n_cells=8, depth=0)
