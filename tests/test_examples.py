"""Smoke tests: every example script runs end to end (at reduced size).

Each example module is imported from its file and its ``main()`` is run
after shrinking the module-level workload constants, so the scripts are
exercised exactly as shipped but finish in seconds.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a throwaway module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys, monkeypatch):
        module = load_example("quickstart")
        # quickstart has no module constant; patch the trace size through
        # the profile's generate by running as-is at its (small) size.
        module.main()
        out = capsys.readouterr().out
        assert "records reported" in out
        assert "main-table utilization" in out

    def test_heavy_hitter_monitoring(self, capsys):
        module = load_example("heavy_hitter_monitoring")
        module.N_FLOWS = 2000
        module.MEMORY_BYTES = 32 * 1024
        module.THRESHOLDS = (25, 100)
        module.main()
        out = capsys.readouterr().out
        assert "HashFlow" in out
        assert "top talkers" in out

    def test_trace_analysis(self, capsys):
        module = load_example("trace_analysis")
        module.N_FLOWS = 2000
        module.main()
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "pcap round trip" in out
        assert "OK" in out

    def test_switch_pipeline_demo(self, capsys):
        module = load_example("switch_pipeline_demo")
        module.N_FLOWS = 1500
        module.main()
        out = capsys.readouterr().out
        assert "Kpps" in out
        assert "register-level main table" in out

    def test_network_wide(self, capsys):
        module = load_example("network_wide")
        module.N_FLOWS = 2000
        module.CELLS_PER_SWITCH = 600
        module.main()
        out = capsys.readouterr().out
        assert "network-wide merged coverage" in out

    def test_model_exploration(self, capsys):
        module = load_example("model_exploration")
        module.N = 5000
        module.main()
        out = capsys.readouterr().out
        assert "sweet spot" in out
        assert "0.7" in out

    def test_ddos_detection(self, capsys):
        module = load_example("ddos_detection")
        module.N_FLOWS = 2000
        module.main()
        out = capsys.readouterr().out
        assert "ALERT" in out
        assert "victim" in out
        assert "port scan" in out

    def test_netflow_export(self, capsys):
        module = load_example("netflow_export")
        module.N_FLOWS = 1500
        module.main()
        out = capsys.readouterr().out
        assert "NetFlow v5" in out
        assert "OK" in out
        assert "MISMATCH" not in out
        assert "spec round trip" in out

    def test_epoch_monitoring(self, capsys):
        module = load_example("epoch_monitoring")
        module.N_FLOWS = 1800
        module.CELLS = 512
        module.EPOCH_PACKETS = 4000
        module.main()
        out = capsys.readouterr().out
        assert "epoch runner" in out
        assert "stream pipeline" in out
        assert "adapter: match" in out
        assert "timeout pipeline" in out
        assert "AdaptiveHashFlow" in out

    def test_p4_codegen(self, capsys, tmp_path, monkeypatch):
        module = load_example("p4_codegen")
        module.MEMORY_BYTES = 64 * 1024
        out_file = tmp_path / "hf.p4"
        monkeypatch.setattr("sys.argv", ["p4_codegen.py", str(out_file)])
        module.main()
        out = capsys.readouterr().out
        assert "probe stages in ingress: 3" in out
        assert out_file.exists()
        assert "V1Switch(" in out_file.read_text()


class TestExampleHygiene:
    def test_all_examples_have_main_guard(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name

    def test_quickstart_exists(self):
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    def test_at_least_four_examples(self):
        assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 4
