"""Tests for repro.experiments.figures (tiny-scale smoke + shape checks).

These run every experiment at a very small scale and assert structural
properties plus the paper's headline orderings where they are robust at
small scale.  Full-scale regeneration lives in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    EXPERIMENTS,
    HH_THRESHOLDS,
    fig2a,
    fig2d,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig11,
    headline,
    table1,
)
from repro.experiments.report import pivot

TINY = 0.01  # ~2.5K flows at the fig6 sweep's largest point


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1",
            "fig2a",
            "fig2b",
            "fig2c",
            "fig2d",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "headline",
        }
        assert set(EXPERIMENTS) == expected

    def test_hh_thresholds_cover_all_traces(self):
        assert set(HH_THRESHOLDS) == {"caida", "campus", "isp1", "isp2"}


class TestTable1:
    def test_rows_and_targets(self):
        # Heavy-tailed sample means are noisy below ~20K flows, so this
        # smoke test uses a moderate scale and loose tolerance; the
        # full-scale check lives in benchmarks/bench_table1_traces.py.
        result = table1(scale=0.08, seed=0)
        assert [r["trace"] for r in result.rows] == ["caida", "campus", "isp1", "isp2"]
        for row in result.rows:
            assert row["mean_flow_size"] == pytest.approx(row["paper_mean"], rel=0.4)
            assert row["max_flow_size"] <= row["paper_max"]


class TestFig2:
    def test_fig2a_theory_matches_sim(self):
        result = fig2a(scale=0.05, loads=(1.0, 2.0), max_depth=4)
        for row in result.rows:
            assert row["sim"] == pytest.approx(row["theory"], abs=0.04)

    def test_fig2d_peak_near_alpha_07(self):
        result = fig2d(loads=(1.0,), alphas=(0.5, 0.6, 0.7, 0.8, 0.9))
        by_alpha = {r["alpha"]: r["improvement"] for r in result.rows}
        best = max(by_alpha, key=by_alpha.get)
        assert best in (0.6, 0.7, 0.8)
        assert by_alpha[0.7] > 0.0


class TestFig3:
    def test_cdf_monotone_per_trace(self):
        result = fig3(scale=0.02)
        probe_cols = [c for c in result.columns if c.startswith("cdf@")]
        for row in result.rows:
            values = [row[c] for c in probe_cols]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_isp2_is_most_mice_heavy(self):
        result = fig3(scale=0.02)
        cdf_at_2 = {r["trace"]: r["cdf@2"] for r in result.rows}
        assert cdf_at_2["isp2"] == max(cdf_at_2.values())


class TestFig4:
    def test_are_decreases_with_depth(self):
        result = fig4(scale=TINY)
        for trace in ("caida", "campus", "isp1", "isp2"):
            rows = result.filter_rows(trace=trace)
            ares = [r["are"] for r in sorted(rows, key=lambda r: r["depth"])]
            assert ares[0] > ares[2]  # d=1 much worse than d=3


class TestFig5:
    def test_pipelined_07_beats_multihash_fsc(self):
        result = fig5(scale=TINY)
        series = pivot(result, index="n_flows", series="config", value="fsc")
        # Compare at the heaviest load point.
        n_max = max(series["multihash"])
        assert series["alpha=0.7"][n_max] >= series["multihash"][n_max] - 0.02


class TestFig6:
    def test_structure_and_hashflow_advantage(self):
        result = fig6(scale=TINY)
        algos = {r["algorithm"] for r in result.rows}
        assert algos == {"HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"}
        # At the heaviest point HashFlow beats ElasticSketch (paper: >20%).
        for trace in ("caida", "campus"):
            rows = result.filter_rows(trace=trace)
            n_max = max(r["n_flows"] for r in rows)
            fsc = {
                r["algorithm"]: r["fsc"]
                for r in rows
                if r["n_flows"] == n_max
            }
            assert fsc["HashFlow"] > fsc["ElasticSketch"]
            assert fsc["HashFlow"] > fsc["FlowRadar"]


class TestFig7:
    def test_hashpipe_worst_at_heavy_load(self):
        result = fig7(scale=TINY)
        for trace in ("caida", "campus"):
            rows = result.filter_rows(trace=trace)
            n_max = max(r["n_flows"] for r in rows)
            re = {
                r["algorithm"]: r["cardinality_re"]
                for r in rows
                if r["n_flows"] == n_max
            }
            assert re["HashPipe"] > re["HashFlow"]
            assert re["HashFlow"] < 0.5


class TestFig8:
    def test_hashflow_lowest_are_on_elephant_traces(self):
        result = fig8(scale=TINY)
        for trace in ("caida", "campus"):
            rows = result.filter_rows(trace=trace)
            n_max = max(r["n_flows"] for r in rows)
            are = {
                r["algorithm"]: r["size_are"]
                for r in rows
                if r["n_flows"] == n_max
            }
            assert are["HashFlow"] <= min(are.values()) + 0.02


class TestFig9And10:
    def test_hashflow_dominates_heavy_hitters(self):
        result = fig9(scale=TINY)
        for trace in ("caida", "campus", "isp1"):
            rows = result.filter_rows(trace=trace, algorithm="HashFlow")
            top = max(r["threshold"] for r in rows)
            top_row = next(r for r in rows if r["threshold"] == top)
            assert top_row["f1"] > 0.85
            assert top_row["are"] < 0.2 or top_row["actual_hh"] == 0

    def test_thresholds_follow_paper_grids(self):
        result = fig9(scale=TINY)
        for trace, grid in HH_THRESHOLDS.items():
            thresholds = sorted(
                {r["threshold"] for r in result.filter_rows(trace=trace)}
            )
            assert thresholds == sorted(grid)


class TestHeadline:
    def test_claims_hold_at_tiny_scale(self):
        result = headline(scale=TINY)
        accurate = {
            r["algorithm"]: r["value"]
            for r in result.rows
            if r["claim"] == "accurate_records"
        }
        assert accurate["HashFlow"] == max(accurate.values())
        are = {
            r["algorithm"]: r["value"]
            for r in result.rows
            if r["claim"] == "size_are_50k"
        }
        assert are["HashFlow"] == min(are.values())


class TestFig11:
    def test_flowradar_costliest(self):
        result = fig11(scale=TINY)
        for trace in ("caida",):
            rows = {r["algorithm"]: r for r in result.filter_rows(trace=trace)}
            assert (
                rows["FlowRadar"]["hashes_per_packet"]
                > rows["HashFlow"]["hashes_per_packet"]
            )
            assert (
                rows["FlowRadar"]["throughput_kpps"]
                < rows["HashFlow"]["throughput_kpps"]
            )

    def test_flowradar_constant_seven_hashes(self):
        result = fig11(scale=TINY)
        for row in result.rows:
            if row["algorithm"] == "FlowRadar":
                assert row["hashes_per_packet"] == pytest.approx(7.0, abs=0.01)
