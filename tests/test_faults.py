"""Unit tests for the deterministic fault-injection subsystem."""

from __future__ import annotations

import errno
import json

import pytest

from repro import faults
from repro.faults import FAULTS_ENV, FaultPlan, FaultSpecError


KILL = {"kind": "kill_worker", "worker": 1, "at_packets": 100}


class TestParsing:
    def test_parse_list_and_single_dict(self):
        plan = FaultPlan.parse(json.dumps([KILL]))
        assert plan.entries[0]["kind"] == "kill_worker"
        assert plan.entries[0]["incarnation"] == 0  # default filled in
        single = FaultPlan.parse(json.dumps(KILL))
        assert single.entries == plan.entries

    def test_round_trips_through_json(self):
        plan = FaultPlan.parse(json.dumps([KILL]))
        again = FaultPlan.parse(plan.to_json())
        assert again.entries == plan.entries

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultPlan([{"kind": "meteor_strike"}])

    def test_unknown_param_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown kill_worker"):
            FaultPlan([{**KILL, "color": "red"}])

    def test_missing_required_param_rejected(self):
        with pytest.raises(FaultSpecError, match="needs 'at_packets'"):
            FaultPlan([{"kind": "kill_worker", "worker": 0}])

    def test_probabilities_validated(self):
        with pytest.raises(FaultSpecError, match="probability"):
            FaultPlan([{"kind": "datagram_chaos", "drop": 1.5}])

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultSpecError, match="invalid fault plan JSON"):
            FaultPlan.parse("{not json")

    def test_from_env_and_file_indirection(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV, json.dumps([KILL]))
        assert FaultPlan.from_env().entries[0]["worker"] == 1
        path = tmp_path / "plan.json"
        path.write_text(json.dumps([KILL]))
        monkeypatch.setenv(FAULTS_ENV, f"@{path}")
        assert FaultPlan.from_env().entries[0]["at_packets"] == 100

    def test_merged_combines_sources(self):
        merged = FaultPlan.merged(
            (KILL,), None, FaultPlan([{"kind": "sink_write", "nth": 2}])
        )
        assert [e["kind"] for e in merged.entries] == ["kill_worker", "sink_write"]
        assert FaultPlan.merged(None, ()) is None


class TestWorkerHooks:
    def test_kill_fires_once_at_threshold(self):
        plan = FaultPlan([KILL])
        assert not plan.kill_due(worker=1, incarnation=0, packets=99)
        assert plan.kill_due(worker=1, incarnation=0, packets=100)
        # One-shot: the same incarnation never re-trips.
        assert not plan.kill_due(worker=1, incarnation=0, packets=200)

    def test_kill_scoped_to_worker_and_incarnation(self):
        plan = FaultPlan([KILL])
        assert not plan.kill_due(worker=0, incarnation=0, packets=500)
        # A respawn (incarnation 1) crossing the threshold is spared.
        assert not plan.kill_due(worker=1, incarnation=1, packets=500)

    def test_stall_returns_requested_seconds(self):
        plan = FaultPlan(
            [{"kind": "stall_worker", "worker": 0, "at_packets": 10, "seconds": 0.25}]
        )
        assert plan.stall_due(worker=0, incarnation=0, packets=9) == 0.0
        assert plan.stall_due(worker=0, incarnation=0, packets=10) == 0.25
        assert plan.stall_due(worker=0, incarnation=0, packets=11) == 0.0


class TestSinkHook:
    def test_nth_write_fails_for_times_attempts(self):
        plan = FaultPlan([{"kind": "sink_write", "nth": 2, "times": 2}])
        assert plan.sink_write_error() is None          # write 1
        error = plan.sink_write_error()                 # write 2
        assert isinstance(error, OSError)
        assert error.errno == errno.ENOSPC
        assert plan.sink_write_error() is not None      # write 3
        assert plan.sink_write_error() is None          # write 4
        assert plan.sink_writes == 4

    def test_custom_errno(self):
        plan = FaultPlan([{"kind": "sink_write", "nth": 1, "errno": errno.EINTR}])
        assert plan.sink_write_error().errno == errno.EINTR


class TestDatagramChaos:
    DATAGRAMS = [bytes([i]) * 40 for i in range(50)]

    def test_deterministic_across_runs(self):
        fault = {"kind": "datagram_chaos", "seed": 9, "drop": 0.2, "dup": 0.1,
                 "truncate": 0.1}
        first = FaultPlan([fault]).mutate_datagrams(self.DATAGRAMS)
        second = FaultPlan([fault]).mutate_datagrams(self.DATAGRAMS)
        assert first == second
        assert first != self.DATAGRAMS

    def test_zero_probabilities_are_identity(self):
        plan = FaultPlan([{"kind": "datagram_chaos", "seed": 1}])
        assert plan.mutate_datagrams(self.DATAGRAMS) == self.DATAGRAMS

    def test_drop_only_shrinks(self):
        plan = FaultPlan([{"kind": "datagram_chaos", "seed": 3, "drop": 0.5}])
        out = plan.mutate_datagrams(self.DATAGRAMS)
        assert 0 < len(out) < len(self.DATAGRAMS)
        assert all(d in self.DATAGRAMS for d in out)


class TestActivePlan:
    def test_installed_plan_wins_and_clears(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert faults.active() is None
        plan = FaultPlan([KILL])
        faults.activate(plan)
        try:
            assert faults.active() is plan
        finally:
            faults.deactivate()
        assert faults.active() is None

    def test_env_plan_cached_per_value(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps([KILL]))
        try:
            first = faults.active()
            assert first is not None
            # Same raw value: the same instance (trigger state survives).
            assert faults.active() is first
        finally:
            monkeypatch.delenv(FAULTS_ENV, raising=False)
