"""Tests for repro.sketches.hashpipe."""

from __future__ import annotations

import pytest

from repro.sketches.hashpipe import HashPipe


class TestBasics:
    def test_single_flow_counted_exactly(self):
        hp = HashPipe(cells_per_stage=64, stages=4)
        for _ in range(10):
            hp.process(42)
        assert hp.query(42) == 10

    def test_query_unknown_zero(self):
        hp = HashPipe(cells_per_stage=16)
        assert hp.query(5) == 0

    def test_few_flows_all_recorded(self):
        hp = HashPipe(cells_per_stage=256, stages=4, seed=3)
        flows = list(range(1, 51))
        for f in flows:
            for _ in range(3):
                hp.process(f)
        records = hp.records()
        assert set(records) == set(flows)

    @pytest.mark.parametrize("kwargs", [{"cells_per_stage": 0}, {"cells_per_stage": 4, "stages": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HashPipe(**kwargs)


class TestEvictionBehaviour:
    def test_stage1_always_inserts_new_flow(self):
        """The defining HashPipe behaviour: a new flow always lands in
        stage 1, evicting the occupant."""
        # White box (peeks at the list tier's stage storage): pin numpy.
        hp = HashPipe(cells_per_stage=1, stages=2, seed=0, kernel="numpy")
        hp.process(1)  # stage-1 cell now holds flow 1
        hp.process(2)  # flow 2 must take the stage-1 cell
        assert hp._keys[0][0] == 2

    def test_counts_nearly_conserved_under_light_load(self):
        """Packets vanish only when a carried record loses at *every*
        stage; under light load that is rare, so the recorded total
        stays close to (and never above) the stream length."""
        hp = HashPipe(cells_per_stage=512, stages=4, seed=1)
        flows = [i % 40 for i in range(2000)]
        for f in flows:
            hp.process(f)
        total = sum(hp.records().values())
        assert total <= 2000
        assert total > 2000 * 0.9

    def test_split_records_possible(self, small_trace):
        """Packets of an evicted flow re-insert at stage 1, splitting the
        flow across stages (the defect HashFlow fixes, paper §II)."""
        # White box (peeks at the list tier's stage storage): pin numpy.
        hp = HashPipe(cells_per_stage=64, stages=4, seed=2, kernel="numpy")
        hp.process_all(small_trace.keys())
        split = 0
        for key in hp.records():
            appearances = sum(
                1
                for s in range(hp.stages)
                if hp._keys[s][hp._hashes[s].bucket(key, hp.cells_per_stage)] == key
            )
            if appearances > 1:
                split += 1
        assert split > 0

    def test_overload_drops_flows(self, small_trace):
        hp = HashPipe(cells_per_stage=32, stages=4, seed=2)
        hp.process_all(small_trace.keys())
        assert len(hp.records()) < small_trace.num_flows
        assert hp.occupancy() <= 4 * 32


class TestElephantRetention:
    def test_large_flows_survive_pressure(self):
        """Later stages keep the larger count, so elephants persist."""
        hp = HashPipe(cells_per_stage=128, stages=4, seed=5)
        elephant = 999
        for i in range(6000):
            hp.process(elephant)
            hp.process(10_000 + i)  # stream of one-packet mice
        assert hp.query(elephant) > 3000

    def test_heavy_hitters_reported(self):
        hp = HashPipe(cells_per_stage=256, stages=4, seed=5)
        for f in range(20):
            for _ in range(100):
                hp.process(f)
        for i in range(3000):
            hp.process(50_000 + i)
        hh = hp.heavy_hitters(50)
        assert len(set(hh) & set(range(20))) >= 15


class TestAccounting:
    def test_cardinality_is_resident_keys(self, small_trace):
        hp = HashPipe(cells_per_stage=64, stages=4)
        hp.process_all(small_trace.keys())
        assert hp.estimate_cardinality() == len(hp.records())

    def test_memory_bits(self):
        hp = HashPipe(cells_per_stage=100, stages=4)
        assert hp.memory_bits == 4 * 100 * 136

    def test_meter_counts_packets(self, tiny_trace):
        hp = HashPipe(cells_per_stage=16)
        hp.process_all(tiny_trace.keys())
        assert hp.meter.packets == len(tiny_trace)
        assert hp.meter.hashes >= len(tiny_trace)

    def test_reset(self):
        hp = HashPipe(cells_per_stage=16)
        hp.process(1)
        hp.reset()
        assert hp.records() == {}
        assert hp.meter.packets == 0
