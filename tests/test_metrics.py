"""Tests for repro.analysis.metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.metrics import (
    average_relative_error,
    f1_score,
    flow_set_coverage,
    precision_recall_f1,
    relative_error,
)


class TestFlowSetCoverage:
    def test_full_coverage(self):
        assert flow_set_coverage([1, 2, 3], [1, 2, 3]) == 1.0

    def test_partial(self):
        assert flow_set_coverage([1, 2], [1, 2, 3, 4]) == 0.5

    def test_spurious_reports_do_not_help(self):
        assert flow_set_coverage([1, 99, 98, 97], [1, 2]) == 0.5

    def test_duplicates_count_once(self):
        assert flow_set_coverage([1, 1, 1], [1, 2]) == 0.5

    def test_empty_truth(self):
        assert flow_set_coverage([1], []) == 1.0

    @given(st.sets(st.integers(0, 100)), st.sets(st.integers(0, 100)))
    def test_bounded_property(self, reported, truth):
        assert 0.0 <= flow_set_coverage(reported, truth) <= 1.0


class TestRelativeError:
    def test_exact(self):
        assert relative_error(10, 10) == 0.0

    def test_overestimate(self):
        assert relative_error(15, 10) == pytest.approx(0.5)

    def test_underestimate(self):
        assert relative_error(5, 10) == pytest.approx(0.5)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(5, 0)

    def test_infinite_estimate(self):
        assert math.isinf(relative_error(math.inf, 10))


class TestAverageRelativeError:
    def test_perfect_estimates(self):
        truth = {1: 10, 2: 20}
        assert average_relative_error(lambda k: truth[k], truth) == 0.0

    def test_missing_flow_contributes_one(self):
        """Paper: 'if no result can be reported, we use 0 as the default
        value' — a missing flow has relative error exactly 1."""
        truth = {1: 10, 2: 20}
        assert average_relative_error(lambda k: 0, truth) == 1.0

    def test_mixed(self):
        truth = {1: 10, 2: 10}
        estimates = {1: 10, 2: 0}
        assert average_relative_error(lambda k: estimates[k], truth) == 0.5

    def test_empty_truth(self):
        assert average_relative_error(lambda k: 0, {}) == 0.0

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 100), min_size=1))
    def test_nonnegative_property(self, truth):
        are = average_relative_error(lambda k: truth[k] + 1, truth)
        assert are >= 0.0


class TestPrecisionRecallF1:
    def test_perfect(self):
        assert precision_recall_f1([1, 2], [1, 2]) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        p, r, f1 = precision_recall_f1([1, 2, 3, 4], [1, 2])
        assert p == 0.5
        assert r == 1.0
        assert f1 == pytest.approx(2 / 3)

    def test_half_recall(self):
        p, r, f1 = precision_recall_f1([1], [1, 2])
        assert p == 1.0
        assert r == 0.5

    def test_disjoint(self):
        p, r, f1 = precision_recall_f1([3, 4], [1, 2])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_empty_report(self):
        p, r, f1 = precision_recall_f1([], [1])
        assert p == 1.0
        assert r == 0.0
        assert f1 == 0.0

    def test_empty_truth(self):
        p, r, f1 = precision_recall_f1([1], [])
        assert r == 1.0

    def test_both_empty(self):
        assert precision_recall_f1([], []) == (1.0, 1.0, 1.0)

    def test_f1_score_wrapper(self):
        assert f1_score([1, 2], [1, 2]) == 1.0

    @given(st.sets(st.integers(0, 40)), st.sets(st.integers(0, 40)))
    def test_f1_bounded_property(self, reported, truth):
        p, r, f1 = precision_recall_f1(reported, truth)
        eps = 1e-12
        assert 0.0 <= f1 <= 1.0 + eps
        assert (min(p, r) - eps <= f1 <= max(p, r) + eps) or f1 == 0.0
